"""Kernel IR: the loop structures targeted by run-time reordering.

The paper's benchmarks (moldyn, nbf, irreg) all share one shape, which this
IR captures directly::

    do s = 0, num_steps-1        # optional outer time-stepping loop
      do i = 0, extent_0-1       # inner loop 0
        S0: statements accessing arrays, possibly through index arrays
      do j = 0, extent_1-1       # inner loop 1
        S1: ...
        S2: ...
      ...

Array subscripts are :class:`~repro.presburger.terms.AffineExpr` objects over
the loop index, possibly containing uninterpreted function symbols naming
*index arrays* (``left(j)``) or previously generated reordering functions.

Everything is 0-based (the paper is 1-based Fortran style; the translation
is mechanical and noted in DESIGN.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.presburger.terms import AffineExpr, ExprLike, coerce_expr


class AccessKind(enum.Enum):
    """How a statement touches an array element."""

    READ = "read"
    WRITE = "write"
    #: Commutative/associative read-modify-write (``a[x] += ...``).  Pairs of
    #: UPDATEs to the same array form *reduction dependences*, which permit
    #: reordering (the paper's footnote 3).
    UPDATE = "update"

    @property
    def writes(self) -> bool:
        return self is not AccessKind.READ

    @property
    def reads(self) -> bool:
        return self is not AccessKind.WRITE


@dataclass(frozen=True)
class ArrayAccess:
    """One array access: array name, subscript expression, access kind."""

    array: str
    index: AffineExpr
    kind: AccessKind

    def __post_init__(self):
        object.__setattr__(self, "index", coerce_expr(self.index))

    def __repr__(self):
        return f"{self.array}[{self.index}]:{self.kind.value}"


def read(array: str, index: ExprLike) -> ArrayAccess:
    """A read access ``array[index]``."""
    return ArrayAccess(array, coerce_expr(index), AccessKind.READ)


def write(array: str, index: ExprLike) -> ArrayAccess:
    """A write access ``array[index] = ...``."""
    return ArrayAccess(array, coerce_expr(index), AccessKind.WRITE)


def reduce_into(array: str, index: ExprLike) -> ArrayAccess:
    """A reduction access ``array[index] += ...``."""
    return ArrayAccess(array, coerce_expr(index), AccessKind.UPDATE)


@dataclass(frozen=True)
class Statement:
    """A statement with its array accesses (subscripts use the loop index)."""

    label: str
    accesses: Tuple[ArrayAccess, ...]

    def __init__(self, label: str, accesses: Sequence[ArrayAccess]):
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "accesses", tuple(accesses))

    def arrays(self) -> frozenset:
        return frozenset(a.array for a in self.accesses)


@dataclass(frozen=True)
class Loop:
    """An inner loop: index variable, extent symbol, and its statements."""

    label: str
    index_var: str
    extent: str
    statements: Tuple[Statement, ...]

    def __init__(
        self,
        label: str,
        index_var: str,
        extent: str,
        statements: Sequence[Statement],
    ):
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "index_var", index_var)
        object.__setattr__(self, "extent", extent)
        object.__setattr__(self, "statements", tuple(statements))
        if not statements:
            raise ValueError(f"loop {label!r} has no statements")


@dataclass(frozen=True)
class DataArraySpec:
    """A 1-D data array: name and extent symbol (its data space)."""

    name: str
    extent: str
    #: Bytes per element, used by the cache model (default: one double).
    element_bytes: int = 8


@dataclass(frozen=True)
class IndexArraySpec:
    """An index array (uninterpreted function symbol at compile time).

    ``domain_extent`` is the extent symbol of valid argument values and
    ``range_extent`` the extent symbol its values index into (e.g. ``left``
    maps interactions to nodes).
    """

    name: str
    domain_extent: str
    range_extent: str
    element_bytes: int = 4


class Kernel:
    """A full kernel: optional outer time loop around a list of inner loops.

    Parameters
    ----------
    name:
        Kernel name (used in reports and generated code).
    loops:
        Inner loops in textual order.
    data_arrays:
        Specs of the data arrays referenced by statements.
    index_arrays:
        Specs of the index arrays appearing as UFS in subscripts.
    outer_var / outer_extent:
        The time-stepping loop (``None`` for a single-sweep kernel).
    """

    def __init__(
        self,
        name: str,
        loops: Sequence[Loop],
        data_arrays: Sequence[DataArraySpec],
        index_arrays: Sequence[IndexArraySpec] = (),
        outer_var: Optional[str] = "s",
        outer_extent: Optional[str] = "num_steps",
    ):
        self.name = name
        self.loops: Tuple[Loop, ...] = tuple(loops)
        if not self.loops:
            raise ValueError("kernel needs at least one loop")
        self.data_arrays: Dict[str, DataArraySpec] = {
            spec.name: spec for spec in data_arrays
        }
        self.index_arrays: Dict[str, IndexArraySpec] = {
            spec.name: spec for spec in index_arrays
        }
        self.outer_var = outer_var
        self.outer_extent = outer_extent
        self._validate()

    # -- validation --------------------------------------------------------------

    def _validate(self) -> None:
        labels = [loop.label for loop in self.loops]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate loop labels: {labels}")
        stmt_labels = [s.label for loop in self.loops for s in loop.statements]
        if len(set(stmt_labels)) != len(stmt_labels):
            raise ValueError(f"duplicate statement labels: {stmt_labels}")
        known_ufs = set(self.index_arrays)
        for loop in self.loops:
            for stmt in loop.statements:
                for acc in stmt.accesses:
                    if acc.array not in self.data_arrays:
                        raise ValueError(
                            f"{stmt.label}: unknown data array {acc.array!r}"
                        )
                    free = acc.index.free_vars()
                    bad = free - {loop.index_var}
                    if bad:
                        raise ValueError(
                            f"{stmt.label}: subscript uses variables {sorted(bad)} "
                            f"other than the loop index {loop.index_var!r}"
                        )
                    unknown = acc.index.uf_names() - known_ufs
                    if unknown:
                        raise ValueError(
                            f"{stmt.label}: undeclared index arrays {sorted(unknown)}"
                        )

    # -- queries -------------------------------------------------------------------

    @property
    def has_outer_loop(self) -> bool:
        return self.outer_var is not None

    def loop_position(self, label: str) -> int:
        for pos, loop in enumerate(self.loops):
            if loop.label == label:
                return pos
        raise KeyError(label)

    def loop(self, label: str) -> Loop:
        return self.loops[self.loop_position(label)]

    def statement_position(self, label: str) -> Tuple[int, int]:
        """(loop position, statement position within loop) of a statement."""
        for lpos, loop in enumerate(self.loops):
            for spos, stmt in enumerate(loop.statements):
                if stmt.label == label:
                    return lpos, spos
        raise KeyError(label)

    def all_statements(self) -> List[Tuple[int, int, Loop, Statement]]:
        """Flat list of (loop pos, stmt pos, loop, statement)."""
        out = []
        for lpos, loop in enumerate(self.loops):
            for spos, stmt in enumerate(loop.statements):
                out.append((lpos, spos, loop, stmt))
        return out

    def extent_symbols(self) -> frozenset:
        symbols = {loop.extent for loop in self.loops}
        if self.outer_extent:
            symbols.add(self.outer_extent)
        symbols |= {spec.extent for spec in self.data_arrays.values()}
        return frozenset(symbols)

    def __repr__(self):
        inner = ", ".join(loop.label for loop in self.loops)
        outer = f"{self.outer_var}<{self.outer_extent}" if self.has_outer_loop else "-"
        return f"Kernel({self.name!r}, outer={outer}, loops=[{inner}])"
