"""Data mappings ``M_{I->a}`` and dependence relations ``D_{I->I}``.

Both are derived mechanically from the kernel IR:

* the data mapping of array ``a`` relates each unified iteration tuple to
  the locations of ``a`` it touches — one conjunction per distinct access,
  with the subscript expression (possibly containing index-array UFS like
  ``left(j)``) defining the location;
* a dependence relation connects two accesses to the same array when at
  least one writes, constrained by (i) both subscripts naming the same
  location and (ii) the source iteration lexicographically preceding the
  destination in the unified space.  Pairs of reduction (``+=``) updates
  are flagged ``is_reduction`` — they permit reordering (footnote 3 of the
  paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.presburger.constraints import eq
from repro.presburger.ordering import lex_lt_conjunctions
from repro.presburger.relations import PresburgerRelation
from repro.presburger.sets import Conjunction
from repro.presburger.terms import AffineExpr, var
from repro.uniform.kernel import AccessKind, ArrayAccess, Kernel, Statement
from repro.uniform.iterspace import UNIFIED_VARS, UNIFIED_VARS_OUT, UnifiedSpace

#: Data-space variable for the location tuple of a 1-D array.
LOCATION_VAR = "m"


def access_location_expr(access: ArrayAccess, loop_index_var: str, new_var: str) -> AffineExpr:
    """The subscript expression with the loop index renamed to ``new_var``."""
    return access.index.rename({loop_index_var: new_var})


def build_data_mappings(kernel: Kernel) -> Dict[str, PresburgerRelation]:
    """``M_{I0->a}`` for every data array of the kernel.

    Each relation maps ``[s, l, x, q] -> [m]`` with one conjunction per
    distinct (statement, subscript) access of the array.
    """
    space = UnifiedSpace(kernel)
    mappings: Dict[str, PresburgerRelation] = {}
    per_array: Dict[str, List[Conjunction]] = {name: [] for name in kernel.data_arrays}
    seen: Dict[str, set] = {name: set() for name in kernel.data_arrays}

    for lpos, spos, loop, stmt in kernel.all_statements():
        for access in stmt.accesses:
            location = access_location_expr(access, loop.index_var, "x")
            key = (stmt.label, location)
            if key in seen[access.array]:
                continue  # e.g. read and update of the same element
            seen[access.array].add(key)
            base = space.statement_conjunction(lpos, spos, loop, UNIFIED_VARS)
            conj = base.with_constraints([eq(var(LOCATION_VAR), location)])
            per_array[access.array].append(conj)

    for name, conjs in per_array.items():
        mappings[name] = PresburgerRelation(
            UNIFIED_VARS, (LOCATION_VAR,), conjs
        )
    return mappings


@dataclass
class Dependence:
    """One dependence relation between two statements through one array."""

    array: str
    src_stmt: str
    dst_stmt: str
    src_kind: AccessKind
    dst_kind: AccessKind
    relation: PresburgerRelation
    is_reduction: bool

    @property
    def name(self) -> str:
        return f"d({self.src_stmt}->{self.dst_stmt}:{self.array})"

    def __repr__(self):
        tag = " [reduction]" if self.is_reduction else ""
        return f"{self.name}{tag}: {self.relation!r}"


def _dependence_relation(
    kernel: Kernel,
    src: Tuple[int, int, "object", Statement],
    dst: Tuple[int, int, "object", Statement],
    src_access: ArrayAccess,
    dst_access: ArrayAccess,
) -> PresburgerRelation:
    space = UnifiedSpace(kernel)
    s_lpos, s_spos, s_loop, _ = src
    d_lpos, d_spos, d_loop, _ = dst

    src_conj = space.statement_conjunction(s_lpos, s_spos, s_loop, UNIFIED_VARS)
    dst_conj = space.statement_conjunction(d_lpos, d_spos, d_loop, UNIFIED_VARS_OUT)

    same_location = eq(
        access_location_expr(src_access, s_loop.index_var, "x"),
        access_location_expr(dst_access, d_loop.index_var, "x'"),
    )

    conjs = []
    for lex_conj in lex_lt_conjunctions(UNIFIED_VARS, UNIFIED_VARS_OUT):
        merged = src_conj.conjoin(dst_conj).conjoin(lex_conj)
        conjs.append(merged.with_constraints([same_location]))
    relation = PresburgerRelation(UNIFIED_VARS, UNIFIED_VARS_OUT, conjs)
    return relation.simplified()


def build_dependences(
    kernel: Kernel, include_input_deps: bool = False
) -> List[Dependence]:
    """All dependence relations of the kernel.

    A pair of accesses to the same array induces a dependence when at least
    one writes (set ``include_input_deps`` to also produce read-read pairs,
    occasionally useful for locality analysis).  Empty relations (pruned by
    the simplifier, e.g. a later statement can never depend on an earlier
    one within the same iteration in reverse) are dropped.
    """
    statements = kernel.all_statements()
    deps: List[Dependence] = []
    for src in statements:
        for dst in statements:
            for src_access in src[3].accesses:
                for dst_access in dst[3].accesses:
                    if src_access.array != dst_access.array:
                        continue
                    involves_write = (
                        src_access.kind.writes or dst_access.kind.writes
                    )
                    if not involves_write and not include_input_deps:
                        continue
                    relation = _dependence_relation(
                        kernel, src, dst, src_access, dst_access
                    )
                    if relation.is_empty_syntactically():
                        continue
                    is_reduction = (
                        src_access.kind is AccessKind.UPDATE
                        and dst_access.kind is AccessKind.UPDATE
                    )
                    deps.append(
                        Dependence(
                            array=src_access.array,
                            src_stmt=src[3].label,
                            dst_stmt=dst[3].label,
                            src_kind=src_access.kind,
                            dst_kind=dst_access.kind,
                            relation=relation,
                            is_reduction=is_reduction,
                        )
                    )
    return _merge_duplicate_dependences(deps)


def _merge_duplicate_dependences(deps: List[Dependence]) -> List[Dependence]:
    """Union relations of dependences with identical endpoints and array.

    A statement pair can induce several access pairs (e.g. S2 reads and
    updates ``fx[left(j)]``); their relations union into one dependence.
    The merged dependence is a reduction only if every contributing pair is.
    """
    merged: Dict[Tuple[str, str, str], Dependence] = {}
    order: List[Tuple[str, str, str]] = []
    for dep in deps:
        key = (dep.array, dep.src_stmt, dep.dst_stmt)
        if key not in merged:
            merged[key] = dep
            order.append(key)
        else:
            existing = merged[key]
            merged[key] = Dependence(
                array=dep.array,
                src_stmt=dep.src_stmt,
                dst_stmt=dep.dst_stmt,
                src_kind=existing.src_kind,
                dst_kind=existing.dst_kind,
                relation=existing.relation.union(dep.relation),
                is_reduction=existing.is_reduction and dep.is_reduction,
            )
    return [merged[k] for k in order]
