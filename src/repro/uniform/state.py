"""Program state threading: the compile-time composition algebra.

A :class:`ProgramState` holds the current unified iteration space ``I_k``,
the data mappings ``M_{I_k -> a_k}``, and the dependences ``D_{I_k -> I_k}``
of a kernel after ``k`` planned run-time reordering transformations.

* Applying a :class:`DataReordering` ``R_{a->a'}`` rewrites the data
  mappings of the affected arrays: ``M_{I->a'} = R . M_{I->a}``
  (paper Section 4: remapping never affects dependences, so any one-to-one
  remapping is legal).
* Applying an :class:`IterationReordering` ``T_{I->I'}`` rewrites
  everything:

  - ``I' = T(I)``
  - ``M_{I'->a} = M_{I->a} . T^-1``
  - ``D_{I'->I'} = T . D_{I->I} . T^-1``

The rewritten specifications are what the *next* planned inspector
traverses — the paper's key insight, and what makes compositions like
CPACK, lexGroup, CPACK, lexGroup (Section 5.3) expressible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.presburger.constraints import eq
from repro.presburger.relations import PresburgerRelation
from repro.presburger.sets import PresburgerSet
from repro.presburger.terms import AffineExpr, var
from repro.uniform.kernel import Kernel
from repro.uniform.iterspace import UnifiedSpace
from repro.uniform.mappings import (
    LOCATION_VAR,
    Dependence,
    build_data_mappings,
    build_dependences,
)


#: Canonical unified-tuple variable names by arity.  Four dimensions is the
#: starting space ``[s, l, x, q]``; sparse tiling inserts a tile dimension
#: to make five ``[s, t, l, x, q]``; further tilings extend similarly.
_CANONICAL_BY_ARITY = {
    4: ("s", "l", "x", "q"),
    5: ("s", "t", "l", "x", "q"),
    6: ("s", "t", "u", "l", "x", "q"),
}


def canonical_tuple_vars(arity: int, suffix: str = "") -> Tuple[str, ...]:
    """Readable variable names for a unified tuple of the given arity."""
    base = _CANONICAL_BY_ARITY.get(arity, tuple(f"c{i}" for i in range(arity)))
    return tuple(v + suffix for v in base)


def _canonize_set(pset: PresburgerSet) -> PresburgerSet:
    return pset.rename_tuple(canonical_tuple_vars(pset.arity))


def _canonize_mapping(rel: PresburgerRelation) -> PresburgerRelation:
    return rel.rename_tuples(canonical_tuple_vars(rel.in_arity), (LOCATION_VAR,))


def _canonize_dependence_relation(rel: PresburgerRelation) -> PresburgerRelation:
    return rel.rename_tuples(
        canonical_tuple_vars(rel.in_arity),
        canonical_tuple_vars(rel.out_arity, suffix="'"),
    )


@dataclass(frozen=True)
class DataReordering:
    """A run-time data reordering ``R_{a->a'}`` shared by several arrays.

    ``func_name`` names the (not yet known) reordering function; the
    relation is ``{[m] -> [m'] : m' = func(m)}``.  In moldyn the same
    reordering applies to ``x``, ``vx`` and ``fx`` because loop iterations
    touch the three arrays with identical subscripts.
    """

    func_name: str
    arrays: Tuple[str, ...]
    label: str = ""

    @property
    def relation(self) -> PresburgerRelation:
        constraint = eq(var("m'"), AffineExpr.ufs(self.func_name, var("m")))
        return PresburgerRelation.from_constraints(("m",), ("m'",), [constraint])

    def describe(self) -> str:
        name = self.label or self.func_name
        return f"R[{name}]: {{[m] -> [{self.func_name}(m)]}} on {', '.join(self.arrays)}"


@dataclass(frozen=True)
class IterationReordering:
    """A run-time iteration reordering ``T_{I->I'}``.

    ``relation`` maps current unified tuples to new ones; the new execution
    order is the lexicographic order of the image tuples.  Sparse tiling
    produces relations whose output arity exceeds the input arity (a tile
    dimension is inserted).
    """

    relation: PresburgerRelation
    label: str = ""
    #: Names of reordering/tiling UFS introduced by this transformation
    #: (e.g. ``("lg",)`` for lexGroup, ``("theta",)`` for sparse tiling).
    introduces: Tuple[str, ...] = ()
    #: True when the transformation's inspector traverses dependences (and
    #: thereby guarantees legality by construction), as sparse tiling does.
    inspects_dependences: bool = False

    def describe(self) -> str:
        name = self.label or ",".join(self.introduces) or "T"
        return f"T[{name}]: {self.relation!r}"


@dataclass
class ProgramState:
    """Iteration space + data mappings + dependences after k transformations."""

    kernel: Kernel
    iteration_space: PresburgerSet
    data_mappings: Dict[str, PresburgerRelation]
    dependences: List[Dependence]
    #: Applied transformations, oldest first.
    history: List[object] = field(default_factory=list)

    # -- construction -------------------------------------------------------------

    @staticmethod
    def initial(kernel: Kernel) -> "ProgramState":
        """``I_0``, ``M_{I0->a0}``, ``D_{I0->I0}`` straight from the IR."""
        space = UnifiedSpace(kernel)
        return ProgramState(
            kernel=kernel,
            iteration_space=space.iteration_space(),
            data_mappings=build_data_mappings(kernel),
            dependences=build_dependences(kernel),
            history=[],
        )

    # -- queries --------------------------------------------------------------------

    @property
    def tuple_arity(self) -> int:
        return self.iteration_space.arity

    def data_mapping(self, array: str) -> PresburgerRelation:
        return self.data_mappings[array]

    def non_reduction_dependences(self) -> List[Dependence]:
        return [d for d in self.dependences if not d.is_reduction]

    def uf_names(self) -> frozenset:
        out = set(self.iteration_space.uf_names())
        for m in self.data_mappings.values():
            out |= m.uf_names()
        for d in self.dependences:
            out |= d.relation.uf_names()
        return frozenset(out)

    # -- transformation application ----------------------------------------------------

    def apply_data_reordering(self, reordering: DataReordering) -> "ProgramState":
        """``M_{I->a'} = R . M_{I->a}`` for each affected array."""
        unknown = set(reordering.arrays) - set(self.data_mappings)
        if unknown:
            raise KeyError(f"unknown arrays in data reordering: {sorted(unknown)}")
        new_mappings = dict(self.data_mappings)
        for array in reordering.arrays:
            new_mappings[array] = _canonize_mapping(
                self.data_mappings[array].then(reordering.relation).simplified()
            )
        return ProgramState(
            kernel=self.kernel,
            iteration_space=self.iteration_space,
            data_mappings=new_mappings,
            dependences=self.dependences,
            history=self.history + [reordering],
        )

    def apply_iteration_reordering(
        self, reordering: IterationReordering
    ) -> "ProgramState":
        """Rewrite I, every M, and every D through ``T``."""
        T = reordering.relation
        if T.in_arity != self.tuple_arity:
            raise ValueError(
                f"T expects {T.in_arity}-tuples, state has {self.tuple_arity}"
            )
        T_inv = T.inverse()
        new_space = _canonize_set(T.apply_set(self.iteration_space))
        new_mappings = {
            array: _canonize_mapping(T_inv.then(mapping).simplified())
            for array, mapping in self.data_mappings.items()
        }
        new_dependences = [
            replace(
                dep,
                relation=_canonize_dependence_relation(
                    T_inv.then(dep.relation).then(T).simplified()
                ),
            )
            for dep in self.dependences
        ]
        return ProgramState(
            kernel=self.kernel,
            iteration_space=new_space,
            data_mappings=new_mappings,
            dependences=new_dependences,
            history=self.history + [reordering],
        )

    def apply(self, transformation) -> "ProgramState":
        """Dispatch on transformation type."""
        if isinstance(transformation, DataReordering):
            return self.apply_data_reordering(transformation)
        if isinstance(transformation, IterationReordering):
            return self.apply_iteration_reordering(transformation)
        raise TypeError(f"not a reordering transformation: {transformation!r}")

    def describe(self) -> str:
        lines = [f"ProgramState for {self.kernel.name!r} after {len(self.history)} transformations"]
        lines.append(f"  I ({self.tuple_arity}-tuples): {len(self.iteration_space.conjunctions)} conjunction(s)")
        for array, mapping in sorted(self.data_mappings.items()):
            lines.append(f"  M[{array}]: {mapping!r}")
        for dep in self.dependences:
            lines.append(f"  {dep!r}")
        return "\n".join(lines)
