"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.eval.compositions` — the named compositions of Section 2.4
  with machine-targeted parameters (GPART partition sizes and sparse-tiling
  seeds sized to the L1, as the paper does);
* :mod:`repro.eval.experiments` — run one (kernel, dataset, machine,
  composition) cell: inspector, executor trace, cache simulation, cost;
* :mod:`repro.eval.parallel` — the same grids fanned across worker
  processes (deterministic row order, serial fallback on pool failure);
* :mod:`repro.eval.figures` — one function per paper artifact (Table 1,
  Figures 6/7/8/9/16/17), each returning structured rows;
* :mod:`repro.eval.report` — plain-text rendering of those rows.
"""

from repro.eval.compositions import (
    COMPOSITIONS,
    FST_COMPOSITIONS,
    composition_steps,
)
from repro.eval.experiments import (
    BENCHMARK_DATASETS,
    CellResult,
    run_cell,
    run_grid,
    set_plan_cache,
)
from repro.eval.parallel import default_jobs, run_grid_parallel, worker_pool_health
from repro.eval.figures import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure16,
    figure17,
    table1,
)
from repro.eval.report import format_grid, format_rows

__all__ = [
    "COMPOSITIONS",
    "FST_COMPOSITIONS",
    "composition_steps",
    "BENCHMARK_DATASETS",
    "CellResult",
    "default_jobs",
    "run_cell",
    "run_grid",
    "run_grid_parallel",
    "set_plan_cache",
    "worker_pool_health",
    "table1",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure16",
    "figure17",
    "format_grid",
    "format_rows",
]
