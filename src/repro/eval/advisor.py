"""Run-time composition selection (the paper's Section 7, implemented).

    "Since characteristics of the dataset are not available until runtime,
    the selection and order of run-time reordering transformations depend
    on information available at runtime as well as compile time."

This module implements that guidance mechanism as a *sampling autotuner*:
at run time, before committing to a composition, it

1. extracts a small sample of the kernel instance (a contiguous block of
   interactions with its touched nodes compacted);
2. runs every candidate composition end to end on the sample — inspector,
   transformed executor trace, cache simulation;
3. projects each candidate's total cost over the planned number of time
   steps (``inspector + num_steps * executor``) and picks the argmin.

Because candidates are compared on the *same* sample with the *same*
machine model, the relative ranking transfers to the full instance (the
benchmark asserts the pick lands within a small factor of the oracle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cachesim.machines import Machine
from repro.cachesim.model import simulate_cost
from repro.eval.compositions import COMPOSITIONS, composition_steps
from repro.kernels.data import KernelData
from repro.runtime.executor import ExecutionPlan, emit_trace
from repro.runtime.inspector import ComposedInspector


def sample_kernel_data(
    data: KernelData, sample_fraction: float, seed: int = 0
) -> KernelData:
    """A compacted sub-instance: a slice of interactions + their nodes.

    Takes a contiguous block of interactions (preserving whatever locality
    the current ordering has — sampling random interactions would make
    every candidate look equally bad) and renumbers the touched nodes
    densely.  Untouched node records are dropped; the node space keeps the
    same record size, so cache geometry effects carry over.
    """
    if not 0 < sample_fraction <= 1:
        raise ValueError("sample_fraction must be in (0, 1]")
    m = max(16, int(data.num_inter * sample_fraction))
    m = min(m, data.num_inter)
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, max(1, data.num_inter - m + 1)))
    left = data.left[start : start + m]
    right = data.right[start : start + m]

    touched = np.unique(np.concatenate([left, right]))
    renumber = np.full(data.num_nodes, -1, dtype=np.int64)
    renumber[touched] = np.arange(len(touched), dtype=np.int64)

    return KernelData(
        kernel_name=data.kernel_name,
        dataset_name=f"{data.dataset_name}-sample",
        num_nodes=len(touched),
        left=renumber[left],
        right=renumber[right],
        arrays={k: v[touched].copy() for k, v in data.arrays.items()},
        loops=data.loops,
        node_record_bytes=data.node_record_bytes,
        inter_record_bytes=data.inter_record_bytes,
    )


@dataclass
class CandidateEstimate:
    """Projected cost of one candidate composition on the sample."""

    composition: str
    inspector_cycles: float
    executor_cycles_per_step: int

    def total_cycles(self, num_steps: int) -> float:
        return self.inspector_cycles + num_steps * self.executor_cycles_per_step


@dataclass
class Advice:
    """The advisor's decision plus everything it measured."""

    composition: str
    num_steps: int
    estimates: List[CandidateEstimate]

    def estimate_for(self, composition: str) -> CandidateEstimate:
        for e in self.estimates:
            if e.composition == composition:
                return e
        raise KeyError(composition)


def choose_composition(
    data: KernelData,
    machine: Machine,
    num_steps: int,
    candidates: Sequence[str] = COMPOSITIONS,
    sample_fraction: float = 0.1,
    seed: int = 0,
) -> Advice:
    """Pick the composition minimizing projected total cost on a sample.

    ``num_steps`` is the planned outer-loop trip count — the quantity that
    decides whether an expensive inspector (GPART, FST) pays off; short
    runs select cheap compositions, long runs absorb bigger inspectors.
    """
    # The sample must stay meaningfully larger than the targeted cache, or
    # every candidate (including the baseline) becomes cache-resident and
    # the ranking collapses; grow the fraction until the sampled node
    # payload covers several L1s (capped at the full instance).
    min_nodes = 6 * machine.l1.size_bytes / data.node_record_bytes
    needed_fraction = min(1.0, min_nodes / max(1, data.num_nodes))
    sample = sample_kernel_data(
        data, max(sample_fraction, needed_fraction), seed=seed
    )
    estimates: List[CandidateEstimate] = []
    for name in candidates:
        steps = composition_steps(name, sample, machine)
        if steps:
            result = ComposedInspector(steps).run(sample)
            trace = emit_trace(result.transformed, result.plan, num_steps=1)
            inspector_cycles = machine.inspector_cycles(result.total_touches)
        else:
            trace = emit_trace(sample, ExecutionPlan.identity(), num_steps=1)
            inspector_cycles = 0.0
        executor_cycles = simulate_cost(trace, machine).cycles
        estimates.append(
            CandidateEstimate(
                composition=name,
                inspector_cycles=inspector_cycles,
                executor_cycles_per_step=executor_cycles,
            )
        )
    best = min(estimates, key=lambda e: e.total_cycles(num_steps))
    return Advice(
        composition=best.composition, num_steps=num_steps, estimates=estimates
    )
