"""Parallel experiment runner: fan a figure grid across worker processes.

A figure grid is embarrassingly parallel — every (kernel, dataset,
machine, composition) cell is an independent inspector + trace +
simulation pipeline — so :func:`run_grid_parallel` dispatches cells to a
``ProcessPoolExecutor`` and reassembles the rows in the exact order the
serial :func:`repro.eval.experiments.run_grid` would produce them.
Determinism is structural, not incidental:

* the task list is built by the same triple loop as the serial runner,
  and ``executor.map`` returns results in submission order, so the row
  order (and therefore every formatted report) is byte-identical to a
  serial run;
* every cell is itself deterministic (fixed seeds, content-addressed
  inspector pipeline), so *values* match too.

Workers amortize shared state across the cells they are handed: the
initializer pins the cache-simulator backend and installs a per-worker
:class:`~repro.plancache.PlanCache` (memory tier only — no cross-process
coordination needed), so a worker that sees two cells with the same
(dataset, composition) fingerprint replays the realized plan instead of
re-running inspector stages, and the ``lru_cache`` layers of
:mod:`repro.eval.experiments` (kernel data, baseline costs) persist for
the worker's lifetime.

Degradation: process pools can be unavailable or break (sandboxed
environments without working ``fork``/semaphores, pickling regressions,
workers OOM-killed mid-grid).  In the spirit of the runtime's
fault-degradation policies, :func:`run_grid_parallel` treats all of those
as *degradable* conditions — it logs a warning and falls back to the
serial runner, which produces the identical rows — rather than failing
the experiment.
"""

from __future__ import annotations

import os
import warnings
from typing import List, Optional, Tuple

#: Task tuple: (kernel, dataset, machine, composition, scale, remap).
_CellTask = Tuple[str, str, str, str, int, str]


def default_jobs() -> int:
    """Worker count when the caller does not choose: one per CPU."""
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Worker-side plumbing (module-level so it pickles by reference).


def _init_worker(backend: Optional[str]) -> None:
    """Per-worker initialization: backend pin + plan-cache reuse.

    Runs once per worker process.  The plan cache is memory-tier only:
    each worker keeps its own, so there is no cross-process locking, and
    a worker handed several cells sharing an inspector fingerprint
    (e.g. the same composition at two machines) binds the cached plan
    instead of re-running the stages.
    """
    if backend:
        os.environ["REPRO_CACHESIM_BACKEND"] = backend
    try:
        from repro.eval import experiments
        from repro.plancache import PlanCache

        experiments.set_plan_cache(PlanCache(use_disk=False))
    except Exception:  # pragma: no cover - cache reuse is best-effort
        pass


def _run_cell_task(task: _CellTask):
    from repro.eval.experiments import run_cell

    kernel, dataset, machine, composition, scale, remap = task
    return run_cell(
        kernel, dataset, machine, composition, scale=scale, remap=remap
    )


# ---------------------------------------------------------------------------
# The public runner.


def grid_tasks(
    machine: str,
    compositions: Tuple[str, ...],
    scale: int,
    remap: str = "once",
    kernels: Optional[Tuple[str, ...]] = None,
) -> List[_CellTask]:
    """The grid's cells, in the serial runner's canonical order."""
    from repro.eval.experiments import BENCHMARK_DATASETS

    tasks: List[_CellTask] = []
    for kernel, datasets in BENCHMARK_DATASETS.items():
        if kernels is not None and kernel not in kernels:
            continue
        for dataset in datasets:
            for composition in compositions:
                tasks.append(
                    (kernel, dataset, machine, composition, scale, remap)
                )
    return tasks


def run_grid_parallel(
    machine: str,
    compositions: Tuple[str, ...],
    scale: Optional[int] = None,
    remap: str = "once",
    kernels: Optional[Tuple[str, ...]] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
):
    """Run a figure grid across ``jobs`` worker processes.

    Returns the same rows, in the same order, as the serial
    :func:`~repro.eval.experiments.run_grid` — callers can swap one for
    the other (and tests assert the formatted reports are byte-equal).
    ``jobs=None`` uses one worker per CPU; ``jobs<=1`` runs serially in
    process.  Any pool-level failure degrades to the serial runner.
    """
    from repro.kernels.datasets import DEFAULT_SCALE

    if scale is None:
        scale = DEFAULT_SCALE
    jobs = default_jobs() if jobs is None else int(jobs)
    tasks = grid_tasks(machine, compositions, scale, remap, kernels)

    if jobs <= 1 or len(tasks) <= 1:
        return _run_serial(tasks)

    # Hand each worker whole same-dataset runs of the task list: the
    # grid is dataset-major, so chunking by the composition count keeps
    # a dataset's cells on one worker, whose memoized kernel data and
    # baseline cost then serve every composition (instead of every
    # worker regenerating every dataset).
    chunksize = max(
        1,
        min(len(compositions), -(-len(tasks) // (2 * jobs))),
    )
    try:
        return _run_pool(tasks, min(jobs, len(tasks)), backend, chunksize)
    except _POOL_ERRORS as exc:  # degrade, never fail the experiment
        warnings.warn(
            f"parallel grid runner degraded to serial execution: {exc!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_serial(tasks)


def _run_serial(tasks: List[_CellTask]):
    return [_run_cell_task(task) for task in tasks]


def _run_pool(
    tasks: List[_CellTask],
    jobs: int,
    backend: Optional[str],
    chunksize: int = 1,
):
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_worker,
        initargs=(backend,),
    ) as pool:
        # map() yields results in submission order: deterministic rows.
        return list(pool.map(_run_cell_task, tasks, chunksize=chunksize))


def _pool_errors():
    import pickle
    from concurrent.futures.process import BrokenProcessPool

    return (BrokenProcessPool, pickle.PicklingError, OSError, ImportError)


_POOL_ERRORS = _pool_errors()


def worker_pool_health(jobs: int = 2) -> Tuple[bool, str]:
    """Probe whether process pools work here (``repro doctor``).

    Returns ``(ok, message)``; never raises — a sandbox that cannot
    spawn workers is reported, not crashed on.
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            echoed = list(pool.map(_echo, range(jobs)))
        if echoed != list(range(jobs)):
            return False, f"worker echo mismatch: {echoed!r}"
        return True, f"{jobs} workers spawned and responsive"
    except Exception as exc:
        return False, f"process pool unavailable ({exc!r}); grids run serially"


def _echo(value: int) -> int:
    return value
