"""The named compositions of the evaluation (paper Section 2.4).

    "All compositions we consider consist of a data reordering
    transformation (CPACK or Gpart) followed by the iteration-reordering
    transformation lexicographical grouping (lexGroup) for the j loop.  We
    also perform the composition CPACK, lexGroup, CPACK, lexGroup.
    Finally, we apply full sparse tiling (FST) after the other
    compositions."

Parameters target the L1 cache of the machine under test, as in the
paper ("we target the L1 cache when selecting parameters for Gpart and
full sparse tiling"):

* GPART partitions hold as many node records as fit in L1;
* the FST seed blocks cover about half an L1's worth of distinct nodes
  (expressed in interaction-loop iterations via the average degree);
* tilePack always follows FST (the paper's moldyn/irreg executors).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cachesim.machines import Machine
from repro.kernels.data import KernelData
from repro.runtime.inspector import (
    CPackStep,
    FullSparseTilingStep,
    GPartStep,
    LexGroupStep,
    Step,
    TilePackStep,
)


def gpart_partition_size(data: KernelData, machine: Machine, fraction: float = 1.0) -> int:
    """Nodes per GPART partition so a partition's records fill ``fraction``
    of the machine's L1."""
    capacity = int(machine.l1.size_bytes * fraction) // data.node_record_bytes
    return max(8, capacity)


def fst_seed_block(data: KernelData, machine: Machine, fraction: float = 0.5) -> int:
    """Seed block size (interaction iterations) so one tile's working set
    occupies about ``fraction`` of L1.

    After CPACK/GPART + lexGroup, consecutive interactions touch nearby
    nodes, so a seed block of ``B`` interactions has a working set of
    roughly ``B * num_nodes / num_inter`` distinct node records plus the
    ``B`` interaction records it streams.
    """
    bytes_per_interaction = (
        data.node_record_bytes * data.num_nodes / max(1, data.num_inter)
        + data.inter_record_bytes
    )
    block = int(machine.l1.size_bytes * fraction / bytes_per_interaction)
    return max(8, block)


StepBuilder = Callable[[KernelData, Machine], List[Step]]


def _cpack(data: KernelData, machine: Machine) -> List[Step]:
    return [CPackStep(), LexGroupStep()]


def _gpart(data: KernelData, machine: Machine) -> List[Step]:
    return [GPartStep(gpart_partition_size(data, machine)), LexGroupStep()]


def _cpack2x(data: KernelData, machine: Machine) -> List[Step]:
    return [CPackStep(), LexGroupStep(), CPackStep(), LexGroupStep()]


def _with_fst(base: StepBuilder) -> StepBuilder:
    def build(data: KernelData, machine: Machine) -> List[Step]:
        return base(data, machine) + [
            FullSparseTilingStep(fst_seed_block(data, machine)),
            TilePackStep(),
        ]

    return build


_BUILDERS: Dict[str, StepBuilder] = {
    "baseline": lambda data, machine: [],
    "cpack": _cpack,
    "gpart": _gpart,
    "cpack2x": _cpack2x,
    "cpack+fst": _with_fst(_cpack),
    "gpart+fst": _with_fst(_gpart),
    "cpack2x+fst": _with_fst(_cpack2x),
}

#: Every composition of the evaluation, in figure order.
COMPOSITIONS = tuple(_BUILDERS)

#: The sparse-tiling-bearing subset.
FST_COMPOSITIONS = tuple(n for n in COMPOSITIONS if n.endswith("+fst"))


def composition_steps(
    name: str, data: KernelData, machine: Machine
) -> List[Step]:
    """Instantiate a named composition for a kernel instance + machine."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown composition {name!r}; choose from {COMPOSITIONS}"
        ) from None
    return builder(data, machine)
