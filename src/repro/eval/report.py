"""Rendering of experiment results: fixed-width text and CSV."""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Sequence

from repro.eval.experiments import CellResult


def rows_to_csv(rows: Sequence[object], columns: Sequence[str]) -> str:
    """Serialize result rows (dataclasses or dicts) to CSV text."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(columns)
    for row in rows:
        record = []
        for col in columns:
            value = row[col] if isinstance(row, dict) else getattr(row, col)
            record.append(value)
        writer.writerow(record)
    return out.getvalue()


def format_rows(
    rows: Sequence[object], columns: Sequence[str], title: str = ""
) -> str:
    """Generic fixed-width table over attribute names."""
    header = [c for c in columns]
    body: List[List[str]] = []
    for row in rows:
        rendered = []
        for col in columns:
            value = getattr(row, col)
            if isinstance(value, float):
                rendered.append(
                    "inf" if value == float("inf") else f"{value:.3f}"
                )
            else:
                rendered.append(str(value))
        body.append(rendered)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_grid(
    rows: Sequence[CellResult],
    value: str = "normalized_time",
    title: str = "",
) -> str:
    """Pivot CellResults into a (kernel/dataset) x composition table —
    the layout of the paper's bar charts."""
    compositions: List[str] = []
    for row in rows:
        if row.composition not in compositions:
            compositions.append(row.composition)
    groups: Dict[str, Dict[str, float]] = {}
    for row in rows:
        key = f"{row.kernel}/{row.dataset}"
        cell = getattr(row, value)
        groups.setdefault(key, {})[row.composition] = cell

    width_key = max(len(k) for k in groups) if groups else 8
    widths = [max(len(c), 8) for c in compositions]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " " * width_key
        + "  "
        + "  ".join(c.rjust(w) for c, w in zip(compositions, widths))
    )
    for key, cells in groups.items():
        rendered = []
        for comp, w in zip(compositions, widths):
            v = cells.get(comp)
            if v is None:
                rendered.append("-".rjust(w))
            elif v == float("inf"):
                rendered.append("inf".rjust(w))
            else:
                rendered.append(f"{v:.3f}".rjust(w))
        lines.append(key.ljust(width_key) + "  " + "  ".join(rendered))
    return "\n".join(lines)
