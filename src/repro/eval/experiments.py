"""Run one experiment cell and whole grids.

A *cell* is (kernel, dataset, machine, composition): generate the data,
run the composed inspector, emit the transformed executor's trace,
simulate it on the machine, and derive the figures' quantities —
normalized executor time (Figures 6/7), inspector overhead and its
amortization in outer-loop iterations (Figures 8/9), and the remap-policy
overhead split (Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.cachesim.machines import Machine, machine_by_name
from repro.cachesim.model import simulate_cost
from repro.eval.compositions import composition_steps
from repro.kernels.data import KernelData, make_kernel_data
from repro.kernels.datasets import DEFAULT_SCALE, generate_dataset
from repro.kernels.specs import kernel_by_name
from repro.runtime.executor import ExecutionPlan, emit_trace
from repro.runtime.inspector import ComposedInspector

#: The kernel -> datasets pairing of the paper's figures (two inputs per
#: benchmark: the figure x-axis shows each benchmark's small and large
#: dataset, labeled by memory footprint).
BENCHMARK_DATASETS: Dict[str, Tuple[str, str]] = {
    "irreg": ("foil", "auto"),
    "nbf": ("foil", "auto"),
    "moldyn": ("mol1", "mol2"),
}

#: Process-wide inspector plan cache consulted by :func:`run_cell`.
#: ``None`` (the default) runs inspectors cold; the parallel runner's
#: worker initializer installs a per-worker memory-tier cache so cells
#: sharing an inspector fingerprint replay the realized plan.
_PLAN_CACHE = None


def set_plan_cache(cache) -> None:
    """Install (or clear, with ``None``) the process's plan cache."""
    global _PLAN_CACHE
    _PLAN_CACHE = cache


@dataclass
class CellResult:
    """Everything one experiment cell produced."""

    kernel: str
    dataset: str
    machine: str
    composition: str
    executor_cycles: int
    baseline_cycles: int
    l1_miss_rate: float
    inspector_touches: int
    inspector_cycles: float
    data_moves: int
    footprint_bytes: int
    #: Per-stage statuses from the inspector's PipelineReport
    #: (``("ok", "ok", ...)``; ``skipped``/``identity`` mark fallbacks).
    stage_statuses: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """Did any inspector stage fall back under a permissive policy?"""
        return any(s in ("skipped", "identity") for s in self.stage_statuses)

    @property
    def normalized_time(self) -> float:
        """Executor time relative to the baseline (Figures 6/7)."""
        return self.executor_cycles / self.baseline_cycles

    @property
    def savings_per_step(self) -> float:
        return self.baseline_cycles - self.executor_cycles

    @property
    def amortization_steps(self) -> float:
        """Outer-loop iterations to pay off the inspector (Figures 8/9).

        ``inf`` when the composition does not beat the baseline.
        """
        if self.savings_per_step <= 0:
            return float("inf")
        return self.inspector_cycles / self.savings_per_step


@lru_cache(maxsize=None)
def _kernel_data(kernel: str, dataset: str, scale: int, seed: int) -> KernelData:
    return make_kernel_data(kernel, generate_dataset(dataset, scale=scale), seed=seed)


@lru_cache(maxsize=None)
def _baseline_cost(
    kernel: str, dataset: str, machine: str, scale: int, seed: int
) -> Tuple[int, int]:
    data = _kernel_data(kernel, dataset, scale, seed)
    trace = emit_trace(data, ExecutionPlan.identity(), num_steps=1)
    report = simulate_cost(trace, machine_by_name(machine))
    return report.cycles, trace.total_bytes()


@lru_cache(maxsize=None)
def run_cell(
    kernel: str,
    dataset: str,
    machine: str,
    composition: str,
    scale: int = DEFAULT_SCALE,
    remap: str = "once",
    seed: int = 42,
    on_stage_failure: str = "raise",
) -> CellResult:
    """Run one (kernel, dataset, machine, composition) cell.

    Results are memoized (everything is deterministic), so figures sharing
    cells — e.g. Figure 6 and Figure 8 — simulate each cell once.
    """
    machine_obj = machine_by_name(machine)
    data = _kernel_data(kernel, dataset, scale, seed)
    baseline_cycles, footprint = _baseline_cost(
        kernel, dataset, machine, scale, seed
    )

    steps = composition_steps(composition, data, machine_obj)
    if steps:
        inspector = ComposedInspector(
            steps, remap=remap, on_stage_failure=on_stage_failure
        )
        result = inspector.run(data, cache=_PLAN_CACHE)
        trace = emit_trace(result.transformed, result.plan, num_steps=1)
        touches = result.total_touches
        moves = result.data_moves
        statuses = tuple(s.status for s in result.report.stages)
    else:
        trace = emit_trace(data, ExecutionPlan.identity(), num_steps=1)
        touches = 0
        moves = 0
        statuses = ()

    report = simulate_cost(trace, machine_obj)
    return CellResult(
        kernel=kernel,
        dataset=dataset,
        machine=machine,
        composition=composition,
        executor_cycles=report.cycles,
        baseline_cycles=baseline_cycles,
        l1_miss_rate=report.l1_miss_rate,
        inspector_touches=touches,
        inspector_cycles=machine_obj.inspector_cycles(touches),
        data_moves=moves,
        footprint_bytes=footprint,
        stage_statuses=statuses,
    )


def run_grid(
    machine: str,
    compositions: Tuple[str, ...],
    scale: int = DEFAULT_SCALE,
    remap: str = "once",
    kernels: Optional[Tuple[str, ...]] = None,
    jobs: Optional[int] = None,
) -> List[CellResult]:
    """Run a full figure grid: every benchmark x dataset x composition.

    ``jobs`` > 1 dispatches the cells to worker processes (see
    :mod:`repro.eval.parallel`); row order and values are identical to a
    serial run either way.  ``None``/``1`` stays in process.
    """
    if jobs is not None and jobs != 1:
        from repro.eval.parallel import run_grid_parallel

        return run_grid_parallel(
            machine, compositions, scale=scale, remap=remap,
            kernels=kernels, jobs=jobs,
        )
    rows: List[CellResult] = []
    for kernel, datasets in BENCHMARK_DATASETS.items():
        if kernels is not None and kernel not in kernels:
            continue
        for dataset in datasets:
            for composition in compositions:
                rows.append(
                    run_cell(
                        kernel, dataset, machine, composition,
                        scale=scale, remap=remap,
                    )
                )
    return rows
