"""One function per paper artifact.

Each returns structured rows (dataclasses / dicts) so tests can assert on
the *shape* of the reproduction and the benchmark harness can print them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cachesim.machines import machine_by_name
from repro.eval.compositions import (
    COMPOSITIONS,
    composition_steps,
    fst_seed_block,
    gpart_partition_size,
)
from repro.eval.experiments import (
    BENCHMARK_DATASETS,
    CellResult,
    _kernel_data,
    run_cell,
    run_grid,
)
from repro.kernels.datasets import DEFAULT_SCALE, _PAPER_SIZES, generate_dataset
from repro.kernels.data import make_kernel_data
from repro.runtime.executor import emit_trace
from repro.runtime.inspector import ComposedInspector
from repro.cachesim.model import simulate_cost

#: Compositions plotted in the executor-time figures (baseline is the
#: normalization denominator, not a bar).
FIGURE_COMPOSITIONS = tuple(c for c in COMPOSITIONS if c != "baseline")


@dataclass
class DatasetRow:
    name: str
    paper_nodes: int
    paper_edges: int
    nodes: int
    edges: int
    edges_per_node: float


def table1(scale: int = DEFAULT_SCALE) -> List[DatasetRow]:
    """Section 2.4's data-set table: paper sizes vs generated stand-ins."""
    rows = []
    for name, (nodes, edges, _dim) in _PAPER_SIZES.items():
        ds = generate_dataset(name, scale=scale)
        rows.append(
            DatasetRow(
                name=name,
                paper_nodes=nodes,
                paper_edges=edges,
                nodes=ds.num_nodes,
                edges=ds.num_interactions,
                edges_per_node=ds.edges_per_node,
            )
        )
    return rows


def figure6(scale: int = DEFAULT_SCALE, jobs: Optional[int] = None) -> List[CellResult]:
    """Normalized executor time (no overhead), Power3-like machine."""
    return run_grid("power3", FIGURE_COMPOSITIONS, scale=scale, jobs=jobs)


def figure7(scale: int = DEFAULT_SCALE, jobs: Optional[int] = None) -> List[CellResult]:
    """Normalized executor time (no overhead), Pentium4-like machine."""
    return run_grid("pentium4", FIGURE_COMPOSITIONS, scale=scale, jobs=jobs)


def figure8(scale: int = DEFAULT_SCALE, jobs: Optional[int] = None) -> List[CellResult]:
    """Amortization in outer-loop iterations, Power3-like machine."""
    return run_grid("power3", FIGURE_COMPOSITIONS, scale=scale, jobs=jobs)


def figure9(scale: int = DEFAULT_SCALE, jobs: Optional[int] = None) -> List[CellResult]:
    """Amortization in outer-loop iterations, Pentium4-like machine."""
    return run_grid("pentium4", FIGURE_COMPOSITIONS, scale=scale, jobs=jobs)


@dataclass
class RemapRow:
    """One bar of Figure 16: % inspector-overhead reduction of remap-once."""

    kernel: str
    dataset: str
    machine: str
    composition: str
    touches_each: int
    touches_once: int

    @property
    def percent_reduction(self) -> float:
        if not self.touches_each:
            return 0.0
        return 100.0 * (self.touches_each - self.touches_once) / self.touches_each


def figure16(scale: int = DEFAULT_SCALE) -> List[RemapRow]:
    """Remap-once vs remap-each inspector overhead.

    The paper shows irreg and moldyn (nbf's compositions rarely contain
    two or more data reorderings) for the compositions that do contain
    several data reorderings — here ``cpack2x+fst`` and ``cpack+fst``
    (CPACK + tilePack already makes two).
    """
    rows: List[RemapRow] = []
    for machine in ("power3", "pentium4"):
        for kernel in ("irreg", "moldyn"):
            for dataset in BENCHMARK_DATASETS[kernel]:
                for composition in ("cpack+fst", "cpack2x+fst"):
                    each = run_cell(
                        kernel, dataset, machine, composition,
                        scale=scale, remap="each",
                    )
                    once = run_cell(
                        kernel, dataset, machine, composition,
                        scale=scale, remap="once",
                    )
                    rows.append(
                        RemapRow(
                            kernel=kernel,
                            dataset=dataset,
                            machine=machine,
                            composition=composition,
                            touches_each=each.inspector_touches,
                            touches_once=once.inspector_touches,
                        )
                    )
    return rows


@dataclass
class SweepRow:
    """One point of Figure 17: executor time vs cache-targeting fraction."""

    kernel: str
    dataset: str
    machine: str
    fraction: float
    normalized_time: float


#: L1 fractions swept in Figure 17 (the paper varies Gpart/FST parameters
#: to target different cache sizes).
SWEEP_FRACTIONS = (0.25, 0.5, 1.0, 2.0, 4.0)


def figure17(
    scale: int = DEFAULT_SCALE,
    kernels: Tuple[str, ...] = ("moldyn", "irreg"),
) -> List[SweepRow]:
    """Sweep the Gpart/FST cache-target parameter (gpart+fst composition)."""
    from repro.runtime.inspector import (
        FullSparseTilingStep,
        GPartStep,
        LexGroupStep,
        TilePackStep,
    )

    rows: List[SweepRow] = []
    for machine_name in ("power3", "pentium4"):
        machine = machine_by_name(machine_name)
        for kernel in kernels:
            dataset = BENCHMARK_DATASETS[kernel][0]
            data = _kernel_data(kernel, dataset, scale, 42)
            base = run_cell(kernel, dataset, machine_name, "baseline", scale=scale)
            for fraction in SWEEP_FRACTIONS:
                steps = [
                    GPartStep(gpart_partition_size(data, machine, fraction)),
                    LexGroupStep(),
                    FullSparseTilingStep(fst_seed_block(data, machine, fraction / 2)),
                    TilePackStep(),
                ]
                result = ComposedInspector(steps).run(data)
                trace = emit_trace(result.transformed, result.plan, num_steps=1)
                cycles = simulate_cost(trace, machine).cycles
                rows.append(
                    SweepRow(
                        kernel=kernel,
                        dataset=dataset,
                        machine=machine_name,
                        fraction=fraction,
                        normalized_time=cycles / base.baseline_cycles,
                    )
                )
    return rows
