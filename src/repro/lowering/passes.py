"""The ordered rewrite pipeline over the executor loop-nest IR.

Modeled on Devito's ``DevitoRewriter._pipeline`` of staged ``dle_pass``
rewrites (fission -> blocking -> simdize -> parallelize): each pass is a
small, inspectable rewrite of the :class:`~repro.lowering.ir.Program`,
applied in a fixed order by :class:`LoweringRewriter`, with every
application recorded in the :class:`RewriteState` log.

* **fission** — split each interaction loop's statements into a pure
  *gather* of the hoisted common subexpression and per-statement signed
  *commits*.  This is the legality keystone: once the payload is
  computed from arrays the loop never writes, commits can be applied
  array-by-array in index order — the exact operation sequence of the
  library executor's ``np.add.at`` calls — so the batched backends stay
  bit-identical.  A loop whose statements share no common payload (or
  whose payload reads a committed array) is left in scalar form.
* **blocking** — mark the program sparse-tiled: the emitted executor
  iterates a tile schedule outermost (Figure 14's ``do t / do x in
  sched(t, l)``), tiles in ascending id order (the atomic-tile condition
  ``theta(src) <= theta(dst)`` makes ascending ids a legal
  linearization).
* **vectorize** — mark loops for batched emission: node sweeps become
  whole-array (or fancy-indexed) updates, fissioned interaction loops
  become gather/scatter batches over the sigma/delta-remapped index
  arrays.  Only legal on node loops whose statements address every array
  directly, and on fissioned interaction loops.
* **parallelize** — enable wavefront grouping on tiled programs: the
  executor accepts the static wave schedule and runs each wave
  phase-by-phase (all gathers, then commits in ascending tile order),
  mirroring ``run_numeric_wavefront``.  The static wavefront stays the
  legality skeleton ("Hybrid Static/Dynamic Schedules for Tiled
  Polyhedral Programs"): dynamic timing may change *when* a tile's pure
  gather runs, never the commit order.

``PassConfig`` toggles individual passes (the benchmark's ablation
knob); its digest is part of the compiled-artifact fingerprint.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from repro.lowering.ir import (
    Commit,
    GatherCommit,
    LoopIR,
    Neg,
    Program,
    expr_loads,
)


@dataclass(frozen=True)
class PassConfig:
    """Which pipeline passes run (all on by default)."""

    fission: bool = True
    blocking: bool = True
    vectorize: bool = True
    parallelize: bool = True
    #: Replace the wave barrier with dependence-counter scheduling
    #: (commits stay in the wave executor's deterministic order).
    dynamic_schedule: bool = False

    def to_dict(self):
        return {
            "fission": self.fission,
            "blocking": self.blocking,
            "vectorize": self.vectorize,
            "parallelize": self.parallelize,
            "dynamic_schedule": self.dynamic_schedule,
        }

    def digest(self) -> str:
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()


@dataclass
class PassRecord:
    """One pipeline stage's outcome, for reports and tests.

    ``before``/``after`` snapshot the (immutable) program around the
    pass, so the IR verifier (:mod:`repro.analysis.irverify`) can
    translation-validate each rewrite independently; ``proof`` is filled
    by the verifier with that pass's validation artifact.
    """

    name: str
    applied: bool
    notes: List[str] = field(default_factory=list)
    before: Optional[Program] = None
    after: Optional[Program] = None
    proof: Optional[dict] = None


@dataclass
class RewriteState:
    """The program threading through the pipeline, plus the pass log."""

    program: Program
    config: PassConfig = field(default_factory=PassConfig)
    log: List[PassRecord] = field(default_factory=list)

    def record(
        self,
        name: str,
        applied: bool,
        notes: List[str],
        before: Optional[Program] = None,
        after: Optional[Program] = None,
    ):
        self.log.append(PassRecord(name, applied, notes, before, after))


def rewrite_pass(fn: Callable) -> Callable:
    """Mark a method as one pipeline stage: it receives the state, returns
    ``(program, applied, notes)``, and the wrapper threads + logs it."""

    @functools.wraps(fn)
    def wrapper(self, state: RewriteState):
        before = state.program
        program, applied, notes = fn(self, state)
        state.program = program
        state.record(
            fn.__name__.lstrip("_"), applied, notes, before, program
        )
        return state

    wrapper.__is_rewrite_pass__ = True
    return wrapper


class LoweringRewriter:
    """Run the ordered pass pipeline over a lowered program.

    ``tiled`` selects the sparse-tiled executor shape (the blocking and
    parallelize passes are no-ops without it).
    """

    def __init__(self, config: Optional[PassConfig] = None, tiled: bool = False):
        self.config = config or PassConfig()
        self.tiled = tiled

    def run(self, program: Program) -> RewriteState:
        state = RewriteState(program=program, config=self.config)
        self._pipeline(state)
        return state

    def _pipeline(self, state: RewriteState) -> None:
        self._loop_fission(state)
        self._loop_blocking(state)
        self._vectorize(state)
        self._parallelize(state)
        self._dynamic_schedule(state)

    # -- passes ---------------------------------------------------------------

    @rewrite_pass
    def _loop_fission(self, state: RewriteState):
        if not self.config.fission:
            return state.program, False, ["disabled by config"]
        notes: List[str] = []
        loops: List[LoopIR] = []
        changed = False
        for loop in state.program.loops:
            if loop.domain != "inters":
                loops.append(loop)
                continue
            split = _fission_gather_commit(loop)
            if split is None:
                notes.append(f"{loop.label}: no common payload, kept scalar")
                loops.append(loop)
                continue
            changed = True
            notes.append(
                f"{loop.label}: hoisted payload, "
                f"{len(split.commits)} commit pass(es)"
            )
            loops.append(replace(loop, fissioned=split))
        return replace(state.program, loops=tuple(loops)), changed, notes

    @rewrite_pass
    def _loop_blocking(self, state: RewriteState):
        if not self.tiled:
            return state.program, False, ["untiled executor"]
        if not self.config.blocking:
            return state.program, False, ["disabled by config"]
        return (
            replace(state.program, tiled=True),
            True,
            ["tile schedule outermost, ascending tile order"],
        )

    @rewrite_pass
    def _vectorize(self, state: RewriteState):
        if not self.config.vectorize:
            return state.program, False, ["disabled by config"]
        notes: List[str] = []
        loops: List[LoopIR] = []
        changed = False
        for loop in state.program.loops:
            if loop.domain == "nodes":
                legal = all(
                    load.index.direct
                    for stmt in loop.stmts
                    for load in [
                        *expr_loads(stmt.increment),
                    ]
                ) and all(stmt.index.direct for stmt in loop.stmts)
                if legal:
                    loops.append(replace(loop, vector=True))
                    changed = True
                    notes.append(f"{loop.label}: whole-array update")
                else:  # pragma: no cover - no such kernel today
                    loops.append(loop)
                    notes.append(f"{loop.label}: indirect node access, scalar")
            else:
                if loop.fissioned is not None:
                    loops.append(replace(loop, vector=True))
                    changed = True
                    notes.append(f"{loop.label}: batched gather/scatter")
                else:
                    loops.append(loop)
                    notes.append(
                        f"{loop.label}: not fissioned, kept scalar "
                        "(bit-identity requires the gather/commit split)"
                    )
        return replace(state.program, loops=tuple(loops)), changed, notes

    @rewrite_pass
    def _parallelize(self, state: RewriteState):
        if not state.program.tiled:
            return state.program, False, ["untiled executor"]
        if not self.config.parallelize:
            return state.program, False, ["disabled by config"]
        return (
            replace(state.program, wave_parallel=True),
            True,
            [
                "wavefront grouping honored; commits stay in ascending "
                "tile order (static legality skeleton)"
            ],
        )

    @rewrite_pass
    def _dynamic_schedule(self, state: RewriteState):
        if not self.config.dynamic_schedule:
            return state.program, False, ["disabled by config"]
        if not state.program.wave_parallel:
            return (
                state.program,
                False,
                [
                    "no wave-parallel skeleton: dependence counters have "
                    "nothing to derive from, kept level-synchronous"
                ],
            )
        return (
            replace(state.program, dynamic_schedule=True),
            True,
            [
                "wave barrier replaced by per-tile dependence counters "
                "(work-stealing pool); commits serialized in the wave "
                "executor's (wave, tile) order, payloads buffered "
                "per tile — bit-identical combine"
            ],
        )


def _strip_sign(expr) -> Tuple[object, int]:
    if isinstance(expr, Neg):
        return expr.operand, -1
    return expr, 1


def _fission_gather_commit(loop: LoopIR) -> Optional[GatherCommit]:
    """Find the loop's common payload and per-statement commit signs.

    All statements must be indirect updates whose increments are the
    same expression up to sign, and that payload must not read any array
    a commit writes (so hoisting cannot change any operand value).
    """
    if not loop.stmts:
        return None
    commits: List[Commit] = []
    payload = None
    for stmt in loop.stmts:
        if stmt.index.direct:
            return None
        base, sign = _strip_sign(stmt.increment)
        if payload is None:
            payload = base
        elif base != payload:
            return None
        commits.append(Commit(stmt.array, stmt.index.via, sign, stmt.label))
    written = {c.array for c in commits}
    if any(load.array in written for load in expr_loads(payload)):
        return None
    return GatherCommit(payload=payload, commits=tuple(commits))


__all__ = [
    "LoweringRewriter",
    "PassConfig",
    "PassRecord",
    "RewriteState",
    "rewrite_pass",
]
