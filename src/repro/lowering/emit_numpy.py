"""Emit a vectorized-NumPy executor from the rewritten loop-nest IR.

The emitted source is ordinary Python over ``numpy`` — the compiled
analogue of the library executor — and is **operation-identical** to it:

* vectorized node loops become the same whole-array in-place updates the
  step functions perform (``x += 0.01 * vx + 0.0005 * fx``);
* fissioned interaction loops become one batched gather of the payload
  followed by one ``np.add.at`` per commit, in statement order — exactly
  the library's gather/commit sequence, so results are bit-identical;
* loops the pipeline left scalar are emitted as faithful Figure-13
  scalar loops (the interpreter-speed rendering; ablation only).

The tiled emitter mirrors :func:`repro.runtime.executor.run_numeric_wavefront`
structurally: per wave, node phases run tile by tile, interaction phases
gather every tile's payload first and then commit in the wave's tile
order — the fixed commit order that makes wavefront runs reproducible.

Entry points of the generated module:

* untiled — ``run(arrays, left, right, num_steps=1)``
* tiled  — ``run(arrays, left, right, schedule, wave_groups=None,
  num_steps=1)`` where ``schedule[t][pos]`` are loop ``pos``'s iterations
  in tile ``t`` and ``wave_groups`` is a sequence of tile-id arrays
  (``None`` = every tile its own wave, i.e. serial tile order).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.codegen.emit import SourceWriter
from repro.lowering.ir import (
    BinOp,
    Const,
    Expr,
    Load,
    LoopIR,
    Neg,
    Program,
)

#: Bumped whenever emitted code changes shape; part of the artifact key.
EMITTER_VERSION = "numpy-1"

#: Appended to the artifact key when the sanitizer prologue is emitted,
#: so guarded and unguarded modules never collide in the cache.
SANITIZE_TAG = "san1"

#: Appended to the artifact key (and the artifact suffix) for the
#: counter-scheduled entry point, so wave and dynamic builds are
#: distinct cache entries (`repro cache stats` reports them apart).
DYNAMIC_TAG = "dyn1"


def _render(expr: Expr, direct: str, via: Dict[str, str]) -> str:
    """Render an expression; ``direct`` is the subscript text for direct
    loads (``""`` = whole array) and ``via`` maps an index-array name to
    the subscript text of loads through it."""
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Load):
        if expr.index.direct:
            return f"A_{expr.array}{direct}"
        return f"A_{expr.array}[{via[expr.index.via]}]"
    if isinstance(expr, Neg):
        return f"(-{_render(expr.operand, direct, via)})"
    if isinstance(expr, BinOp):
        left = _render(expr.left, direct, via)
        right = _render(expr.right, direct, via)
        return f"({left} {expr.op} {right})"
    raise TypeError(f"unknown expression {expr!r}")


def _scalar_via(ivar: str) -> Dict[str, str]:
    return {"left": f"left[{ivar}]", "right": f"right[{ivar}]"}


def _emit_node_loop(w: SourceWriter, loop: LoopIR, subset: Optional[str]) -> None:
    """A node sweep: whole-array (or fancy-indexed) in-place updates."""
    if loop.vector:
        sub = f"[{subset}]" if subset else ""
        for stmt in loop.stmts:
            inc = _render(stmt.increment, sub, {})
            w.line(f"A_{stmt.array}{sub} += {inc}")
        return
    ivar = loop.index_var
    bound = f"len({subset})" if subset else "_num_nodes"
    with w.block(f"for _k in range({bound}):"):
        w.line(f"{ivar} = {subset}[_k]" if subset else f"{ivar} = _k")
        for stmt in loop.stmts:
            inc = _render(stmt.increment, f"[{ivar}]", _scalar_via(ivar))
            w.line(f"A_{stmt.array}[{ivar}] += {inc}")


def _emit_inter_loop(w: SourceWriter, loop: LoopIR, subset: Optional[str]) -> None:
    """An interaction loop in the untiled executor."""
    if loop.fissioned is not None and loop.vector:
        gc = loop.fissioned
        l_sub = f"left[{subset}]" if subset else "left"
        r_sub = f"right[{subset}]" if subset else "right"
        w.line(f"_l = {l_sub}")
        w.line(f"_r = {r_sub}")
        payload = _render(gc.payload, "", {"left": "_l", "right": "_r"})
        w.line(f"_g = {payload}")
        for commit in gc.commits:
            end = {"left": "_l", "right": "_r"}[commit.via]
            val = "_g" if commit.sign > 0 else "-_g"
            w.line(f"np.add.at(A_{commit.array}, {end}, {val})")
        return
    # Scalar Figure-13 rendering (statements interleaved per iteration).
    ivar = loop.index_var
    bound = f"len({subset})" if subset else "_num_inter"
    with w.block(f"for _k in range({bound}):"):
        w.line(f"{ivar} = {subset}[_k]" if subset else f"{ivar} = _k")
        for stmt in loop.stmts:
            via = _scalar_via(ivar)
            target = f"A_{stmt.array}[{via[stmt.index.via]}]"
            inc = _render(stmt.increment, f"[{ivar}]", via)
            w.line(f"{target} += {inc}")


def _emit_prologue(w: SourceWriter, program: Program) -> None:
    for name in program.data_arrays:
        w.line(f"A_{name} = arrays[{name!r}]")
    w.line(f"_num_nodes = A_{program.data_arrays[0]}.shape[0]")
    w.line("_num_inter = left.shape[0]")


def _emit_guard_helper(w: SourceWriter) -> None:
    """The masked pre-check the sanitizer prologue calls: one vectorized
    range scan per index source, raising the typed trap *before* any data
    array is touched (so a corrupted dataset leaves state unmodified)."""
    with w.block("def _guard(name, values, bound):"):
        w.line("values = np.asarray(values)")
        w.line("_bad = np.flatnonzero((values < 0) | (values >= bound))")
        with w.block("if _bad.size:"):
            w.line("_pos = int(_bad[0])")
            w.line(
                "raise ExecutorBoundsError("
                "f'{name}[{_pos}] = {int(values[_pos])} outside [0, {bound})',"
                " array=name, bound=int(bound), stage='sanitizer',"
                " indices=[int(_i) for _i in _bad[:5]])"
            )


def _emit_guard_calls(w: SourceWriter, tiled: bool) -> None:
    """Sanitizer prologue body — the run-time discharge of the verifier's
    assumed facts (index-array-range, tile-partition, wave-cover)."""
    with w.block("if right.shape[0] != _num_inter:"):
        w.line(
            "raise ExecutorBoundsError("
            "f'right has {right.shape[0]} entries, left has {_num_inter}',"
            " array='right', bound=int(_num_inter), stage='sanitizer')"
        )
    w.line("_guard('left', left, _num_nodes)")
    w.line("_guard('right', right, _num_nodes)")
    if tiled:
        w.line("_extents = " "[_num_nodes if _d == 'nodes' else _num_inter "
               "for _d in _loop_domains]")
        with w.block("for _t, _tile in enumerate(schedule):"):
            with w.block("for _pos, _bound in enumerate(_extents):"):
                w.line(
                    "_guard(f'schedule[{_t}][{_pos}]', _tile[_pos], _bound)"
                )
        with w.block("if wave_groups is not None:"):
            with w.block("for _wv, _group in enumerate(wave_groups):"):
                w.line(
                    "_guard(f'wave_groups[{_wv}]', _group, len(schedule))"
                )


def emit_numpy(program: Program, sanitize: bool = False) -> str:
    """Source of the untiled NumPy executor for a rewritten program.

    With ``sanitize`` the module opens with a masked range pre-check of
    ``left``/``right`` that raises :class:`~repro.errors.
    ExecutorBoundsError` before any data array is read or written; the
    compute body is unchanged, so valid datasets stay bit-identical."""
    w = SourceWriter()
    w.line(f'"""NumPy executor for {program.kernel_name!r} '
           '(generated by repro.lowering; do not edit)."""')
    w.line("import numpy as np")
    if sanitize:
        w.line("from repro.errors import ExecutorBoundsError")
    w.line()
    if sanitize:
        _emit_guard_helper(w)
        w.line()
    with w.block("def run(arrays, left, right, num_steps=1):"):
        _emit_prologue(w, program)
        if sanitize:
            _emit_guard_calls(w, tiled=False)
        with w.block("for _step in range(num_steps):"):
            for loop in program.loops:
                w.line(f"# {loop.label} ({loop.domain})")
                if loop.domain == "nodes":
                    _emit_node_loop(w, loop, None)
                else:
                    _emit_inter_loop(w, loop, None)
        w.line("return arrays")
    return w.source()


def emit_numpy_tiled(program: Program, sanitize: bool = False) -> str:
    """Source of the tiled wave executor (mirrors ``run_numeric_wavefront``:
    per wave, gathers for every tile, then commits in the wave's tile
    order).  ``sanitize`` additionally range-checks every tile-schedule
    iteration list and wave group before the first step."""
    w = SourceWriter()
    w.line(f'"""Tiled NumPy executor for {program.kernel_name!r} '
           '(generated by repro.lowering; do not edit)."""')
    w.line("import numpy as np")
    if sanitize:
        w.line("from repro.errors import ExecutorBoundsError")
    w.line()
    if sanitize:
        _emit_guard_helper(w)
        w.line()
    with w.block(
        "def run(arrays, left, right, schedule, wave_groups=None, num_steps=1):"
    ):
        _emit_prologue(w, program)
        if sanitize:
            domains = [loop.domain for loop in program.loops]
            w.line(f"_loop_domains = {domains!r}")
            _emit_guard_calls(w, tiled=True)
        with w.block("if wave_groups is None:"):
            w.line("wave_groups = [[_t] for _t in range(len(schedule))]")
        with w.block("for _step in range(num_steps):"):
            with w.block("for _group in wave_groups:"):
                w.line("_tiles = [schedule[int(_t)] for _t in _group]")
                for pos, loop in enumerate(program.loops):
                    w.line(f"# {loop.label} ({loop.domain})")
                    if loop.domain == "nodes":
                        with w.block("for _tile in _tiles:"):
                            w.line(f"_it = _tile[{pos}]")
                            with w.block("if len(_it):"):
                                _emit_node_loop(w, loop, "_it")
                    elif loop.fissioned is not None and loop.vector:
                        gc = loop.fissioned
                        payload = _render(
                            gc.payload, "", {"left": "_l", "right": "_r"}
                        )
                        w.line(
                            f"_work = [(left[_t[{pos}]], right[_t[{pos}]]) "
                            f"for _t in _tiles if len(_t[{pos}])]"
                        )
                        w.line(
                            f"_payloads = [{payload} for (_l, _r) in _work]"
                        )
                        with w.block(
                            "for (_l, _r), _g in zip(_work, _payloads):"
                        ):
                            for commit in gc.commits:
                                end = {"left": "_l", "right": "_r"}[commit.via]
                                val = "_g" if commit.sign > 0 else "-_g"
                                w.line(
                                    f"np.add.at(A_{commit.array}, {end}, {val})"
                                )
                    else:
                        with w.block("for _tile in _tiles:"):
                            w.line(f"_it = _tile[{pos}]")
                            with w.block("if len(_it):"):
                                _emit_inter_loop(w, loop, "_it")
        w.line("return arrays")
    return w.source()


def _dynamic_loop_split(program: Program):
    """(pre-loops, the fissioned interaction loop + position, post-loops).

    The dynamic emitters need the three-stage tile task: node loops
    before the interaction loop run in the gather stage, the interaction
    loop's payload is buffered per tile and committed at the tile's
    turn, node loops after it run in the post stage.  Requires exactly
    one interaction loop, fissioned — which is what the IRV006 static
    obligations (and the ``dynamic_schedule`` pass gating) guarantee.
    """
    from repro.errors import ValidationError

    inter = [
        (pos, loop)
        for pos, loop in enumerate(program.loops)
        if loop.domain != "nodes"
    ]
    if len(inter) != 1:
        raise ValidationError(
            f"dynamic schedule needs exactly one interaction loop, "
            f"{program.kernel_name} has {len(inter)}"
        )
    ip, inter_loop = inter[0]
    if inter_loop.fissioned is None:
        raise ValidationError(
            f"dynamic schedule needs the gather/commit split on "
            f"{inter_loop.label} (run the fission pass)"
        )
    pre = [(pos, program.loops[pos]) for pos in range(ip)]
    post = [
        (pos, program.loops[pos])
        for pos in range(ip + 1, len(program.loops))
    ]
    return pre, ip, inter_loop, post


def emit_numpy_dynamic(program: Program, sanitize: bool = False) -> str:
    """Source of the counter-scheduled NumPy executor.

    The generated module builds the three tile-stage closures from the
    IR and hands them to :func:`repro.lowering.schedule.run_dynamic`
    (work-stealing pool, commit token): gathers buffer each tile's *raw*
    payload vector, commits replay them with the same ``np.add.at``
    calls the wave emitter issues, in the wave executor's commit order —
    bit-identical at any thread count.  Entry point::

        run(arrays, left, right, schedule, wave_groups=None,
            num_steps=1, dag=None, num_threads=None)

    ``dag`` is a :class:`~repro.lowering.schedule.TileDAG` (``None``
    degrades to the conservative barrier DAG from ``wave_groups``).
    """
    pre, ip, inter_loop, post = _dynamic_loop_split(program)
    gc = inter_loop.fissioned
    w = SourceWriter()
    w.line(f'"""Dynamic-schedule NumPy executor for '
           f'{program.kernel_name!r} '
           '(generated by repro.lowering; do not edit)."""')
    w.line("import numpy as np")
    w.line("from repro.lowering.schedule import run_dynamic, "
           "tile_dag_from_waves")
    if sanitize:
        w.line("from repro.errors import ExecutorBoundsError")
    w.line()
    if sanitize:
        _emit_guard_helper(w)
        w.line()
    with w.block(
        "def run(arrays, left, right, schedule, wave_groups=None, "
        "num_steps=1, dag=None, num_threads=None):"
    ):
        _emit_prologue(w, program)
        if sanitize:
            domains = [loop.domain for loop in program.loops]
            w.line(f"_loop_domains = {domains!r}")
            _emit_guard_calls(w, tiled=True)
            with w.block("if dag is not None:"):
                w.line("_guard('dag.succ_indices', dag.succ_indices, "
                       "len(schedule))")
                w.line("_guard('dag.order', dag.order, len(schedule))")
        with w.block("if dag is None:"):
            w.line("dag = tile_dag_from_waves(wave_groups, len(schedule))")
        w.line("_payloads = [None] * len(schedule)")
        w.line("_ends = [None] * len(schedule)")
        with w.block("def _stage_gather(_t):"):
            w.line("_tile = schedule[_t]")
            for pos, loop in pre:
                w.line(f"# {loop.label} ({loop.domain})")
                w.line(f"_it = _tile[{pos}]")
                with w.block("if len(_it):"):
                    _emit_node_loop(w, loop, "_it")
            w.line(f"# {inter_loop.label} gather")
            w.line(f"_it = _tile[{ip}]")
            with w.block("if len(_it):"):
                w.line("_l = left[_it]")
                w.line("_r = right[_it]")
                payload = _render(gc.payload, "", {"left": "_l", "right": "_r"})
                w.line("_ends[_t] = (_l, _r)")
                w.line(f"_payloads[_t] = {payload}")
        with w.block("def _stage_commit(_t):"):
            with w.block("if _payloads[_t] is not None:"):
                w.line("_l, _r = _ends[_t]")
                w.line("_g = _payloads[_t]")
                for commit in gc.commits:
                    end = {"left": "_l", "right": "_r"}[commit.via]
                    val = "_g" if commit.sign > 0 else "-_g"
                    w.line(f"np.add.at(A_{commit.array}, {end}, {val})")
                w.line("_payloads[_t] = None")
                w.line("_ends[_t] = None")
        with w.block("def _stage_post(_t):"):
            w.line("_tile = schedule[_t]")
            if not post:
                w.line("pass")
            for pos, loop in post:
                w.line(f"# {loop.label} ({loop.domain})")
                w.line(f"_it = _tile[{pos}]")
                with w.block("if len(_it):"):
                    _emit_node_loop(w, loop, "_it")
        w.line("run_dynamic(dag, _stage_gather, _stage_commit, "
               "_stage_post, num_threads=num_threads, num_steps=num_steps)")
        w.line("return arrays")
    return w.source()


__all__ = [
    "DYNAMIC_TAG",
    "EMITTER_VERSION",
    "SANITIZE_TAG",
    "emit_numpy",
    "emit_numpy_dynamic",
    "emit_numpy_tiled",
]
