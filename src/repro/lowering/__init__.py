"""repro.lowering — the compiled executor tier.

Lowers each kernel's executor loop nest into a small IR
(:mod:`repro.lowering.ir`), rewrites it with an ordered Devito-style
pass pipeline (:mod:`repro.lowering.passes`: fission -> blocking ->
vectorize -> parallelize), and emits either vectorized-NumPy source
(:mod:`repro.lowering.emit_numpy`) or C compiled at bind time
(:mod:`repro.lowering.emit_c` + :mod:`repro.lowering.toolchain`).
:mod:`repro.lowering.executor` binds the chosen backend, content-
addresses the artifacts in the plan cache, and guarantees bit-identity
with the library executor.
"""

from repro.lowering.executor import (
    DEFAULT_EXECUTOR_BACKEND,
    EXECUTOR_BACKEND_ENV,
    EXECUTOR_BACKENDS,
    EXECUTOR_LADDER,
    CompiledExecutor,
    artifact_key,
    clear_executor_memo,
    compile_executor,
    executor_backend_report,
    resolve_executor_backend,
)
from repro.lowering.ir import Program, ir_hash, lower_kernel
from repro.lowering.passes import LoweringRewriter, PassConfig

__all__ = [
    "DEFAULT_EXECUTOR_BACKEND",
    "EXECUTOR_BACKEND_ENV",
    "EXECUTOR_BACKENDS",
    "EXECUTOR_LADDER",
    "CompiledExecutor",
    "LoweringRewriter",
    "PassConfig",
    "Program",
    "artifact_key",
    "clear_executor_memo",
    "compile_executor",
    "executor_backend_report",
    "ir_hash",
    "lower_kernel",
    "resolve_executor_backend",
]
