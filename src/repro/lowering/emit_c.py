"""Emit a C executor from the rewritten loop-nest IR.

The generated translation unit exports one function:

* untiled::

      void run(double *D0, ..., const int64_t *left, const int64_t *right,
               int64_t num_nodes, int64_t num_inter, int64_t num_steps,
               double *scratch)

* tiled (``run_tiled``) additionally takes, per kernel loop ``p``, the
  CSR-flattened tile schedule (``iters_p`` concatenated iterations +
  ``off_p`` tile offsets, ``num_tiles + 1`` entries) and the wavefront
  grouping (``wave_tiles`` concatenated tile ids + ``wave_off``,
  ``num_waves + 1`` entries).

Bit-identity with the library executor comes from emitting the *same
operation sequence* ``numpy`` performs, not from tolerances:

* a vectorized node update ``x += e`` is per-element
  ``x[i] = x[i] + e[i]`` in index order;
* ``np.add.at(a, idx, g)`` is per-element ``a[idx[j]] += g[j]`` in
  ``j`` order, one full pass per commit — which is exactly what the
  fissioned gather/commit loops below do (payload materialized into
  ``scratch`` first, then one commit pass per statement);
* the tiled form follows ``run_numeric_wavefront``: per wave, all tile
  gathers, then per tile **in the wave's order** both commit passes.

Float constants are emitted with Python ``repr`` (shortest round-trip
decimal); C's correctly-rounded parse recovers the identical binary64.
The ``-ffp-contract=off`` flag (see :mod:`repro.lowering.toolchain`)
keeps the compiler from fusing the emitted ``a*b + c`` shapes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.codegen.emit import SourceWriter
from repro.lowering.ir import (
    BinOp,
    Const,
    Expr,
    Load,
    LoopIR,
    Neg,
    Program,
)

#: Bumped whenever emitted code changes shape; part of the artifact key.
EMITTER_VERSION = "c-1"

#: Appended to the artifact key when the sanitizer guard is emitted, so
#: guarded and unguarded shared objects never collide in the cache.
SANITIZE_TAG = "san1"

#: ``err[0]`` codes of the sanitized executors (0 = clean run).  The
#: runner maps these back to index-source names when raising the typed
#: :class:`~repro.errors.ExecutorBoundsError`.
GUARD_LEFT = 1
GUARD_RIGHT = 2
GUARD_SCHEDULE_BASE = 10  # + loop position
GUARD_WAVES = 100


def _emit_guard_fn(w: SourceWriter) -> None:
    """The range scan the sanitized entry points call first.  On the
    first out-of-range value it records (code, position, value, bound)
    in ``err`` and the caller returns before touching any data array —
    so a corrupted dataset leaves every array bit-untouched."""
    with w.block(
        "static int64_t _guard(const int64_t *v, int64_t n, int64_t bound, "
        "int64_t code, int64_t *err) {"
    ):
        with w.block("for (int64_t _i = 0; _i < n; ++_i) {"):
            with w.block("if (v[_i] < 0 || v[_i] >= bound) {"):
                w.line("err[0] = code;")
                w.line("err[1] = _i;")
                w.line("err[2] = v[_i];")
                w.line("err[3] = bound;")
                w.line("return 1;")
            w.line("}")
        w.line("}")
        w.line("return 0;")
    w.line("}")


def _render(expr: Expr, direct: str, via: Dict[str, str]) -> str:
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Load):
        if expr.index.direct:
            return f"{expr.array}[{direct}]"
        return f"{expr.array}[{via[expr.index.via]}]"
    if isinstance(expr, Neg):
        return f"(-{_render(expr.operand, direct, via)})"
    if isinstance(expr, BinOp):
        left = _render(expr.left, direct, via)
        right = _render(expr.right, direct, via)
        return f"({left} {expr.op} {right})"
    raise TypeError(f"unknown expression {expr!r}")


def _idx_via(ivar: str) -> Dict[str, str]:
    return {"left": f"left[{ivar}]", "right": f"right[{ivar}]"}


def _emit_node_body(w: SourceWriter, loop: LoopIR, ivar: str) -> None:
    via = _idx_via(ivar)
    for stmt in loop.stmts:
        inc = _render(stmt.increment, ivar, via)
        w.line(f"{stmt.array}[{ivar}] = {stmt.array}[{ivar}] + {inc};")


def _emit_inter_scalar_body(w: SourceWriter, loop: LoopIR, ivar: str) -> None:
    via = _idx_via(ivar)
    for stmt in loop.stmts:
        target = f"{stmt.array}[{via[stmt.index.via]}]"
        inc = _render(stmt.increment, ivar, via)
        w.line(f"{target} = {target} + {inc};")


def _data_params(program: Program) -> List[str]:
    return [f"double *{name}" for name in program.data_arrays]


def emit_c(program: Program, sanitize: bool = False) -> str:
    """C source of the untiled executor.

    With ``sanitize`` the entry point gains an ``int64_t *err`` out-param
    (4 slots: guard code, position, value, bound) and opens with a range
    scan of ``left``/``right``; on the first violation it records the
    evidence and returns before any data array is touched.  The compute
    body is unchanged, so valid datasets stay bit-identical."""
    w = SourceWriter()
    w.line(f"/* C executor for '{program.kernel_name}' "
           "(generated by repro.lowering; do not edit). */")
    w.line("#include <stdint.h>")
    w.line()
    if sanitize:
        _emit_guard_fn(w)
        w.line()
    params = _data_params(program) + [
        "const int64_t *left",
        "const int64_t *right",
        "int64_t num_nodes",
        "int64_t num_inter",
        "int64_t num_steps",
        "double *scratch",
    ]
    if sanitize:
        params.append("int64_t *err")
    with w.block(f"void run({', '.join(params)}) {{"):
        if sanitize:
            w.line("err[0] = 0;")
            w.line(
                f"if (_guard(left, num_inter, num_nodes, {GUARD_LEFT}, err)) "
                "return;"
            )
            w.line(
                f"if (_guard(right, num_inter, num_nodes, {GUARD_RIGHT}, "
                "err)) return;"
            )
        with w.block("for (int64_t _step = 0; _step < num_steps; ++_step) {"):
            for loop in program.loops:
                ivar = loop.index_var
                w.line(f"/* {loop.label} ({loop.domain}) */")
                if loop.domain == "nodes":
                    with w.block(
                        f"for (int64_t {ivar} = 0; {ivar} < num_nodes; "
                        f"++{ivar}) {{"
                    ):
                        _emit_node_body(w, loop, ivar)
                    w.line("}")
                elif loop.fissioned is not None:
                    gc = loop.fissioned
                    payload = _render(gc.payload, ivar, _idx_via(ivar))
                    with w.block(
                        f"for (int64_t {ivar} = 0; {ivar} < num_inter; "
                        f"++{ivar}) {{"
                    ):
                        w.line(f"scratch[{ivar}] = {payload};")
                    w.line("}")
                    for commit in gc.commits:
                        end = f"{commit.via}[{ivar}]"
                        val = (
                            f"scratch[{ivar}]"
                            if commit.sign > 0
                            else f"(-scratch[{ivar}])"
                        )
                        with w.block(
                            f"for (int64_t {ivar} = 0; {ivar} < num_inter; "
                            f"++{ivar}) {{"
                        ):
                            w.line(
                                f"{commit.array}[{end}] = "
                                f"{commit.array}[{end}] + {val};"
                            )
                        w.line("}")
                else:
                    with w.block(
                        f"for (int64_t {ivar} = 0; {ivar} < num_inter; "
                        f"++{ivar}) {{"
                    ):
                        _emit_inter_scalar_body(w, loop, ivar)
                    w.line("}")
        w.line("}")
    w.line("}")
    return w.source()


def emit_c_tiled(program: Program, sanitize: bool = False) -> str:
    """C source of the tiled wave executor (CSR schedule + wave order).

    The sanitized variant gains ``int64_t num_tiles`` and ``int64_t *err``
    and range-scans every CSR iteration array, the wave tile ids, and
    ``left``/``right`` before the first step (see :func:`emit_c`)."""
    w = SourceWriter()
    w.line(f"/* Tiled C executor for '{program.kernel_name}' "
           "(generated by repro.lowering; do not edit). */")
    w.line("#include <stdint.h>")
    w.line()
    if sanitize:
        _emit_guard_fn(w)
        w.line()
    params = _data_params(program) + [
        "const int64_t *left",
        "const int64_t *right",
        "int64_t num_nodes",
        "int64_t num_inter",
        "int64_t num_steps",
    ]
    for pos in range(len(program.loops)):
        params += [f"const int64_t *iters{pos}", f"const int64_t *off{pos}"]
    params += [
        "const int64_t *wave_tiles",
        "const int64_t *wave_off",
        "int64_t num_waves",
        "double *scratch",
    ]
    if sanitize:
        params += ["int64_t num_tiles", "int64_t *err"]
    with w.block(f"void run_tiled({', '.join(params)}) {{"):
        if sanitize:
            w.line("err[0] = 0;")
            w.line(
                f"if (_guard(left, num_inter, num_nodes, {GUARD_LEFT}, err)) "
                "return;"
            )
            w.line(
                f"if (_guard(right, num_inter, num_nodes, {GUARD_RIGHT}, "
                "err)) return;"
            )
            for pos, loop in enumerate(program.loops):
                extent = "num_nodes" if loop.domain == "nodes" else "num_inter"
                w.line(
                    f"if (_guard(iters{pos}, off{pos}[num_tiles], {extent}, "
                    f"{GUARD_SCHEDULE_BASE + pos}, err)) return;"
                )
            w.line(
                "if (_guard(wave_tiles, wave_off[num_waves], num_tiles, "
                f"{GUARD_WAVES}, err)) return;"
            )
        with w.block("for (int64_t _step = 0; _step < num_steps; ++_step) {"):
            with w.block(
                "for (int64_t _w = 0; _w < num_waves; ++_w) {"
            ):
                for pos, loop in enumerate(program.loops):
                    ivar = loop.index_var
                    w.line(f"/* {loop.label} ({loop.domain}) */")
                    if loop.domain == "nodes":
                        with w.block(
                            "for (int64_t _g = wave_off[_w]; "
                            "_g < wave_off[_w + 1]; ++_g) {"
                        ):
                            w.line("int64_t _t = wave_tiles[_g];")
                            with w.block(
                                f"for (int64_t _k = off{pos}[_t]; "
                                f"_k < off{pos}[_t + 1]; ++_k) {{"
                            ):
                                w.line(f"int64_t {ivar} = iters{pos}[_k];")
                                _emit_node_body(w, loop, ivar)
                            w.line("}")
                        w.line("}")
                    elif loop.fissioned is not None:
                        gc = loop.fissioned
                        payload = _render(gc.payload, ivar, _idx_via(ivar))
                        # Pass 1: every tile's pure gather into scratch
                        # (keyed by the global CSR position).
                        with w.block(
                            "for (int64_t _g = wave_off[_w]; "
                            "_g < wave_off[_w + 1]; ++_g) {"
                        ):
                            w.line("int64_t _t = wave_tiles[_g];")
                            with w.block(
                                f"for (int64_t _k = off{pos}[_t]; "
                                f"_k < off{pos}[_t + 1]; ++_k) {{"
                            ):
                                w.line(f"int64_t {ivar} = iters{pos}[_k];")
                                w.line(f"scratch[_k] = {payload};")
                            w.line("}")
                        w.line("}")
                        # Pass 2: commits per tile, in the wave's tile
                        # order — both commit passes of a tile before the
                        # next tile (run_numeric_wavefront's zip loop).
                        with w.block(
                            "for (int64_t _g = wave_off[_w]; "
                            "_g < wave_off[_w + 1]; ++_g) {"
                        ):
                            w.line("int64_t _t = wave_tiles[_g];")
                            for commit in gc.commits:
                                end = f"{commit.via}[{ivar}]"
                                val = (
                                    "scratch[_k]"
                                    if commit.sign > 0
                                    else "(-scratch[_k])"
                                )
                                with w.block(
                                    f"for (int64_t _k = off{pos}[_t]; "
                                    f"_k < off{pos}[_t + 1]; ++_k) {{"
                                ):
                                    w.line(f"int64_t {ivar} = iters{pos}[_k];")
                                    w.line(
                                        f"{commit.array}[{end}] = "
                                        f"{commit.array}[{end}] + {val};"
                                    )
                                w.line("}")
                        w.line("}")
                    else:
                        with w.block(
                            "for (int64_t _g = wave_off[_w]; "
                            "_g < wave_off[_w + 1]; ++_g) {"
                        ):
                            w.line("int64_t _t = wave_tiles[_g];")
                            with w.block(
                                f"for (int64_t _k = off{pos}[_t]; "
                                f"_k < off{pos}[_t + 1]; ++_k) {{"
                            ):
                                w.line(f"int64_t {ivar} = iters{pos}[_k];")
                                _emit_inter_scalar_body(w, loop, ivar)
                            w.line("}")
                        w.line("}")
                w.line("}")  # close the wave loop
        w.line("}")
    w.line("}")
    return w.source()


__all__ = [
    "EMITTER_VERSION",
    "GUARD_LEFT",
    "GUARD_RIGHT",
    "GUARD_SCHEDULE_BASE",
    "GUARD_WAVES",
    "SANITIZE_TAG",
    "emit_c",
    "emit_c_tiled",
]
