"""Emit a C executor from the rewritten loop-nest IR.

The generated translation unit exports one function:

* untiled::

      void run(double *D0, ..., const int64_t *left, const int64_t *right,
               int64_t num_nodes, int64_t num_inter, int64_t num_steps,
               double *scratch)

* tiled (``run_tiled``) additionally takes, per kernel loop ``p``, the
  CSR-flattened tile schedule (``iters_p`` concatenated iterations +
  ``off_p`` tile offsets, ``num_tiles + 1`` entries) and the wavefront
  grouping (``wave_tiles`` concatenated tile ids + ``wave_off``,
  ``num_waves + 1`` entries).

Bit-identity with the library executor comes from emitting the *same
operation sequence* ``numpy`` performs, not from tolerances:

* a vectorized node update ``x += e`` is per-element
  ``x[i] = x[i] + e[i]`` in index order;
* ``np.add.at(a, idx, g)`` is per-element ``a[idx[j]] += g[j]`` in
  ``j`` order, one full pass per commit — which is exactly what the
  fissioned gather/commit loops below do (payload materialized into
  ``scratch`` first, then one commit pass per statement);
* the tiled form follows ``run_numeric_wavefront``: per wave, all tile
  gathers, then per tile **in the wave's order** both commit passes.

Float constants are emitted with Python ``repr`` (shortest round-trip
decimal); C's correctly-rounded parse recovers the identical binary64.
The ``-ffp-contract=off`` flag (see :mod:`repro.lowering.toolchain`)
keeps the compiler from fusing the emitted ``a*b + c`` shapes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.codegen.emit import SourceWriter
from repro.lowering.ir import (
    BinOp,
    Const,
    Expr,
    Load,
    LoopIR,
    Neg,
    Program,
)

#: Bumped whenever emitted code changes shape; part of the artifact key.
EMITTER_VERSION = "c-1"

#: Appended to the artifact key when the sanitizer guard is emitted, so
#: guarded and unguarded shared objects never collide in the cache.
SANITIZE_TAG = "san1"

#: Appended to the artifact key (and the artifact suffix) for the
#: counter-scheduled entry point, so wave and dynamic builds are
#: distinct cache entries (`repro cache stats` reports them apart).
#: Bump on any ABI change to ``run_tiled_dynamic`` — a stale shared
#: object with a different parameter list would be called with
#: mismatched arguments.  dyn2: added the ``wave`` level array (the
#: serial fast path replays the static wave schedule).
DYNAMIC_TAG = "dyn2"

#: ``err[0]`` codes of the sanitized executors (0 = clean run).  The
#: runner maps these back to index-source names when raising the typed
#: :class:`~repro.errors.ExecutorBoundsError`.
GUARD_LEFT = 1
GUARD_RIGHT = 2
GUARD_SCHEDULE_BASE = 10  # + loop position
GUARD_WAVES = 100
GUARD_ORDER = 101
GUARD_SUCC = 102


def _emit_guard_fn(w: SourceWriter) -> None:
    """The range scan the sanitized entry points call first.  On the
    first out-of-range value it records (code, position, value, bound)
    in ``err`` and the caller returns before touching any data array —
    so a corrupted dataset leaves every array bit-untouched."""
    with w.block(
        "static int64_t _guard(const int64_t *v, int64_t n, int64_t bound, "
        "int64_t code, int64_t *err) {"
    ):
        with w.block("for (int64_t _i = 0; _i < n; ++_i) {"):
            with w.block("if (v[_i] < 0 || v[_i] >= bound) {"):
                w.line("err[0] = code;")
                w.line("err[1] = _i;")
                w.line("err[2] = v[_i];")
                w.line("err[3] = bound;")
                w.line("return 1;")
            w.line("}")
        w.line("}")
        w.line("return 0;")
    w.line("}")


def _render(expr: Expr, direct: str, via: Dict[str, str]) -> str:
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Load):
        if expr.index.direct:
            return f"{expr.array}[{direct}]"
        return f"{expr.array}[{via[expr.index.via]}]"
    if isinstance(expr, Neg):
        return f"(-{_render(expr.operand, direct, via)})"
    if isinstance(expr, BinOp):
        left = _render(expr.left, direct, via)
        right = _render(expr.right, direct, via)
        return f"({left} {expr.op} {right})"
    raise TypeError(f"unknown expression {expr!r}")


def _idx_via(ivar: str) -> Dict[str, str]:
    return {"left": f"left[{ivar}]", "right": f"right[{ivar}]"}


def _emit_node_body(w: SourceWriter, loop: LoopIR, ivar: str) -> None:
    via = _idx_via(ivar)
    for stmt in loop.stmts:
        inc = _render(stmt.increment, ivar, via)
        w.line(f"{stmt.array}[{ivar}] = {stmt.array}[{ivar}] + {inc};")


def _emit_inter_scalar_body(w: SourceWriter, loop: LoopIR, ivar: str) -> None:
    via = _idx_via(ivar)
    for stmt in loop.stmts:
        target = f"{stmt.array}[{via[stmt.index.via]}]"
        inc = _render(stmt.increment, ivar, via)
        w.line(f"{target} = {target} + {inc};")


def _data_params(program: Program) -> List[str]:
    return [f"double *{name}" for name in program.data_arrays]


def emit_c(program: Program, sanitize: bool = False) -> str:
    """C source of the untiled executor.

    With ``sanitize`` the entry point gains an ``int64_t *err`` out-param
    (4 slots: guard code, position, value, bound) and opens with a range
    scan of ``left``/``right``; on the first violation it records the
    evidence and returns before any data array is touched.  The compute
    body is unchanged, so valid datasets stay bit-identical."""
    w = SourceWriter()
    w.line(f"/* C executor for '{program.kernel_name}' "
           "(generated by repro.lowering; do not edit). */")
    w.line("#include <stdint.h>")
    w.line()
    if sanitize:
        _emit_guard_fn(w)
        w.line()
    params = _data_params(program) + [
        "const int64_t *left",
        "const int64_t *right",
        "int64_t num_nodes",
        "int64_t num_inter",
        "int64_t num_steps",
        "double *scratch",
    ]
    if sanitize:
        params.append("int64_t *err")
    with w.block(f"void run({', '.join(params)}) {{"):
        if sanitize:
            w.line("err[0] = 0;")
            w.line(
                f"if (_guard(left, num_inter, num_nodes, {GUARD_LEFT}, err)) "
                "return;"
            )
            w.line(
                f"if (_guard(right, num_inter, num_nodes, {GUARD_RIGHT}, "
                "err)) return;"
            )
        with w.block("for (int64_t _step = 0; _step < num_steps; ++_step) {"):
            for loop in program.loops:
                ivar = loop.index_var
                w.line(f"/* {loop.label} ({loop.domain}) */")
                if loop.domain == "nodes":
                    with w.block(
                        f"for (int64_t {ivar} = 0; {ivar} < num_nodes; "
                        f"++{ivar}) {{"
                    ):
                        _emit_node_body(w, loop, ivar)
                    w.line("}")
                elif loop.fissioned is not None:
                    gc = loop.fissioned
                    payload = _render(gc.payload, ivar, _idx_via(ivar))
                    with w.block(
                        f"for (int64_t {ivar} = 0; {ivar} < num_inter; "
                        f"++{ivar}) {{"
                    ):
                        w.line(f"scratch[{ivar}] = {payload};")
                    w.line("}")
                    for commit in gc.commits:
                        end = f"{commit.via}[{ivar}]"
                        val = (
                            f"scratch[{ivar}]"
                            if commit.sign > 0
                            else f"(-scratch[{ivar}])"
                        )
                        with w.block(
                            f"for (int64_t {ivar} = 0; {ivar} < num_inter; "
                            f"++{ivar}) {{"
                        ):
                            w.line(
                                f"{commit.array}[{end}] = "
                                f"{commit.array}[{end}] + {val};"
                            )
                        w.line("}")
                else:
                    with w.block(
                        f"for (int64_t {ivar} = 0; {ivar} < num_inter; "
                        f"++{ivar}) {{"
                    ):
                        _emit_inter_scalar_body(w, loop, ivar)
                    w.line("}")
        w.line("}")
    w.line("}")
    return w.source()


def emit_c_tiled(program: Program, sanitize: bool = False) -> str:
    """C source of the tiled wave executor (CSR schedule + wave order).

    The sanitized variant gains ``int64_t num_tiles`` and ``int64_t *err``
    and range-scans every CSR iteration array, the wave tile ids, and
    ``left``/``right`` before the first step (see :func:`emit_c`)."""
    w = SourceWriter()
    w.line(f"/* Tiled C executor for '{program.kernel_name}' "
           "(generated by repro.lowering; do not edit). */")
    w.line("#include <stdint.h>")
    w.line()
    if sanitize:
        _emit_guard_fn(w)
        w.line()
    params = _data_params(program) + [
        "const int64_t *left",
        "const int64_t *right",
        "int64_t num_nodes",
        "int64_t num_inter",
        "int64_t num_steps",
    ]
    for pos in range(len(program.loops)):
        params += [f"const int64_t *iters{pos}", f"const int64_t *off{pos}"]
    params += [
        "const int64_t *wave_tiles",
        "const int64_t *wave_off",
        "int64_t num_waves",
        "double *scratch",
    ]
    if sanitize:
        params += ["int64_t num_tiles", "int64_t *err"]
    with w.block(f"void run_tiled({', '.join(params)}) {{"):
        if sanitize:
            w.line("err[0] = 0;")
            w.line(
                f"if (_guard(left, num_inter, num_nodes, {GUARD_LEFT}, err)) "
                "return;"
            )
            w.line(
                f"if (_guard(right, num_inter, num_nodes, {GUARD_RIGHT}, "
                "err)) return;"
            )
            for pos, loop in enumerate(program.loops):
                extent = "num_nodes" if loop.domain == "nodes" else "num_inter"
                w.line(
                    f"if (_guard(iters{pos}, off{pos}[num_tiles], {extent}, "
                    f"{GUARD_SCHEDULE_BASE + pos}, err)) return;"
                )
            w.line(
                "if (_guard(wave_tiles, wave_off[num_waves], num_tiles, "
                f"{GUARD_WAVES}, err)) return;"
            )
        with w.block("for (int64_t _step = 0; _step < num_steps; ++_step) {"):
            with w.block(
                "for (int64_t _w = 0; _w < num_waves; ++_w) {"
            ):
                for pos, loop in enumerate(program.loops):
                    ivar = loop.index_var
                    w.line(f"/* {loop.label} ({loop.domain}) */")
                    if loop.domain == "nodes":
                        with w.block(
                            "for (int64_t _g = wave_off[_w]; "
                            "_g < wave_off[_w + 1]; ++_g) {"
                        ):
                            w.line("int64_t _t = wave_tiles[_g];")
                            with w.block(
                                f"for (int64_t _k = off{pos}[_t]; "
                                f"_k < off{pos}[_t + 1]; ++_k) {{"
                            ):
                                w.line(f"int64_t {ivar} = iters{pos}[_k];")
                                _emit_node_body(w, loop, ivar)
                            w.line("}")
                        w.line("}")
                    elif loop.fissioned is not None:
                        gc = loop.fissioned
                        payload = _render(gc.payload, ivar, _idx_via(ivar))
                        # Pass 1: every tile's pure gather into scratch
                        # (keyed by the global CSR position).
                        with w.block(
                            "for (int64_t _g = wave_off[_w]; "
                            "_g < wave_off[_w + 1]; ++_g) {"
                        ):
                            w.line("int64_t _t = wave_tiles[_g];")
                            with w.block(
                                f"for (int64_t _k = off{pos}[_t]; "
                                f"_k < off{pos}[_t + 1]; ++_k) {{"
                            ):
                                w.line(f"int64_t {ivar} = iters{pos}[_k];")
                                w.line(f"scratch[_k] = {payload};")
                            w.line("}")
                        w.line("}")
                        # Pass 2: commits per tile, in the wave's tile
                        # order — both commit passes of a tile before the
                        # next tile (run_numeric_wavefront's zip loop).
                        with w.block(
                            "for (int64_t _g = wave_off[_w]; "
                            "_g < wave_off[_w + 1]; ++_g) {"
                        ):
                            w.line("int64_t _t = wave_tiles[_g];")
                            for commit in gc.commits:
                                end = f"{commit.via}[{ivar}]"
                                val = (
                                    "scratch[_k]"
                                    if commit.sign > 0
                                    else "(-scratch[_k])"
                                )
                                with w.block(
                                    f"for (int64_t _k = off{pos}[_t]; "
                                    f"_k < off{pos}[_t + 1]; ++_k) {{"
                                ):
                                    w.line(f"int64_t {ivar} = iters{pos}[_k];")
                                    w.line(
                                        f"{commit.array}[{end}] = "
                                        f"{commit.array}[{end}] + {val};"
                                    )
                                w.line("}")
                        w.line("}")
                    else:
                        with w.block(
                            "for (int64_t _g = wave_off[_w]; "
                            "_g < wave_off[_w + 1]; ++_g) {"
                        ):
                            w.line("int64_t _t = wave_tiles[_g];")
                            with w.block(
                                f"for (int64_t _k = off{pos}[_t]; "
                                f"_k < off{pos}[_t + 1]; ++_k) {{"
                            ):
                                w.line(f"int64_t {ivar} = iters{pos}[_k];")
                                _emit_inter_scalar_body(w, loop, ivar)
                            w.line("}")
                        w.line("}")
                w.line("}")  # close the wave loop
        w.line("}")
    w.line("}")
    return w.source()


def _emit_stage_prologue(w: SourceWriter, program: Program) -> None:
    """Local aliases so the stage bodies reuse the shared renderers.
    Not every stage touches every array; the casts silence -Wunused."""
    for name in program.data_arrays:
        w.line(f"double *{name} = c->{name};")
    w.line("const int64_t *left = c->left;")
    w.line("const int64_t *right = c->right;")
    voids = " ".join(f"(void){name};" for name in program.data_arrays)
    w.line(f"{voids} (void)left; (void)right;")


def _emit_dynamic_stages(w: SourceWriter, program: Program) -> None:
    """The three per-tile stage functions of the counter scheduler.

    Bodies are the tiled emitter's own loop shapes, so a tile's operation
    sequence is identical to its wave-executor rendering: gather writes
    the payload at the *global* CSR position (tile slots are disjoint, so
    concurrent gathers never race on ``scratch``), commit replays both
    passes in statement order at the tile's turn.
    """
    from repro.lowering.emit_numpy import _dynamic_loop_split

    pre, ip, inter_loop, post = _dynamic_loop_split(program)
    gc = inter_loop.fissioned
    ivar = inter_loop.index_var

    with w.block(
        "static inline __attribute__((always_inline)) void "
        "_stage_gather(const _ctx_t *c, int64_t _t) {"
    ):
        _emit_stage_prologue(w, program)
        for pos, loop in pre:
            w.line(f"/* {loop.label} ({loop.domain}) */")
            with w.block(
                f"for (int64_t _k = c->off{pos}[_t]; "
                f"_k < c->off{pos}[_t + 1]; ++_k) {{"
            ):
                w.line(f"int64_t {loop.index_var} = c->iters{pos}[_k];")
                _emit_node_body(w, loop, loop.index_var)
            w.line("}")
        w.line(f"/* {inter_loop.label} gather */")
        payload = _render(gc.payload, ivar, _idx_via(ivar))
        with w.block(
            f"for (int64_t _k = c->off{ip}[_t]; "
            f"_k < c->off{ip}[_t + 1]; ++_k) {{"
        ):
            w.line(f"int64_t {ivar} = c->iters{ip}[_k];")
            w.line(f"c->scratch[_k] = {payload};")
        w.line("}")
    w.line("}")
    w.line()

    with w.block(
        "static inline __attribute__((always_inline)) void "
        "_stage_commit(const _ctx_t *c, int64_t _t) {"
    ):
        _emit_stage_prologue(w, program)
        for commit in gc.commits:
            end = f"{commit.via}[{ivar}]"
            val = (
                "c->scratch[_k]"
                if commit.sign > 0
                else "(-c->scratch[_k])"
            )
            with w.block(
                f"for (int64_t _k = c->off{ip}[_t]; "
                f"_k < c->off{ip}[_t + 1]; ++_k) {{"
            ):
                w.line(f"int64_t {ivar} = c->iters{ip}[_k];")
                w.line(
                    f"{commit.array}[{end}] = {commit.array}[{end}] + {val};"
                )
            w.line("}")
    w.line("}")
    w.line()

    with w.block(
        "static inline __attribute__((always_inline)) void "
        "_stage_post(const _ctx_t *c, int64_t _t) {"
    ):
        _emit_stage_prologue(w, program)
        w.line("(void)_t;")
        for pos, loop in post:
            w.line(f"/* {loop.label} ({loop.domain}) */")
            with w.block(
                f"for (int64_t _k = c->off{pos}[_t]; "
                f"_k < c->off{pos}[_t + 1]; ++_k) {{"
            ):
                w.line(f"int64_t {loop.index_var} = c->iters{pos}[_k];")
                _emit_node_body(w, loop, loop.index_var)
            w.line("}")
    w.line("}")


def _emit_scheduler_runtime(w: SourceWriter) -> None:
    """The kernel-independent pthread scheduler scaffold.

    One mutex + condvar guard all shared state (per-worker deques,
    counters, gathered flags, the commit cursor); stage bodies run
    outside the lock.  Workers pop their own deque LIFO and steal FIFO
    from round-robin victims.  The commit token (``committing``) makes
    exactly one worker drain commits in ``order``; whoever finishes a
    gather and finds the token free takes duty, so commits chase the
    gather frontier without waiting for a scheduler tick.  Each tile
    enters a deque at most twice (gather, post), so ``2 * num_tiles``
    slots per worker never overflow and indices only grow — no ring.
    """
    with w.block("typedef struct {"):
        w.line("const _ctx_t *ctx;")
        w.line("int64_t num_tiles;")
        w.line("int64_t num_threads;")
        w.line("const int64_t *order;")
        w.line("const int64_t *succ_off;")
        w.line("const int64_t *succ;")
        w.line("int64_t *counters;")
        w.line("unsigned char *gathered;")
        w.line("int64_t commit_next;")
        w.line("int64_t completed;")
        w.line("int64_t committing;")
        w.line("int64_t **deq;")
        w.line("int64_t *deq_head;")
        w.line("int64_t *deq_tail;")
        w.line("pthread_mutex_t m;")
        w.line("pthread_cond_t cv;")
    w.line("} _sched_t;")
    w.line()
    with w.block("static void _push(_sched_t *s, int64_t w, int64_t task) {"):
        w.line("s->deq[w][s->deq_tail[w]++] = task;")
    w.line("}")
    w.line()
    with w.block("static int64_t _take(_sched_t *s, int64_t w) {"):
        with w.block("if (s->deq_tail[w] > s->deq_head[w]) {"):
            w.line("return s->deq[w][--s->deq_tail[w]];")
        w.line("}")
        with w.block("for (int64_t _i = 1; _i < s->num_threads; ++_i) {"):
            w.line("int64_t _v = (w + _i) % s->num_threads;")
            with w.block("if (s->deq_tail[_v] > s->deq_head[_v]) {"):
                w.line("return s->deq[_v][s->deq_head[_v]++];")
            w.line("}")
        w.line("}")
        w.line("return -2;")
    w.line("}")
    w.line()
    with w.block("static int _commit_ready(_sched_t *s) {"):
        w.line(
            "return s->commit_next < s->num_tiles && "
            "s->gathered[s->order[s->commit_next]];"
        )
    w.line("}")
    w.line()
    with w.block("static void _drain(_sched_t *s, int64_t w) {"):
        with w.block("for (;;) {"):
            w.line("pthread_mutex_lock(&s->m);")
            with w.block("if (!_commit_ready(s)) {"):
                w.line("s->committing = 0;")
                w.line("pthread_cond_broadcast(&s->cv);")
                w.line("pthread_mutex_unlock(&s->m);")
                w.line("return;")
            w.line("}")
            w.line("int64_t _t = s->order[s->commit_next];")
            w.line("pthread_mutex_unlock(&s->m);")
            w.line("_stage_commit(s->ctx, _t);")
            w.line("pthread_mutex_lock(&s->m);")
            w.line("s->commit_next += 1;")
            w.line("_push(s, w, _t + s->num_tiles);")
            w.line("pthread_cond_broadcast(&s->cv);")
            w.line("pthread_mutex_unlock(&s->m);")
        w.line("}")
    w.line("}")
    w.line()
    with w.block("typedef struct {"):
        w.line("_sched_t *s;")
        w.line("int64_t wid;")
    w.line("} _worker_arg_t;")
    w.line()
    with w.block("static void *_worker(void *argp) {"):
        w.line("_worker_arg_t *arg = (_worker_arg_t *)argp;")
        w.line("_sched_t *s = arg->s;")
        w.line("int64_t w = arg->wid;")
        with w.block("for (;;) {"):
            w.line("int64_t task;")
            w.line("pthread_mutex_lock(&s->m);")
            with w.block("for (;;) {"):
                with w.block("if (s->completed == s->num_tiles) {"):
                    w.line("pthread_mutex_unlock(&s->m);")
                    w.line("return 0;")
                w.line("}")
                w.line("task = _take(s, w);")
                w.line("if (task != -2) break;")
                with w.block("if (!s->committing && _commit_ready(s)) {"):
                    w.line("s->committing = 1;")
                    w.line("task = -1;")
                    w.line("break;")
                w.line("}")
                w.line("pthread_cond_wait(&s->cv, &s->m);")
            w.line("}")
            w.line("pthread_mutex_unlock(&s->m);")
            with w.block("if (task == -1) {"):
                w.line("_drain(s, w);")
                w.line("continue;")
            w.line("}")
            with w.block("if (task < s->num_tiles) {"):
                w.line("_stage_gather(s->ctx, task);")
                w.line("int _duty = 0;")
                w.line("pthread_mutex_lock(&s->m);")
                w.line("s->gathered[task] = 1;")
                with w.block("if (!s->committing && _commit_ready(s)) {"):
                    w.line("s->committing = 1;")
                    w.line("_duty = 1;")
                with w.block("} else {"):
                    w.line("pthread_cond_broadcast(&s->cv);")
                w.line("}")
                w.line("pthread_mutex_unlock(&s->m);")
                w.line("if (_duty) _drain(s, w);")
            with w.block("} else {"):
                w.line("int64_t _t = task - s->num_tiles;")
                w.line("_stage_post(s->ctx, _t);")
                w.line("pthread_mutex_lock(&s->m);")
                with w.block(
                    "for (int64_t _e = s->succ_off[_t]; "
                    "_e < s->succ_off[_t + 1]; ++_e) {"
                ):
                    w.line("int64_t _n = s->succ[_e];")
                    w.line("s->counters[_n] -= 1;")
                    w.line("if (s->counters[_n] == 0) _push(s, w, _n);")
                w.line("}")
                w.line("s->completed += 1;")
                w.line("pthread_cond_broadcast(&s->cv);")
                w.line("pthread_mutex_unlock(&s->m);")
            w.line("}")
        w.line("}")
    w.line("}")


def emit_c_dynamic(program: Program, sanitize: bool = False) -> str:
    """C source of the counter-scheduled executor (``run_tiled_dynamic``).

    Takes the tiled executor's CSR schedule plus the counter DAG
    (``order`` — the wave commit sequence, ``indegree`` seed counts,
    ``succ_off``/``succ`` successor CSR) and ``num_threads``.  At one
    thread (or one tile, or if any scheduler allocation fails) it runs
    the static path: a serial loop over ``order`` with the same
    three-stage bodies — zero scheduling overhead, trivially
    bit-identical.  Otherwise an OpenMP-style pthread pool executes the
    work-stealing protocol of :func:`repro.lowering.schedule.run_dynamic`.
    The sanitized variant range-scans every index source (including
    ``order`` and ``succ``) before the first step and traps via ``err``.
    """
    w = SourceWriter()
    w.line(f"/* Dynamic-schedule C executor for '{program.kernel_name}' "
           "(generated by repro.lowering; do not edit). */")
    w.line("#include <stdint.h>")
    w.line("#include <stdlib.h>")
    w.line("#include <pthread.h>")
    w.line()
    if sanitize:
        _emit_guard_fn(w)
        w.line()
    with w.block("typedef struct {"):
        for name in program.data_arrays:
            w.line(f"double *{name};")
        w.line("const int64_t *left;")
        w.line("const int64_t *right;")
        for pos in range(len(program.loops)):
            w.line(f"const int64_t *iters{pos};")
            w.line(f"const int64_t *off{pos};")
        w.line("double *scratch;")
    w.line("} _ctx_t;")
    w.line()
    _emit_dynamic_stages(w, program)
    w.line()
    _emit_scheduler_runtime(w)
    w.line()
    params = _data_params(program) + [
        "const int64_t *left",
        "const int64_t *right",
        "int64_t num_nodes",
        "int64_t num_inter",
        "int64_t num_steps",
    ]
    for pos in range(len(program.loops)):
        params += [f"const int64_t *iters{pos}", f"const int64_t *off{pos}"]
    params += [
        "const int64_t *order",
        "const int64_t *wave",
        "const int64_t *indegree",
        "const int64_t *succ_off",
        "const int64_t *succ",
        "int64_t num_tiles",
        "int64_t num_threads",
        "double *scratch",
    ]
    if sanitize:
        params.append("int64_t *err")
    with w.block(f"void run_tiled_dynamic({', '.join(params)}) {{"):
        if sanitize:
            w.line("err[0] = 0;")
            w.line(
                f"if (_guard(left, num_inter, num_nodes, {GUARD_LEFT}, err)) "
                "return;"
            )
            w.line(
                f"if (_guard(right, num_inter, num_nodes, {GUARD_RIGHT}, "
                "err)) return;"
            )
            for pos, loop in enumerate(program.loops):
                extent = "num_nodes" if loop.domain == "nodes" else "num_inter"
                w.line(
                    f"if (_guard(iters{pos}, off{pos}[num_tiles], {extent}, "
                    f"{GUARD_SCHEDULE_BASE + pos}, err)) return;"
                )
            w.line(
                f"if (_guard(order, num_tiles, num_tiles, {GUARD_ORDER}, "
                "err)) return;"
            )
            w.line(
                f"if (_guard(succ, succ_off[num_tiles], num_tiles, "
                f"{GUARD_SUCC}, err)) return;"
            )
        w.line("_ctx_t ctx;")
        for name in program.data_arrays:
            w.line(f"ctx.{name} = {name};")
        w.line("ctx.left = left;")
        w.line("ctx.right = right;")
        for pos in range(len(program.loops)):
            w.line(f"ctx.iters{pos} = iters{pos};")
            w.line(f"ctx.off{pos} = off{pos};")
        w.line("ctx.scratch = scratch;")
        w.line("(void)num_nodes; (void)num_inter;")
        w.line("int _serial = (num_threads <= 1 || num_tiles <= 1);")
        w.line("_sched_t s;")
        w.line("pthread_t *threads = 0;")
        w.line("_worker_arg_t *args = 0;")
        with w.block("if (!_serial) {"):
            w.line("s.ctx = &ctx;")
            w.line("s.num_tiles = num_tiles;")
            w.line("s.num_threads = num_threads;")
            w.line("s.order = order;")
            w.line("s.succ_off = succ_off;")
            w.line("s.succ = succ;")
            w.line(
                "s.counters = (int64_t *)malloc("
                "(size_t)num_tiles * sizeof(int64_t));"
            )
            w.line(
                "s.gathered = (unsigned char *)malloc((size_t)num_tiles);"
            )
            w.line(
                "s.deq = (int64_t **)malloc("
                "(size_t)num_threads * sizeof(int64_t *));"
            )
            w.line(
                "s.deq_head = (int64_t *)malloc("
                "(size_t)num_threads * sizeof(int64_t));"
            )
            w.line(
                "s.deq_tail = (int64_t *)malloc("
                "(size_t)num_threads * sizeof(int64_t));"
            )
            w.line(
                "threads = (pthread_t *)malloc("
                "(size_t)num_threads * sizeof(pthread_t));"
            )
            w.line(
                "args = (_worker_arg_t *)malloc("
                "(size_t)num_threads * sizeof(_worker_arg_t));"
            )
            w.line(
                "int _ok = s.counters && s.gathered && s.deq && "
                "s.deq_head && s.deq_tail && threads && args;"
            )
            with w.block("if (_ok) {"):
                with w.block(
                    "for (int64_t _w = 0; _w < num_threads; ++_w) {"
                ):
                    w.line(
                        "s.deq[_w] = (int64_t *)malloc("
                        "(size_t)(2 * num_tiles + 1) * sizeof(int64_t));"
                    )
                    w.line("if (!s.deq[_w]) _ok = 0;")
                w.line("}")
            with w.block("} else if (s.deq) {"):
                with w.block(
                    "for (int64_t _w = 0; _w < num_threads; ++_w) {"
                ):
                    w.line("s.deq[_w] = 0;")
                w.line("}")
            w.line("}")
            with w.block("if (!_ok) {"):
                # Degrade to the static path rather than fail the run.
                with w.block("if (s.deq) {"):
                    with w.block(
                        "for (int64_t _w = 0; _w < num_threads; ++_w) {"
                    ):
                        w.line("free(s.deq[_w]);")
                    w.line("}")
                w.line("}")
                w.line("free(s.counters); free(s.gathered); free(s.deq);")
                w.line("free(s.deq_head); free(s.deq_tail);")
                w.line("free(threads); free(args);")
                w.line("_serial = 1;")
            with w.block("} else {"):
                w.line("pthread_mutex_init(&s.m, 0);")
                w.line("pthread_cond_init(&s.cv, 0);")
            w.line("}")
        w.line("}")
        with w.block("if (_serial) {"):
            # The *hybrid* half of the scheduler: with one worker there is
            # nothing to steal, so replay the static wave schedule itself —
            # phase-batched runs over each wave's contiguous span of
            # ``order`` (``order`` is waves-outermost, so equal ``wave``
            # values are adjacent).  This is the level-synchronous
            # executor's own loop structure, which keeps the 1-thread
            # dynamic bind at parity with the wave bind instead of paying
            # per-tile stage switching.  ``wave`` values are only compared
            # for equality (never used as indices), so the sanitizer does
            # not need to range-scan them.
            with w.block(
                "for (int64_t _step = 0; _step < num_steps; ++_step) {"
            ):
                with w.block("for (int64_t _lo = 0; _lo < num_tiles; ) {"):
                    w.line("int64_t _wv = wave[order[_lo]];")
                    w.line("int64_t _hi = _lo;")
                    w.line(
                        "while (_hi < num_tiles && wave[order[_hi]] == _wv) "
                        "++_hi;"
                    )
                    with w.block(
                        "for (int64_t _i = _lo; _i < _hi; ++_i) {"
                    ):
                        w.line("_stage_gather(&ctx, order[_i]);")
                    w.line("}")
                    with w.block(
                        "for (int64_t _i = _lo; _i < _hi; ++_i) {"
                    ):
                        w.line("_stage_commit(&ctx, order[_i]);")
                    w.line("}")
                    with w.block(
                        "for (int64_t _i = _lo; _i < _hi; ++_i) {"
                    ):
                        w.line("_stage_post(&ctx, order[_i]);")
                    w.line("}")
                    w.line("_lo = _hi;")
                w.line("}")
            w.line("}")
            w.line("return;")
        w.line("}")
        with w.block("for (int64_t _step = 0; _step < num_steps; ++_step) {"):
            with w.block("for (int64_t _t = 0; _t < num_tiles; ++_t) {"):
                w.line("s.counters[_t] = indegree[_t];")
                w.line("s.gathered[_t] = 0;")
            w.line("}")
            w.line("s.commit_next = 0;")
            w.line("s.completed = 0;")
            w.line("s.committing = 0;")
            with w.block("for (int64_t _w = 0; _w < num_threads; ++_w) {"):
                w.line("s.deq_head[_w] = 0;")
                w.line("s.deq_tail[_w] = 0;")
            w.line("}")
            w.line("int64_t _seeded = 0;")
            with w.block("for (int64_t _t = 0; _t < num_tiles; ++_t) {"):
                with w.block("if (indegree[_t] == 0) {"):
                    w.line("_push(&s, _seeded % num_threads, _t);")
                    w.line("_seeded += 1;")
                w.line("}")
            w.line("}")
            # A full barrier between steps: workers are joined per step,
            # which also publishes every write before the next spawn.
            with w.block("for (int64_t _w = 0; _w < num_threads; ++_w) {"):
                w.line("args[_w].s = &s;")
                w.line("args[_w].wid = _w;")
                with w.block(
                    "if (pthread_create(&threads[_w], 0, _worker, "
                    "&args[_w])) {"
                ):
                    # Spawn failure: this worker simply doesn't join the
                    # pool; mark it so join skips it.  The protocol only
                    # needs one live worker to finish every tile.
                    w.line("args[_w].wid = -1;")
                w.line("}")
            w.line("}")
            w.line("int64_t _live = 0;")
            with w.block("for (int64_t _w = 0; _w < num_threads; ++_w) {"):
                w.line("if (args[_w].wid >= 0) { "
                       "pthread_join(threads[_w], 0); _live += 1; }")
            w.line("}")
            with w.block("if (_live == 0) {"):
                # Every spawn failed: finish the step on this thread.
                with w.block(
                    "for (int64_t _i = 0; _i < num_tiles; ++_i) {"
                ):
                    w.line("int64_t _t = order[_i];")
                    w.line("if (!s.gathered[_t]) _stage_gather(&ctx, _t);")
                w.line("}")
                with w.block(
                    "for (int64_t _i = s.commit_next; _i < num_tiles; "
                    "++_i) {"
                ):
                    w.line("_stage_commit(&ctx, order[_i]);")
                w.line("}")
                with w.block(
                    "for (int64_t _i = 0; _i < num_tiles; ++_i) {"
                ):
                    w.line("_stage_post(&ctx, order[_i]);")
                w.line("}")
            w.line("}")
        w.line("}")
        with w.block("for (int64_t _w = 0; _w < num_threads; ++_w) {"):
            w.line("free(s.deq[_w]);")
        w.line("}")
        w.line("free(s.counters); free(s.gathered); free(s.deq);")
        w.line("free(s.deq_head); free(s.deq_tail);")
        w.line("free(threads); free(args);")
        w.line("pthread_mutex_destroy(&s.m);")
        w.line("pthread_cond_destroy(&s.cv);")
    w.line("}")
    return w.source()


__all__ = [
    "DYNAMIC_TAG",
    "EMITTER_VERSION",
    "GUARD_LEFT",
    "GUARD_ORDER",
    "GUARD_RIGHT",
    "GUARD_SCHEDULE_BASE",
    "GUARD_SUCC",
    "GUARD_WAVES",
    "SANITIZE_TAG",
    "emit_c",
    "emit_c_dynamic",
    "emit_c_tiled",
]
