"""Bind-time compilation and selection of executor backends.

Three backends implement the same executor contract:

* ``library`` — the hand-written NumPy step/phase functions of
  :mod:`repro.kernels.executors` (the default; zero compilation);
* ``numpy``  — generated vectorized-NumPy source from
  :mod:`repro.lowering.emit_numpy`, exec'd at bind time;
* ``c``      — generated C from :mod:`repro.lowering.emit_c`, compiled
  to a shared object at bind time and driven through ``ctypes``.

Selection follows the shared policy of :func:`repro.backends.resolve`
(argument > ``REPRO_EXECUTOR_BACKEND`` > default ``library``); asking
for ``c`` on a machine without a toolchain degrades to ``numpy`` with a
single :class:`~repro.backends.BackendFallbackWarning`.

Compiled artifacts (the generated ``.py`` source, the ``.c`` source,
and the built ``.so``) are content-addressed in the plan cache's
:class:`~repro.plancache.artifacts.ArtifactStore` under
:func:`artifact_key` — lowered-IR hash x pass config x emitter version
x toolchain fingerprint — so a warm bind is a file read + dlopen, not a
compile.  A per-process memo on top makes repeat binds free.

All backends are **bit-identical** (asserted by the compiled identity
suite): the callable returned by :func:`compile_executor` has the same
signature and the same floating-point behavior per backend.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import threading
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import backends
from repro.errors import ExecutorBoundsError, LegalityError, ValidationError
from repro.lowering import toolchain
from repro.lowering.ir import Program, ir_hash, lower_kernel
from repro.lowering.passes import LoweringRewriter, PassConfig, RewriteState

#: Valid selector values for the executor switch (``auto`` = best
#: available: ``c`` with a toolchain, else ``numpy``).
EXECUTOR_BACKENDS = ("auto", "library", "numpy", "c")

#: Environment override consulted when no explicit backend is passed.
EXECUTOR_BACKEND_ENV = "REPRO_EXECUTOR_BACKEND"

#: Default backend: the library executor (no compilation surprises
#: unless a backend is asked for).
DEFAULT_EXECUTOR_BACKEND = "library"

#: Best-first ladder for ``auto`` resolution and unavailability walks.
EXECUTOR_LADDER = ("c", "numpy", "library")

#: Environment switch for the sanitizer (bounds-guarded emission) when no
#: explicit ``sanitize`` argument is passed to :func:`compile_executor`.
EXECUTOR_SANITIZE_ENV = "REPRO_EXECUTOR_SANITIZE"


def sanitize_enabled(sanitize: Optional[bool] = None) -> bool:
    """Resolve the sanitizer switch (argument > environment > off)."""
    if sanitize is not None:
        return bool(sanitize)
    return os.environ.get(EXECUTOR_SANITIZE_ENV, "").strip().lower() in {
        "1",
        "true",
        "on",
        "yes",
    }


def resolve_executor_backend(
    backend: Optional[str] = None, warn: bool = True
) -> backends.Resolution:
    """Resolve the executor backend selector (shared policy; the ``c``
    rung is gated on a live C toolchain)."""
    return backends.resolve(
        backend,
        subsystem="executor",
        choices=EXECUTOR_BACKENDS,
        env_var=EXECUTOR_BACKEND_ENV,
        default=DEFAULT_EXECUTOR_BACKEND,
        ladder=EXECUTOR_LADDER,
        available={"c": toolchain.have_toolchain},
        warn=warn,
    )


def artifact_key(program: Program, config: PassConfig, emitter: str) -> str:
    """Content address of one compiled executor build."""
    tool = toolchain.toolchain_fingerprint() if emitter.startswith("c") else ""
    blob = "\x1f".join((ir_hash(program), config.digest(), emitter, tool))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CompiledExecutor:
    """One bound executor: ``run`` plus its provenance.

    * untiled: ``run(arrays, left, right, num_steps=1)``
    * tiled:   ``run(arrays, left, right, schedule, wave_groups=None,
      num_steps=1)``
    """

    kernel_name: str
    backend: str
    tiled: bool
    run: Callable
    ir_digest: str
    artifact_path: Optional[str] = None
    from_cache: bool = False
    state: Optional[RewriteState] = None
    #: ``True``/``False`` once the IR verifier ran (or its cached proof
    #: was consulted); ``None`` when verification was skipped (library
    #: backend, or ``verify=False``).
    verified: Optional[bool] = None
    #: Whether the bound executor carries the sanitizer guard prologue.
    sanitized: bool = False
    #: Path of the content-addressed proof artifact, when one exists.
    proof_path: Optional[str] = None
    #: ``True`` when the proof came from the artifact store (warm bind —
    #: the verifier itself did not run).
    proof_from_cache: bool = False
    #: Which tile scheduler the bound entry point implements:
    #: ``"wave"`` (level-synchronous) or ``"dynamic"`` (dependence
    #: counters + work stealing).  Untiled executors are always "wave".
    scheduler: str = "wave"


_MEMO: Dict[Tuple, CompiledExecutor] = {}
_MEMO_LOCK = threading.Lock()


def clear_executor_memo() -> None:
    """Drop per-process compiled-executor memo (test hook)."""
    with _MEMO_LOCK:
        _MEMO.clear()


def _as_f64(arrays: Dict[str, np.ndarray], names) -> List[np.ndarray]:
    out = []
    for name in names:
        arr = arrays[name]
        if arr.dtype != np.float64 or not arr.flags["C_CONTIGUOUS"]:
            raise ValidationError(
                f"compiled executors require contiguous float64 data "
                f"({name!r} is {arr.dtype}, contiguous="
                f"{arr.flags['C_CONTIGUOUS']})"
            )
        out.append(arr)
    return out


def _as_i64(arr: np.ndarray, what: str) -> np.ndarray:
    arr = np.ascontiguousarray(arr)
    if arr.dtype != np.int64:
        if not np.issubdtype(arr.dtype, np.integer):
            raise ValidationError(f"{what} must be an integer array")
        arr = arr.astype(np.int64)
    return arr


def _dptr(arr: np.ndarray):
    return arr.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _iptr(arr: np.ndarray):
    return arr.ctypes.data_as(ctypes.POINTER(ctypes.c_longlong))


def _flatten_csr(chunks: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    off = np.zeros(len(chunks) + 1, dtype=np.int64)
    for i, chunk in enumerate(chunks):
        off[i + 1] = off[i] + len(chunk)
    if chunks:
        flat = np.concatenate([_as_i64(c, "schedule") for c in chunks])
    else:  # pragma: no cover - empty schedules are rejected upstream
        flat = np.zeros(0, dtype=np.int64)
    return np.ascontiguousarray(flat), off


def _library_runner(kernel_name: str, tiled: bool) -> Callable:
    """The library backend behind the compiled-executor signature."""
    from repro.kernels.executors import PHASE_FUNCTIONS, STEP_FUNCTIONS

    if not tiled:
        step = STEP_FUNCTIONS[kernel_name]

        def run(arrays, left, right, num_steps=1):
            for _ in range(num_steps):
                step(arrays, left, right)
            return arrays

        return run

    phases = PHASE_FUNCTIONS[kernel_name]

    def run_tiled(arrays, left, right, schedule, wave_groups=None, num_steps=1):
        if wave_groups is None:
            wave_groups = [[t] for t in range(len(schedule))]
        for _ in range(num_steps):
            for group in wave_groups:
                tiles = [schedule[int(t)] for t in group]
                for pos, phase in enumerate(phases):
                    work = [t[pos] for t in tiles if len(t[pos])]
                    if not work:
                        continue
                    if phase.domain == "nodes":
                        for it in work:
                            phase.apply(arrays, it)
                    else:
                        ends = [(left[it], right[it]) for it in work]
                        payloads = [
                            phase.gather(arrays, l, r) for l, r in ends
                        ]
                        for (l, r), payload in zip(ends, payloads):
                            phase.commit(arrays, l, r, payload)
        return arrays

    return run_tiled


def _guard_source_name(code: int, program: Program) -> str:
    """Map a sanitized executor's ``err[0]`` code to an index source."""
    from repro.lowering import emit_c

    if code == emit_c.GUARD_LEFT:
        return "left"
    if code == emit_c.GUARD_RIGHT:
        return "right"
    if code == emit_c.GUARD_WAVES:
        return "wave_tiles"
    if code == emit_c.GUARD_ORDER:
        return "dag.order"
    if code == emit_c.GUARD_SUCC:
        return "dag.succ_indices"
    pos = code - emit_c.GUARD_SCHEDULE_BASE
    if 0 <= pos < len(program.loops):
        return f"schedule[{program.loops[pos].label}]"
    return f"guard#{code}"  # pragma: no cover - unknown codes never emitted


def _raise_guard_trap(err: np.ndarray, program: Program) -> None:
    code, pos, value, bound = (int(v) for v in err[:4])
    name = _guard_source_name(code, program)
    raise ExecutorBoundsError(
        f"{name}[{pos}] = {value} outside [0, {bound})",
        array=name,
        bound=bound,
        stage="sanitizer",
        indices=[pos],
    )


def _c_runner(
    so_path: str, program: Program, tiled: bool, sanitize: bool = False
) -> Callable:
    lib = ctypes.CDLL(so_path)
    names = program.data_arrays
    n_loops = len(program.loops)

    if not tiled:
        fn = lib.run
        fn.restype = None

        def run(arrays, left, right, num_steps=1):
            datas = _as_f64(arrays, names)
            left = _as_i64(left, "left")
            right = _as_i64(right, "right")
            num_nodes = datas[0].shape[0]
            num_inter = left.shape[0]
            if sanitize and right.shape[0] != num_inter:
                raise ExecutorBoundsError(
                    f"right has {right.shape[0]} entries, left has "
                    f"{num_inter}",
                    array="right",
                    bound=num_inter,
                    stage="sanitizer",
                )
            scratch = np.empty(max(num_inter, 1), dtype=np.float64)
            err = np.zeros(4, dtype=np.int64)
            fn(
                *[_dptr(d) for d in datas],
                _iptr(left),
                _iptr(right),
                ctypes.c_longlong(num_nodes),
                ctypes.c_longlong(num_inter),
                ctypes.c_longlong(num_steps),
                _dptr(scratch),
                *([_iptr(err)] if sanitize else []),
            )
            if sanitize and err[0]:
                _raise_guard_trap(err, program)
            return arrays

        return run

    fn = lib.run_tiled
    fn.restype = None

    def run_tiled(arrays, left, right, schedule, wave_groups=None, num_steps=1):
        datas = _as_f64(arrays, names)
        left = _as_i64(left, "left")
        right = _as_i64(right, "right")
        num_nodes = datas[0].shape[0]
        num_inter = left.shape[0]
        if sanitize and right.shape[0] != num_inter:
            raise ExecutorBoundsError(
                f"right has {right.shape[0]} entries, left has {num_inter}",
                array="right",
                bound=num_inter,
                stage="sanitizer",
            )
        if wave_groups is None:
            wave_groups = [
                np.array([t], dtype=np.int64) for t in range(len(schedule))
            ]
        keepalive = []  # the CSR arrays must outlive the foreign call
        csr_ptrs = []
        for pos in range(n_loops):
            iters, off = _flatten_csr([tile[pos] for tile in schedule])
            keepalive += [iters, off]
            csr_ptrs += [_iptr(iters), _iptr(off)]
        wave_tiles, wave_off = _flatten_csr(
            [np.asarray(g, dtype=np.int64) for g in wave_groups]
        )
        scratch = np.empty(max(num_inter, 1), dtype=np.float64)
        err = np.zeros(4, dtype=np.int64)
        tail = (
            [ctypes.c_longlong(len(schedule)), _iptr(err)] if sanitize else []
        )
        fn(
            *[_dptr(d) for d in datas],
            _iptr(left),
            _iptr(right),
            ctypes.c_longlong(num_nodes),
            ctypes.c_longlong(num_inter),
            ctypes.c_longlong(num_steps),
            *csr_ptrs,
            _iptr(wave_tiles),
            _iptr(wave_off),
            ctypes.c_longlong(len(wave_groups)),
            _dptr(scratch),
            *tail,
        )
        del keepalive
        if sanitize and err[0]:
            _raise_guard_trap(err, program)
        return arrays

    return run_tiled


def _library_runner_dynamic(kernel_name: str) -> Callable:
    """The library backend behind the dynamic-scheduler signature.

    Same three-stage tile task as the compiled dynamic backends, driven
    by :func:`repro.lowering.schedule.run_dynamic` over the hand-written
    phase functions — the cross-backend identity reference."""
    from repro.kernels.executors import PHASE_FUNCTIONS
    from repro.lowering.schedule import run_dynamic, tile_dag_from_waves

    phases = PHASE_FUNCTIONS[kernel_name]
    inter_pos = [i for i, p in enumerate(phases) if p.domain != "nodes"]
    if len(inter_pos) != 1:
        raise ValidationError(
            f"dynamic scheduler supports exactly one interaction phase, "
            f"{kernel_name} has {len(inter_pos)}"
        )
    ip = inter_pos[0]
    pre, inter, post = phases[:ip], phases[ip], phases[ip + 1 :]

    def run_tiled(
        arrays,
        left,
        right,
        schedule,
        wave_groups=None,
        num_steps=1,
        dag=None,
        num_threads=None,
    ):
        if dag is None:
            dag = tile_dag_from_waves(wave_groups, len(schedule))
        payloads: List = [None] * len(schedule)
        ends: List = [None] * len(schedule)

        def stage_gather(t):
            tile = schedule[t]
            for pos, phase in enumerate(pre):
                it = tile[pos]
                if len(it):
                    phase.apply(arrays, it)
            it = tile[ip]
            if len(it):
                l, r = left[it], right[it]
                ends[t] = (l, r)
                payloads[t] = inter.gather(arrays, l, r)

        def stage_commit(t):
            if payloads[t] is not None:
                l, r = ends[t]
                inter.commit(arrays, l, r, payloads[t])
            payloads[t] = None
            ends[t] = None

        def stage_post(t):
            tile = schedule[t]
            for off, phase in enumerate(post):
                it = tile[ip + 1 + off]
                if len(it):
                    phase.apply(arrays, it)

        run_dynamic(
            dag,
            stage_gather,
            stage_commit,
            stage_post,
            num_threads=num_threads,
            num_steps=num_steps,
        )
        return arrays

    return run_tiled


def _c_runner_dynamic(
    so_path: str, program: Program, sanitize: bool = False
) -> Callable:
    """Drive the ``run_tiled_dynamic`` entry point through ``ctypes``.

    Marshals the CSR tile schedule exactly like the wave runner, plus
    the counter DAG (commit order, indegree seeds, successor CSR) and
    the resolved worker count.  The DAG is legality-checked
    (:func:`~repro.lowering.schedule.ensure_runnable`, IRV006) before
    the foreign call — a cyclic or under-counted graph would deadlock
    or race inside C where we cannot raise."""
    lib = ctypes.CDLL(so_path)
    fn = lib.run_tiled_dynamic
    fn.restype = None
    names = program.data_arrays
    n_loops = len(program.loops)

    def run_tiled(
        arrays,
        left,
        right,
        schedule,
        wave_groups=None,
        num_steps=1,
        dag=None,
        num_threads=None,
    ):
        from repro.lowering.schedule import (
            ensure_runnable,
            resolve_num_threads,
            static_levels,
            tile_dag_from_waves,
        )

        datas = _as_f64(arrays, names)
        left = _as_i64(left, "left")
        right = _as_i64(right, "right")
        num_nodes = datas[0].shape[0]
        num_inter = left.shape[0]
        if sanitize and right.shape[0] != num_inter:
            raise ExecutorBoundsError(
                f"right has {right.shape[0]} entries, left has {num_inter}",
                array="right",
                bound=num_inter,
                stage="sanitizer",
            )
        if dag is None:
            # The wave executors guard wave groups inside the emitted
            # code; here the groups are consumed Python-side (they only
            # seed the barrier DAG), so the sanitizer contract — typed
            # trap, arrays untouched — is honored before construction.
            if sanitize and wave_groups is not None:
                num_tiles = len(schedule)
                for wv, group in enumerate(wave_groups):
                    g = np.asarray(group, dtype=np.int64).ravel()
                    bad = np.flatnonzero((g < 0) | (g >= num_tiles))
                    if len(bad):
                        pos = int(bad[0])
                        raise ExecutorBoundsError(
                            f"wave_groups[{wv}][{pos}] = {int(g[pos])} "
                            f"outside [0, {num_tiles})",
                            array=f"wave_groups[{wv}]",
                            bound=num_tiles,
                            stage="sanitizer",
                        )
            dag = tile_dag_from_waves(wave_groups, len(schedule))
        ensure_runnable(dag)
        nthreads = resolve_num_threads(num_threads)
        keepalive = []  # the CSR arrays must outlive the foreign call
        csr_ptrs = []
        for pos in range(n_loops):
            iters, off = _flatten_csr([tile[pos] for tile in schedule])
            keepalive += [iters, off]
            csr_ptrs += [_iptr(iters), _iptr(off)]
        order = _as_i64(dag.order, "dag.order")
        # The serial fast path replays the static wave schedule, so the
        # engine needs each tile's level; recomputed only for hand-built
        # DAGs that omitted it (the constructors always populate it).
        wave = _as_i64(static_levels(dag), "dag.wave")
        indegree = _as_i64(dag.indegree, "dag.indegree")
        succ_off = _as_i64(dag.succ_indptr, "dag.succ_indptr")
        succ = _as_i64(dag.succ_indices, "dag.succ_indices")
        keepalive += [order, wave, indegree, succ_off, succ]
        scratch = np.empty(max(num_inter, 1), dtype=np.float64)
        err = np.zeros(4, dtype=np.int64)
        fn(
            *[_dptr(d) for d in datas],
            _iptr(left),
            _iptr(right),
            ctypes.c_longlong(num_nodes),
            ctypes.c_longlong(num_inter),
            ctypes.c_longlong(num_steps),
            *csr_ptrs,
            _iptr(order),
            _iptr(wave),
            _iptr(indegree),
            _iptr(succ_off),
            _iptr(succ),
            ctypes.c_longlong(len(schedule)),
            ctypes.c_longlong(nthreads),
            _dptr(scratch),
            *([_iptr(err)] if sanitize else []),
        )
        del keepalive
        if sanitize and err[0]:
            _raise_guard_trap(err, program)
        return arrays

    return run_tiled


def _rewritten(kernel_name: str, tiled: bool, config: PassConfig) -> RewriteState:
    from repro.kernels.specs import kernel_by_name

    program = lower_kernel(kernel_by_name(kernel_name))
    return LoweringRewriter(config=config, tiled=tiled).run(program)


def _verify_with_proof_cache(state: RewriteState, store, tiled: bool):
    """Run the IR verifier — or reuse its content-addressed proof.

    Returns ``(proven, proof_path, from_cache)``.  The proof JSON is
    keyed by lowered-IR hash x pass config x verifier version, so a warm
    bind of an already-proven program is a file read, not a re-proof; a
    corrupted proof file is a safe miss (re-verify and rewrite).
    """
    from repro.analysis.irverify import proof_key, verify_state

    key = proof_key(state.program, state.config, tiled)
    built = {}

    def build() -> str:
        report = verify_state(state)
        built["proven"] = report.proven
        return report.to_json()

    path, hit = store.get_or_build_text(key, "proof", build)
    if not hit:
        return built["proven"], str(path), False
    try:
        return bool(json.loads(path.read_text())["proven"]), str(path), True
    except (OSError, ValueError, KeyError):  # corrupted proof: re-verify
        report = verify_state(state)
        path.write_text(report.to_json())
        return report.proven, str(path), False


def compile_executor(
    kernel_name: str,
    backend: Optional[str] = None,
    tiled: bool = False,
    config: Optional[PassConfig] = None,
    cache_dir=None,
    memo: bool = True,
    verify: bool = True,
    sanitize: Optional[bool] = None,
    scheduler: Optional[str] = None,
) -> CompiledExecutor:
    """Lower, rewrite, emit, (compile,) and bind one kernel executor.

    ``backend`` follows the shared resolution policy; the returned
    executor records which backend actually ran and whether its artifact
    came from the content-addressed cache.

    ``scheduler`` (argument > ``REPRO_EXECUTOR_SCHEDULER`` > ``wave``)
    selects the tiled entry point: the level-synchronous wave executor,
    or the dependence-counter dynamic scheduler whose ``run`` addition-
    ally accepts ``dag``/``num_threads``.  Dynamic builds flip the
    ``dynamic_schedule`` pass on, are cached under distinct artifact
    suffixes (``dyn.py``/``dyn.c``/``dyn.so``), and stay bit-identical
    to the wave executor at any thread count.  Untiled executors ignore
    the knob (there is no tile graph to schedule).

    Compiled backends (``numpy``/``c``) are **gated on proof**: the IR
    verifier (:mod:`repro.analysis.irverify`) must prove the rewritten
    program in-bounds, race-free, and translation-validated before
    emission, or the bind raises :class:`~repro.errors.LegalityError` —
    unless ``sanitize`` (argument or ``REPRO_EXECUTOR_SANITIZE``) selects
    the guarded emitters, which trap bad indices as typed
    :class:`~repro.errors.ExecutorBoundsError` at run time instead.
    Proof results are content-addressed next to the artifacts, so warm
    binds skip re-verification.  ``verify=False`` skips the gate
    entirely (test/ablation hook).
    """
    from repro.codegen.emit import compile_source
    from repro.lowering import emit_c, emit_numpy
    from repro.lowering.schedule import resolve_scheduler
    from repro.plancache.artifacts import ArtifactStore

    resolved = resolve_executor_backend(backend).backend
    sched = resolve_scheduler(scheduler).backend if tiled else "wave"
    dynamic = sched == "dynamic"
    config = config or PassConfig()
    if dynamic:
        config = replace(config, dynamic_schedule=True)
    sanitized = sanitize_enabled(sanitize) and resolved != "library"

    memo_key = (
        kernel_name,
        resolved,
        tiled,
        sched,
        config.digest(),
        str(cache_dir),
        verify,
        sanitized,
    )
    if memo:
        with _MEMO_LOCK:
            hit = _MEMO.get(memo_key)
        if hit is not None:
            return hit

    state = _rewritten(kernel_name, tiled, config)
    program = state.program
    digest = ir_hash(program)

    verified = None
    proof_path = None
    proof_cached = False
    if verify and resolved != "library":
        store = ArtifactStore(cache_dir)
        verified, proof_path, proof_cached = _verify_with_proof_cache(
            state, store, tiled
        )
        if not verified and not sanitized:
            raise LegalityError(
                f"IR verifier could not prove executor "
                f"{kernel_name!r} ({'tiled' if tiled else 'untiled'}, "
                f"{resolved}) safe; refusing unguarded emission",
                stage="irverify",
                hint=(
                    "inspect with `repro lint --ir`, or bind with "
                    "sanitize=True / REPRO_EXECUTOR_SANITIZE=1 for a "
                    "bounds-guarded build"
                ),
            )

    if resolved == "library":
        runner = (
            _library_runner_dynamic(kernel_name)
            if dynamic
            else _library_runner(kernel_name, tiled)
        )
        compiled = CompiledExecutor(
            kernel_name=kernel_name,
            backend="library",
            tiled=tiled,
            run=runner,
            ir_digest=digest,
            state=state,
        )
    elif resolved == "numpy":
        store = ArtifactStore(cache_dir)
        if dynamic:
            emit = emit_numpy.emit_numpy_dynamic
        elif tiled:
            emit = emit_numpy.emit_numpy_tiled
        else:
            emit = emit_numpy.emit_numpy
        version = emit_numpy.EMITTER_VERSION
        if dynamic:
            version += "+" + emit_numpy.DYNAMIC_TAG
        if sanitized:
            version += "+" + emit_numpy.SANITIZE_TAG
        key = artifact_key(program, config, version)
        path, hit = store.get_or_build_text(
            key,
            "dyn.py" if dynamic else "py",
            lambda: emit(program, sanitize=sanitized),
        )
        fn = compile_source(path.read_text(), "run")
        compiled = CompiledExecutor(
            kernel_name=kernel_name,
            backend="numpy",
            tiled=tiled,
            run=fn,
            ir_digest=digest,
            artifact_path=str(path),
            from_cache=hit,
            state=state,
        )
    else:  # "c"
        store = ArtifactStore(cache_dir)
        if dynamic:
            emit = emit_c.emit_c_dynamic
        elif tiled:
            emit = emit_c.emit_c_tiled
        else:
            emit = emit_c.emit_c
        version = emit_c.EMITTER_VERSION
        if dynamic:
            version += "+" + emit_c.DYNAMIC_TAG
        if sanitized:
            version += "+" + emit_c.SANITIZE_TAG
        key = artifact_key(program, config, version)
        src_path, _ = store.get_or_build_text(
            key,
            "dyn.c" if dynamic else "c",
            lambda: emit(program, sanitize=sanitized),
        )
        so_path, hit = store.get_or_build_file(
            key,
            "dyn.so" if dynamic else "so",
            lambda tmp: toolchain.compile_shared(src_path, tmp),
        )
        runner = (
            _c_runner_dynamic(str(so_path), program, sanitize=sanitized)
            if dynamic
            else _c_runner(str(so_path), program, tiled, sanitize=sanitized)
        )
        compiled = CompiledExecutor(
            kernel_name=kernel_name,
            backend="c",
            tiled=tiled,
            run=runner,
            ir_digest=digest,
            artifact_path=str(so_path),
            from_cache=hit,
            state=state,
        )
    compiled.verified = verified
    compiled.sanitized = sanitized
    compiled.proof_path = proof_path
    compiled.proof_from_cache = proof_cached
    compiled.scheduler = sched

    if memo:
        with _MEMO_LOCK:
            _MEMO[memo_key] = compiled
    return compiled


def executor_backend_report() -> dict:
    """Doctor payload: selection, toolchain, and artifact-store state."""
    from repro.analysis.irverify import IRVERIFY_VERSION
    from repro.lowering.schedule import scheduler_report
    from repro.plancache.artifacts import ArtifactStore

    resolution = resolve_executor_backend(warn=False)
    ok, reason = toolchain.have_toolchain()
    cc = toolchain.find_compiler()
    report = {
        "sanitize": {
            "enabled": sanitize_enabled(),
            "env": EXECUTOR_SANITIZE_ENV,
        },
        "scheduler": scheduler_report(),
        "verifier": {"version": IRVERIFY_VERSION},
        "backend": resolution.backend,
        "source": resolution.source,
        "requested": resolution.requested,
        "degraded": resolution.degraded,
        "fallbacks": [list(f) for f in resolution.fallbacks],
        "choices": list(EXECUTOR_BACKENDS),
        "toolchain": {
            "available": ok,
            "compiler": cc,
            "version": toolchain.compiler_version(cc) if cc else None,
            "fingerprint": toolchain.toolchain_fingerprint(),
            "reason": reason or None,
        },
        "artifacts": ArtifactStore().health(),
    }
    return report


__all__ = [
    "DEFAULT_EXECUTOR_BACKEND",
    "EXECUTOR_BACKENDS",
    "EXECUTOR_BACKEND_ENV",
    "EXECUTOR_LADDER",
    "EXECUTOR_SANITIZE_ENV",
    "CompiledExecutor",
    "artifact_key",
    "clear_executor_memo",
    "compile_executor",
    "executor_backend_report",
    "resolve_executor_backend",
    "sanitize_enabled",
]
