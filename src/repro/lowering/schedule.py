"""Hybrid static/dynamic tile scheduling: dependence-counter work stealing.

The wavefront executors run tiles in level-synchronous waves: every tile
of wave ``w`` finishes before any tile of wave ``w+1`` starts, and the
reduction commits inside a wave are applied serially in ascending tile
order so parallel runs stay bit-identical to serial ones.  Correct — but
one oversized tile stalls the whole wave behind the barrier, and no
cross-wave progress is possible.

This module keeps the static wave structure as the *legality skeleton*
(the hybrid static/dynamic recipe from "Hybrid Static/Dynamic Schedules
for Tiled Polyhedral Programs") and replaces the barrier with per-tile
dependence counters derived from the FST tile graph:

* :class:`TileDAG` — the counter DAG: successor CSR, seed in-degrees,
  and the *deterministic commit order* (the exact sequence in which the
  level-synchronous executor applies tile commits: waves outermost,
  ascending tile id within a wave).
* :func:`run_dynamic` — the execution engine.  Each tile is a
  three-stage task: **gather** (pre-interaction node phases + payload
  gather into the tile's private partial buffer; released when the
  tile's counter hits zero, runs in parallel), **commit** (apply the
  buffered contributions; serialized in the commit order by a
  cooperatively-drained commit token), and **post** (post-interaction
  node phases; parallel, then decrement successor counters).  Workers
  own a deque each (LIFO pop of their own work, FIFO steal from
  victims) so a stalled wave never idles a core that has runnable
  tiles elsewhere in the DAG.

Why this is bit-identical to the wave executor at any thread count:
every contribution to an element read or written by tile ``t`` comes
from ``t`` itself or a DAG predecessor of ``t`` (an interaction with an
endpoint in ``t`` induces a tile-graph edge into ``t`` — the atomic-tile
condition), so gating stage-gather on the counter reproduces exactly the
values the wave executor would read; and applying commits in the wave
executor's own total order makes the reduction fold identical
float-by-float.  The commit buffers hold the *raw per-interaction
payloads*, not pre-summed partials — pre-summing would regroup the
reduction and change the rounding.

Knobs: ``REPRO_EXECUTOR_SCHEDULER`` (``wave`` | ``dynamic``, resolved
through the shared :mod:`repro.backends` policy) and
``REPRO_EXECUTOR_THREADS`` (worker count; ``1`` short-circuits to a
serial loop over the commit order with zero scheduling overhead).
"""

from __future__ import annotations

import collections
import os
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import backends
from repro.errors import LegalityError, ValidationError

#: Environment variable selecting the tile scheduler.
SCHEDULER_ENV = "REPRO_EXECUTOR_SCHEDULER"
#: Environment variable bounding the dynamic scheduler's worker count.
THREADS_ENV = "REPRO_EXECUTOR_THREADS"
#: Valid scheduler names.
EXECUTOR_SCHEDULERS = ("wave", "dynamic")
#: The default: the paper-shaped level-synchronous executor.
DEFAULT_SCHEDULER = "wave"
#: Best-first ladder for ``auto`` (both rungs are always available).
SCHEDULER_LADDER = ("dynamic", "wave")


def resolve_scheduler(
    scheduler: Optional[str] = None, warn: bool = True
) -> backends.Resolution:
    """Resolve the scheduler selector: argument > env > ``wave``."""
    return backends.resolve(
        scheduler,
        subsystem="scheduler",
        choices=EXECUTOR_SCHEDULERS,
        env_var=SCHEDULER_ENV,
        default=DEFAULT_SCHEDULER,
        ladder=SCHEDULER_LADDER,
        warn=warn,
    )


def resolve_num_threads(num_threads: Optional[int] = None) -> int:
    """Worker count: argument > ``REPRO_EXECUTOR_THREADS`` > visible cores."""
    if num_threads is None:
        env = os.environ.get(THREADS_ENV) or None
        if env is not None:
            try:
                num_threads = int(env)
            except ValueError:
                raise ValidationError(
                    f"{THREADS_ENV} must be an integer, got {env!r}"
                )
    if num_threads is None:
        try:
            num_threads = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            num_threads = os.cpu_count() or 1
    num_threads = int(num_threads)
    if num_threads < 1:
        raise ValidationError(
            f"scheduler thread count must be >= 1, got {num_threads}"
        )
    return num_threads


@dataclass(frozen=True)
class TileDAG:
    """The dependence-counter DAG the dynamic scheduler executes.

    ``indegree[t]`` seeds tile ``t``'s counter (its predecessor count);
    ``succ_indptr``/``succ_indices`` is the successor CSR (who to
    decrement when ``t`` finishes); ``order`` is the deterministic
    commit sequence — the level-synchronous executor's own commit order
    (waves outermost, ascending tile id inside each wave) — and
    ``wave[t]`` the static level, or ``None`` when the edge set was
    cyclic and no level assignment exists (the verifier's IRV006 case).
    """

    num_tiles: int
    indegree: np.ndarray
    succ_indptr: np.ndarray
    succ_indices: np.ndarray
    order: np.ndarray
    wave: Optional[np.ndarray] = None

    @property
    def num_edges(self) -> int:
        return int(len(self.succ_indices))

    def successors(self, tile: int) -> np.ndarray:
        lo = int(self.succ_indptr[tile])
        hi = int(self.succ_indptr[tile + 1])
        return self.succ_indices[lo:hi]

    def stats(self) -> dict:
        """Doctor-friendly summary."""
        return {
            "num_tiles": int(self.num_tiles),
            "num_edges": self.num_edges,
            "num_waves": (
                int(self.wave.max()) + 1
                if self.wave is not None and len(self.wave)
                else 0
            ),
            "max_indegree": (
                int(self.indegree.max()) if len(self.indegree) else 0
            ),
            "roots": int(np.count_nonzero(self.indegree == 0)),
        }


def _dedupe_edges(
    num_tiles: int, src: np.ndarray, dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise ValidationError("tile edge endpoint arrays must align")
    if len(src):
        if src.min() < 0 or dst.min() < 0 or (
            max(int(src.max()), int(dst.max())) >= num_tiles
        ):
            raise ValidationError(
                f"tile edge endpoints out of range for {num_tiles} tiles"
            )
    strict = src != dst
    src, dst = src[strict], dst[strict]
    if len(src):
        # Sort-based dedup: equivalent to np.unique (sorted, duplicate
        # free) but avoids its hash path, which is far slower on the
        # multi-million-key arrays dense tile graphs produce.
        keys = np.sort(src * np.int64(num_tiles) + dst)
        keys = keys[np.concatenate(([True], keys[1:] != keys[:-1]))]
        src, dst = keys // num_tiles, keys % num_tiles
    return src, dst


def _build_dag(
    num_tiles: int,
    src: np.ndarray,
    dst: np.ndarray,
    order: np.ndarray,
    wave: Optional[np.ndarray],
) -> TileDAG:
    indegree = np.bincount(dst, minlength=num_tiles).astype(np.int64)
    csr_order = np.argsort(src, kind="stable")
    succ_indices = dst[csr_order].astype(np.int64)
    succ_indptr = np.zeros(num_tiles + 1, dtype=np.int64)
    np.add.at(succ_indptr[1:], src, 1)
    succ_indptr = np.cumsum(succ_indptr)
    return TileDAG(
        num_tiles=num_tiles,
        indegree=indegree,
        succ_indptr=succ_indptr,
        succ_indices=succ_indices,
        order=np.asarray(order, dtype=np.int64),
        wave=wave,
    )


def tile_dag(
    num_tiles: int,
    tile_src: np.ndarray,
    tile_dst: np.ndarray,
    waves=None,
) -> TileDAG:
    """Counter DAG from explicit tile-graph edges.

    ``waves`` (a :class:`~repro.transforms.parallel.WavefrontSchedule`)
    pins the commit order to that schedule's sequence; without it the
    levels are recomputed from the edges.  A cyclic edge set still
    *constructs* (order falls back to ascending tile id, ``wave`` is
    ``None``) so the verifier can diagnose it — IRV006 — instead of the
    constructor throwing; the execution engine refuses to run it.
    """
    from repro.transforms.parallel import (
        CyclicDependenceError,
        wavefront_schedule,
    )

    src, dst = _dedupe_edges(num_tiles, tile_src, tile_dst)
    if waves is None:
        try:
            waves = wavefront_schedule(num_tiles, src, dst)
        except CyclicDependenceError:
            return _build_dag(
                num_tiles, src, dst, np.arange(num_tiles, dtype=np.int64), None
            )
    groups = waves.groups()
    order = (
        np.concatenate(groups).astype(np.int64)
        if groups
        else np.empty(0, dtype=np.int64)
    )
    return _build_dag(num_tiles, src, dst, order, waves.wave.astype(np.int64))


def tile_dag_from_tiling(tiling, edges, waves=None) -> TileDAG:
    """Counter DAG from a tiling function + iteration-level dependences.

    Shares :func:`repro.transforms.parallel.tile_graph_edges` with the
    wavefront inspector so both views level the *same* graph.
    """
    from repro.transforms.parallel import tile_graph_edges

    tile_src, tile_dst = tile_graph_edges(tiling, edges)
    return tile_dag(tiling.num_tiles, tile_src, tile_dst, waves=waves)


def tile_dag_from_waves(wave_groups, num_tiles: int) -> TileDAG:
    """Conservative counter DAG from wave groups alone.

    Without the tile graph the only safe assumption is the barrier
    itself: every tile of wave ``w`` depends on *every* tile of wave
    ``w-1``.  ``wave_groups=None`` degrades further to singleton waves
    (a serial chain in ascending tile order — exactly what the wave
    executor does without a wavefront schedule).  Callers that want
    cross-wave overlap must supply the real edges via
    :func:`tile_dag_from_tiling`.
    """
    if wave_groups is None:
        groups = [
            np.asarray([t], dtype=np.int64) for t in range(num_tiles)
        ]
    else:
        groups = [np.asarray(g, dtype=np.int64) for g in wave_groups]
    wave = np.zeros(num_tiles, dtype=np.int64)
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    for w, group in enumerate(groups):
        if len(group) and (
            int(group.min()) < 0 or int(group.max()) >= num_tiles
        ):
            raise ValidationError(
                f"wave group {w} references tile ids outside "
                f"[0, {num_tiles})"
            )
        wave[group] = w
        if w:
            prev = groups[w - 1]
            src_parts.append(np.repeat(prev, len(group)))
            dst_parts.append(np.tile(group, len(prev)))
    src = (
        np.concatenate(src_parts) if src_parts else np.empty(0, dtype=np.int64)
    )
    dst = (
        np.concatenate(dst_parts) if dst_parts else np.empty(0, dtype=np.int64)
    )
    order = (
        np.concatenate(groups).astype(np.int64)
        if groups
        else np.empty(0, dtype=np.int64)
    )
    if len(order) != num_tiles:
        raise ValidationError(
            f"wave groups cover {len(order)} tiles, expected {num_tiles}"
        )
    return _build_dag(num_tiles, src, dst, order, wave)


def ensure_runnable(dag: TileDAG) -> None:
    """The IRV006 gate: refuse to execute a broken counter graph.

    A cycle deadlocks the engine; an under-counted in-degree releases a
    tile before its predecessors committed (a silent race).  Both are
    cheap to check (one vectorized Kahn pass) relative to a bind, but
    not relative to a single executor call, so the verdict is cached on
    the (frozen) instance: each ``TileDAG`` is verified once, and every
    later run of the same object skips straight to execution.
    """
    if getattr(dag, "_runnable", False):
        return
    from repro.analysis.irverify import verify_counter_dag

    problems = verify_counter_dag(dag)
    errors = [d for d in problems if d.severity == "error"]
    if errors:
        detail = "; ".join(f"{d.code}: {d.message}" for d in errors)
        raise LegalityError(
            f"counter DAG rejected by the scheduler verifier: {detail}"
        )
    object.__setattr__(dag, "_runnable", True)


def static_levels(dag: TileDAG) -> np.ndarray:
    """Per-tile wavefront levels, recomputed when ``dag.wave`` is absent.

    The public constructors always populate ``wave`` for acyclic graphs;
    this covers hand-built DAGs so the C engine's serial fast path (which
    replays the static wave schedule) never needs a caller-supplied
    level assignment.  Raises :class:`LegalityError` on a cycle.
    """
    if dag.wave is not None:
        return np.asarray(dag.wave, dtype=np.int64)
    indegree = dag.indegree.astype(np.int64).copy()
    level = np.zeros(dag.num_tiles, dtype=np.int64)
    frontier = np.flatnonzero(indegree == 0)
    done = 0
    depth = 0
    while len(frontier):
        level[frontier] = depth
        done += len(frontier)
        released: List[np.ndarray] = []
        for tile in frontier:
            succ = dag.successors(int(tile))
            indegree[succ] -= 1
            released.append(succ[indegree[succ] == 0])
        frontier = (
            np.concatenate(released)
            if released
            else np.empty(0, dtype=np.int64)
        )
        depth += 1
    if done != dag.num_tiles:
        raise LegalityError(
            f"counter DAG is cyclic: only {done} of {dag.num_tiles} tiles "
            "reachable from the roots"
        )
    return level


# ---------------------------------------------------------------------------
# The engine


class _DynamicStep:
    """One time-step of the counter-scheduled execution.

    Shared state lives under one condition variable (tile counts are
    modest — contention is not the bottleneck; the stage bodies run
    outside the lock).  The commit token (``committing``) guarantees a
    single drainer applies commits strictly in ``dag.order``; whoever
    finishes a gather and finds the token free takes commit duty, so
    commits never wait for an idle worker to be scheduled.
    """

    def __init__(
        self,
        dag: TileDAG,
        stage_gather: Callable[[int], None],
        stage_commit: Callable[[int], None],
        stage_post: Callable[[int], None],
        num_threads: int,
    ) -> None:
        self.dag = dag
        self.stage_gather = stage_gather
        self.stage_commit = stage_commit
        self.stage_post = stage_post
        self.num_threads = num_threads
        self.order = [int(t) for t in dag.order]
        self.counters = dag.indegree.copy()
        self.gathered = [False] * dag.num_tiles
        self.commit_next = 0
        self.completed = 0
        self.committing = False
        self.failure: Optional[BaseException] = None
        self.idle = threading.Condition()
        self.deques: List[collections.deque] = [
            collections.deque() for _ in range(num_threads)
        ]
        for i, t in enumerate(np.flatnonzero(self.counters == 0)):
            self.deques[i % num_threads].append(("g", int(t)))

    # -- task acquisition (caller holds the lock) ----------------------

    def _pop(self, wid: int):
        own = self.deques[wid]
        if own:
            return own.pop()  # LIFO on our own deque: hot caches first
        for step in range(1, self.num_threads):
            victim = self.deques[(wid + step) % self.num_threads]
            if victim:
                return victim.popleft()  # FIFO steal: oldest, coldest
        return None

    def _commit_ready(self) -> bool:
        return (
            self.commit_next < self.dag.num_tiles
            and self.gathered[self.order[self.commit_next]]
        )

    # -- the serial commit drain (token held, lock not held) ------------

    def _drain_commits(self, wid: int) -> None:
        while True:
            with self.idle:
                if not self._commit_ready():
                    self.committing = False
                    self.idle.notify_all()
                    return
                tile = self.order[self.commit_next]
            self.stage_commit(tile)
            with self.idle:
                self.commit_next += 1
                self.deques[wid].append(("p", tile))
                self.idle.notify_all()

    # -- worker loop -----------------------------------------------------

    def _worker(self, wid: int) -> None:
        try:
            while True:
                with self.idle:
                    task = None
                    while task is None:
                        if (
                            self.completed == self.dag.num_tiles
                            or self.failure is not None
                        ):
                            return
                        task = self._pop(wid)
                        if task is None:
                            if not self.committing and self._commit_ready():
                                self.committing = True
                                task = ("c", -1)
                            else:
                                self.idle.wait()
                kind, tile = task
                if kind == "c":
                    self._drain_commits(wid)
                elif kind == "g":
                    self.stage_gather(tile)
                    with self.idle:
                        self.gathered[tile] = True
                        take_token = (
                            not self.committing and self._commit_ready()
                        )
                        if take_token:
                            self.committing = True
                    if take_token:
                        self._drain_commits(wid)
                else:  # post
                    self.stage_post(tile)
                    with self.idle:
                        for succ in self.dag.successors(tile):
                            succ = int(succ)
                            self.counters[succ] -= 1
                            if self.counters[succ] == 0:
                                self.deques[wid].append(("g", succ))
                        self.completed += 1
                        self.idle.notify_all()
        except BaseException as exc:  # propagate to the caller, wake all
            with self.idle:
                if self.failure is None:
                    self.failure = exc
                self.idle.notify_all()

    def run(self) -> None:
        workers = [
            threading.Thread(
                target=self._worker, args=(wid,), daemon=True
            )
            for wid in range(self.num_threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        if self.failure is not None:
            raise self.failure


def run_dynamic(
    dag: TileDAG,
    stage_gather: Callable[[int], None],
    stage_commit: Callable[[int], None],
    stage_post: Callable[[int], None],
    num_threads: Optional[int] = None,
    num_steps: int = 1,
) -> None:
    """Execute ``num_steps`` time-steps under the counter scheduler.

    ``stage_gather(t)`` must run tile ``t``'s pre-interaction node
    phases and gather its interaction payloads into a private buffer;
    ``stage_commit(t)`` must apply the buffered commits exactly as the
    wave executor would at ``t``'s turn; ``stage_post(t)`` runs the
    post-interaction node phases.  The engine guarantees stage-gather
    starts only after every DAG predecessor fully finished, commits run
    serially in ``dag.order``, and a full barrier separates time-steps
    (cross-step dependences are not in the tile graph).

    ``num_threads == 1`` is the static path: a plain serial loop over
    the commit order — the same operation sequence with zero scheduling
    overhead, which is what keeps the 1-thread overhead within noise.
    """
    threads = resolve_num_threads(num_threads)
    ensure_runnable(dag)
    if dag.num_tiles == 0:
        return
    if threads == 1 or dag.num_tiles == 1:
        order = [int(t) for t in dag.order]
        for _step in range(num_steps):
            for tile in order:
                stage_gather(tile)
                stage_commit(tile)
                stage_post(tile)
        return
    for _step in range(num_steps):
        _DynamicStep(
            dag, stage_gather, stage_commit, stage_post, threads
        ).run()


def scheduler_report() -> dict:
    """Doctor payload: how the scheduler knobs currently resolve."""
    resolution = resolve_scheduler(warn=False)
    return {
        "scheduler": resolution.backend,
        "source": resolution.source,
        "requested": resolution.requested,
        "env": SCHEDULER_ENV,
        "threads": resolve_num_threads(),
        "threads_env": THREADS_ENV,
        "choices": list(EXECUTOR_SCHEDULERS),
    }


__all__ = [
    "SCHEDULER_ENV",
    "THREADS_ENV",
    "EXECUTOR_SCHEDULERS",
    "DEFAULT_SCHEDULER",
    "SCHEDULER_LADDER",
    "TileDAG",
    "tile_dag",
    "tile_dag_from_tiling",
    "tile_dag_from_waves",
    "ensure_runnable",
    "static_levels",
    "resolve_scheduler",
    "resolve_num_threads",
    "run_dynamic",
    "scheduler_report",
]
