"""C toolchain discovery, fingerprinting, and shared-object builds.

The C backend shells out to the system compiler at bind time.  Three
things matter here:

* **probing** — :func:`have_toolchain` is the availability hook the
  backend ladder consults; on a machine with no compiler the executor
  switch degrades to the NumPy backend with one warning, never an error;
* **fingerprinting** — :func:`toolchain_fingerprint` digests the
  compiler's identity (path + version banner) and the exact flag set, so
  compiled artifacts cached under one toolchain are never reused under
  another;
* **flags** — ``-ffp-contract=off`` is load-bearing: GCC defaults to
  contracting ``a*b+c`` into fused multiply-adds at ``-O2``, which
  changes rounding and would break the bit-identity contract with the
  library executor.  ``-O2`` alone does not reorder or reassociate FP
  arithmetic (that would need ``-ffast-math``), so the emitted operation
  order is the executed operation order.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import threading
from pathlib import Path
from typing import Optional, Tuple

#: Environment override for the compiler executable.
CC_ENV = "REPRO_CC"

#: Candidate compilers probed in order when ``REPRO_CC`` is unset.
CC_CANDIDATES = ("gcc", "cc", "clang")

#: Flags for executor shared objects.  See the module docstring for why
#: ``-ffp-contract=off`` is not optional.  ``-pthread`` is required by
#: the dynamic-schedule executor's worker pool and harmless for the
#: serial entry points (it changes ``toolchain_fingerprint``, which
#: correctly invalidates all cached shared objects once).
CFLAGS = ("-O2", "-ffp-contract=off", "-fPIC", "-shared", "-pthread")

_VERSION_CACHE = {}
_VERSION_LOCK = threading.Lock()


def find_compiler() -> Optional[str]:
    """Absolute path of the C compiler to use, or ``None``."""
    override = os.environ.get(CC_ENV)
    if override:
        return shutil.which(override)
    for name in CC_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def compiler_version(cc: str) -> str:
    """First line of ``cc --version`` (cached per compiler path)."""
    with _VERSION_LOCK:
        cached = _VERSION_CACHE.get(cc)
    if cached is not None:
        return cached
    try:
        out = subprocess.run(
            [cc, "--version"],
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        ).stdout
        version = out.splitlines()[0].strip() if out else "unknown"
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        version = "unknown"
    with _VERSION_LOCK:
        _VERSION_CACHE[cc] = version
    return version


def have_toolchain() -> Tuple[bool, str]:
    """Availability probe for the backend ladder: ``(ok, reason)``."""
    cc = find_compiler()
    if cc is None:
        return False, "no C compiler found (tried %s)" % ", ".join(
            CC_CANDIDATES
        )
    return True, ""


def toolchain_fingerprint() -> str:
    """Stable id of (compiler, version, flags) — ``"none"`` without one."""
    cc = find_compiler()
    if cc is None:
        return "none"
    return f"{cc}|{compiler_version(cc)}|{' '.join(CFLAGS)}"


def compile_shared(source_path: Path, out_path: Path) -> None:
    """Compile one C source file into a shared object (raises on failure,
    with the compiler's stderr in the message)."""
    cc = find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler available")
    cmd = [cc, *CFLAGS, "-o", str(out_path), str(source_path)]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=300, check=False
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"C executor build failed ({' '.join(cmd)}):\n{proc.stderr}"
        )


__all__ = [
    "CC_ENV",
    "CFLAGS",
    "compile_shared",
    "compiler_version",
    "find_compiler",
    "have_toolchain",
    "toolchain_fingerprint",
]
