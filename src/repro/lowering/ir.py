"""The executor loop-nest IR and its front end.

The lowering tier works on a small, explicit IR of the executor loop
nest — the paper's Figures 13/14 as data instead of text — so that an
ordered pass pipeline (:mod:`repro.lowering.passes`) can rewrite it and
two emitters (:mod:`repro.lowering.emit_numpy`,
:mod:`repro.lowering.emit_c`) can render it.

The front end (:func:`lower_kernel`) does **not** hand-write the IR per
kernel: it parses the scalar statement bodies of
:data:`repro.kernels.specs.STATEMENT_CODE` — the same single source of
truth the Python code generator emits — with :mod:`ast`, and recognizes
the update form ``a[idx] = a[idx] ± e1 ± e2 ...``.  The expression tree
is preserved exactly as written (only the left spine of the top-level
``+``/``-`` chain is flattened), because the compiled backends must
reproduce the library executor's floating-point rounding *bit for bit*:
the grouping of ``x[i] + (0.01*vx[i] + 0.0005*fx[i])`` is part of the
semantics.

Everything here is hashable and serializable; :func:`ir_hash` digests a
program for the compiled-artifact cache.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ValidationError

# ---------------------------------------------------------------------------
# Expressions


@dataclass(frozen=True)
class Index:
    """How a statement addresses an array: directly by the loop variable
    (``via=None``) or through an index array (``via="left"``)."""

    via: Optional[str] = None

    @property
    def direct(self) -> bool:
        return self.via is None

    def to_dict(self):
        return {"via": self.via}


@dataclass(frozen=True)
class Const:
    value: float

    def to_dict(self):
        return {"const": repr(self.value)}


@dataclass(frozen=True)
class Load:
    array: str
    index: Index

    def to_dict(self):
        return {"load": self.array, "index": self.index.to_dict()}


@dataclass(frozen=True)
class Neg:
    operand: "Expr"

    def to_dict(self):
        return {"neg": self.operand.to_dict()}


@dataclass(frozen=True)
class BinOp:
    op: str  # "+", "-", "*"
    left: "Expr"
    right: "Expr"

    def to_dict(self):
        return {"op": self.op, "l": self.left.to_dict(), "r": self.right.to_dict()}


Expr = Union[Const, Load, Neg, BinOp]


def expr_loads(expr: Expr) -> List[Load]:
    """Every array load in ``expr``, in evaluation order."""
    if isinstance(expr, Load):
        return [expr]
    if isinstance(expr, Neg):
        return expr_loads(expr.operand)
    if isinstance(expr, BinOp):
        return expr_loads(expr.left) + expr_loads(expr.right)
    return []


# ---------------------------------------------------------------------------
# Statements and loops


@dataclass(frozen=True)
class Update:
    """``array[index] += increment`` (the only statement form the three
    benchmark kernels need — every statement is an update/reduction)."""

    label: str
    array: str
    index: Index
    increment: Expr

    def to_dict(self):
        return {
            "label": self.label,
            "array": self.array,
            "index": self.index.to_dict(),
            "increment": self.increment.to_dict(),
        }


@dataclass(frozen=True)
class Commit:
    """One reduction commit of a fissioned interaction loop:
    ``array[via[j]] += sign * payload[j]``."""

    array: str
    via: str
    sign: int  # +1 or -1
    label: str = ""

    def to_dict(self):
        return {"array": self.array, "via": self.via, "sign": self.sign}


@dataclass(frozen=True)
class GatherCommit:
    """The gather/commit form of an interaction loop after fission.

    ``payload`` is the hoisted common subexpression (pure: it reads no
    array any commit writes), evaluated once per iteration; each
    :class:`Commit` applies it as a signed reduction.  Splitting this way
    is what makes the batched backends bit-identical to the library
    executor — ``np.add.at`` applies contributions array-by-array in
    index order, exactly like one scalar pass per commit."""

    payload: Expr
    commits: Tuple[Commit, ...]

    def to_dict(self):
        return {
            "payload": self.payload.to_dict(),
            "commits": [c.to_dict() for c in self.commits],
        }


@dataclass(frozen=True)
class LoopIR:
    """One loop of the executor nest plus its pass annotations."""

    label: str
    index_var: str
    domain: str  # "nodes" | "inters"
    extent: str  # symbol name ("num_nodes" / "num_inter")
    stmts: Tuple[Update, ...]
    #: Set by the fission pass on interaction loops; ``None`` = scalar form.
    fissioned: Optional[GatherCommit] = None
    #: Set by the vectorize pass: emit batched array operations.
    vector: bool = False

    def to_dict(self):
        return {
            "label": self.label,
            "index_var": self.index_var,
            "domain": self.domain,
            "extent": self.extent,
            "stmts": [s.to_dict() for s in self.stmts],
            "fissioned": self.fissioned.to_dict() if self.fissioned else None,
            "vector": self.vector,
        }


@dataclass(frozen=True)
class Program:
    """An executor loop nest: the time loop around ``loops``."""

    kernel_name: str
    loops: Tuple[LoopIR, ...]
    index_arrays: Tuple[str, ...]
    data_arrays: Tuple[str, ...]
    extents: Tuple[str, ...]
    #: Set by the blocking pass: iterate a sparse-tile schedule outermost.
    tiled: bool = False
    #: Set by the parallelize pass: honor a wavefront grouping of tiles.
    wave_parallel: bool = False
    #: Set by the dynamic_schedule pass: execute tiles from a
    #: dependence-counter DAG (work-stealing pool) instead of wave
    #: barriers, committing in the wave executor's deterministic order.
    dynamic_schedule: bool = False

    def to_dict(self):
        return {
            "kernel": self.kernel_name,
            "loops": [l.to_dict() for l in self.loops],
            "index_arrays": list(self.index_arrays),
            "data_arrays": list(self.data_arrays),
            "extents": list(self.extents),
            "tiled": self.tiled,
            "wave_parallel": self.wave_parallel,
            "dynamic_schedule": self.dynamic_schedule,
        }


def ir_hash(program: Program) -> str:
    """Stable SHA-256 of the (annotated) program — the artifact-cache key
    component that changes whenever the lowered form changes."""
    blob = json.dumps(program.to_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Front end: kernel IR + STATEMENT_CODE -> Program


def _parse_index(node: ast.expr, loop_var: str, index_arrays) -> Index:
    if isinstance(node, ast.Name):
        if node.id != loop_var:
            raise ValidationError(
                f"index variable {node.id!r} is not the loop variable "
                f"{loop_var!r}"
            )
        return Index(None)
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id in index_arrays
    ):
        inner = node.slice
        if not (isinstance(inner, ast.Name) and inner.id == loop_var):
            raise ValidationError(
                f"indirect index must be <index_array>[{loop_var}]"
            )
        return Index(node.value.id)
    raise ValidationError(f"unsupported index expression {ast.dump(node)}")


def _parse_ref(node: ast.expr, loop_var: str, index_arrays) -> Tuple[str, Index]:
    if not (isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name)):
        raise ValidationError(f"unsupported reference {ast.dump(node)}")
    return node.value.id, _parse_index(node.slice, loop_var, index_arrays)


_BINOPS = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*"}


def _parse_expr(node: ast.expr, loop_var: str, index_arrays) -> Expr:
    if isinstance(node, ast.Constant):
        return Const(float(node.value))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return Neg(_parse_expr(node.operand, loop_var, index_arrays))
    if isinstance(node, ast.BinOp):
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise ValidationError(
                f"unsupported operator {type(node.op).__name__}"
            )
        return BinOp(
            op,
            _parse_expr(node.left, loop_var, index_arrays),
            _parse_expr(node.right, loop_var, index_arrays),
        )
    if isinstance(node, ast.Subscript):
        array, index = _parse_ref(node, loop_var, index_arrays)
        return Load(array, index)
    raise ValidationError(f"unsupported expression {ast.dump(node)}")


def _left_spine_terms(expr: ast.expr) -> List[Tuple[int, ast.expr]]:
    """Flatten only the left spine of a ``+``/``-`` chain into signed
    terms; right operands keep their own grouping (their parentheses are
    semantic — they fix the floating-point rounding)."""
    if isinstance(expr, ast.BinOp) and type(expr.op) in (ast.Add, ast.Sub):
        sign = 1 if isinstance(expr.op, ast.Add) else -1
        return _left_spine_terms(expr.left) + [(sign, expr.right)]
    return [(1, expr)]


def parse_statement(
    label: str, code: str, loop_var: str, index_arrays
) -> Update:
    """Parse one ``STATEMENT_CODE`` body into an :class:`Update`.

    Recognizes ``a[idx] = a[idx] ± e1 ± e2 ...`` where the first term of
    the right-hand chain reloads the target; the increment is the rest of
    the chain folded left-associatively (which is exactly how the
    vectorized library executor groups it: ``x += 0.01*vx + 0.0005*fx``
    evaluates the increment sum before the in-place add).
    """
    tree = ast.parse(code.strip())
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.Assign):
        raise ValidationError(f"statement {label!r} is not a single assignment")
    assign = tree.body[0]
    if len(assign.targets) != 1:
        raise ValidationError(f"statement {label!r} has multiple targets")
    array, index = _parse_ref(assign.targets[0], loop_var, index_arrays)

    terms = _left_spine_terms(assign.value)
    first_sign, first = terms[0]
    first_expr = _parse_expr(first, loop_var, index_arrays)
    if first_sign != 1 or first_expr != Load(array, index):
        raise ValidationError(
            f"statement {label!r} is not in update form "
            f"(first RHS term must reload the target)"
        )
    if len(terms) < 2:
        raise ValidationError(f"statement {label!r} has an empty increment")

    increment: Optional[Expr] = None
    for sign, term in terms[1:]:
        parsed = _parse_expr(term, loop_var, index_arrays)
        if increment is None:
            increment = parsed if sign > 0 else Neg(parsed)
        else:
            increment = BinOp("+" if sign > 0 else "-", increment, parsed)
    return Update(label, array, index, increment)


def lower_kernel(kernel) -> Program:
    """Lower a compile-time :class:`~repro.uniform.kernel.Kernel` (plus
    its registered scalar statement bodies) into the executor IR."""
    from repro.kernels.specs import STATEMENT_CODE

    try:
        bodies = STATEMENT_CODE[kernel.name]
    except KeyError:
        raise ValidationError(
            f"no statement code registered for kernel {kernel.name!r}"
        ) from None

    index_arrays = tuple(kernel.index_arrays)  # dict: name -> spec
    loops: List[LoopIR] = []
    for loop in kernel.loops:
        domain = "inters" if loop.extent == "num_inter" else "nodes"
        stmts = tuple(
            parse_statement(
                stmt.label, bodies[stmt.label], loop.index_var, index_arrays
            )
            for stmt in loop.statements
        )
        loops.append(
            LoopIR(
                label=loop.label,
                index_var=loop.index_var,
                domain=domain,
                extent=loop.extent,
                stmts=stmts,
            )
        )
    return Program(
        kernel_name=kernel.name,
        loops=tuple(loops),
        index_arrays=index_arrays,
        data_arrays=tuple(kernel.data_arrays),
        extents=tuple(sorted({loop.extent for loop in kernel.loops})),
    )


__all__ = [
    "BinOp",
    "Commit",
    "Const",
    "Expr",
    "GatherCommit",
    "Index",
    "Load",
    "LoopIR",
    "Neg",
    "Program",
    "Update",
    "expr_loads",
    "ir_hash",
    "lower_kernel",
    "parse_statement",
    "replace",
]
