#!/usr/bin/env python
"""Generate, print, and run the specialized inspector and executors.

The compile-time product of the framework (paper Figures 10--15): given
the kernel IR and a planned composition, emit

* the composed inspector with the remap-once schedule (Figure 11),
* the same composition with remap-each (Figure 15),
* the transformed (permuted) executor (Figure 13),
* the sparse-tiled executor (Figure 14),

then execute the generated code and check it against the library.
"""

import numpy as np

from repro.codegen import (
    compile_source,
    generate_executor_source,
    generate_inspector_source,
)
from repro.kernels import make_kernel_data
from repro.kernels.datasets import Dataset
from repro.kernels.specs import kernel_by_name
from repro.runtime.executor import run_numeric
from repro.runtime.inspector import (
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
    TilePackStep,
)


def main() -> None:
    kernel = kernel_by_name("moldyn")
    steps = [
        CPackStep(),
        LexGroupStep(),
        FullSparseTilingStep(seed_block_size=16),
        TilePackStep(),
    ]

    print("=" * 70)
    print("Composed inspector, remap-once (Figure 11):")
    print("=" * 70)
    src_once = generate_inspector_source(kernel, steps, remap="once")
    print(src_once)

    print("=" * 70)
    print("Sparse-tiled executor (Figure 14):")
    print("=" * 70)
    exec_src = generate_executor_source(kernel, tiled=True)
    print(exec_src)

    # Run the generated pipeline on a small instance.
    rng = np.random.default_rng(1)
    n, m = 40, 120
    data = make_kernel_data(
        "moldyn",
        Dataset(
            "demo",
            n,
            rng.integers(0, n, m).astype(np.int64),
            rng.integers(0, n, m).astype(np.int64),
        ),
    )

    inspector = compile_source(src_once, "moldyn_inspector")
    out = inspector(
        n, m, data.left, data.right,
        {k: v.copy() for k, v in data.arrays.items()},
    )

    executor = compile_source(exec_src, "moldyn_executor_tiled")
    arrays = {k: v.copy() for k, v in out["arrays"].items()}
    executor(
        3, m, n, out["left"], out["right"],
        arrays["x"], arrays["vx"], arrays["fx"], schedule=out["schedule"],
    )

    # Cross-check against the library inspector + reference executor.
    lib = ComposedInspector(steps).run(data)
    reference = run_numeric(lib.transformed.copy(), 3)
    for name in arrays:
        assert np.allclose(arrays[name], reference.arrays[name]), name
    print("generated inspector + generated executor match the library: OK")


if __name__ == "__main__":
    main()
