#!/usr/bin/env python
"""The paper's Section 6 overhead reductions, measured.

1. Remap the data arrays **once**, after all reordering functions are
   generated, instead of after each data reordering (Figure 16).
2. Traverse only one of two **symmetric dependence sets** when growing
   sparse tiles.

Both are knobs on the composed inspector; this example quantifies them in
inspector element-touches and modeled cycles.
"""

from repro.cachesim import machine_by_name
from repro.kernels import generate_dataset, make_kernel_data
from repro.runtime.inspector import (
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
    TilePackStep,
)


def composition():
    # Two CPACKs plus tilePack: three data reorderings in one composition.
    return [
        CPackStep(),
        LexGroupStep(),
        CPackStep(),
        LexGroupStep(),
        FullSparseTilingStep(seed_block_size=128),
        TilePackStep(),
    ]


def main() -> None:
    machine = machine_by_name("pentium4")

    print("Remap once vs remap each (Figure 16):")
    for kernel, dataset in (("irreg", "foil"), ("moldyn", "mol1")):
        data = make_kernel_data(kernel, generate_dataset(dataset, scale=64))
        once = ComposedInspector(composition(), remap="once").run(data)
        each = ComposedInspector(composition(), remap="each").run(data)
        reduction = 100.0 * (
            (each.total_touches - once.total_touches) / each.total_touches
        )
        print(
            f"  {kernel}/{dataset}: remap-each={each.total_touches} touches "
            f"({each.data_moves} payload moves), "
            f"remap-once={once.total_touches} touches "
            f"({once.data_moves} move) -> {reduction:.1f}% less overhead, "
            f"~{machine.inspector_cycles(each.total_touches - once.total_touches):,.0f} cycles saved"
        )

    print()
    print("Symmetric dependence sharing in the FST inspector (Section 6):")
    data = make_kernel_data("moldyn", generate_dataset("mol1", scale=64))
    shared = ComposedInspector(
        [CPackStep(), LexGroupStep(), FullSparseTilingStep(128, use_symmetry=True)]
    ).run(data)
    full = ComposedInspector(
        [CPackStep(), LexGroupStep(), FullSparseTilingStep(128, use_symmetry=False)]
    ).run(data)
    assert [t.tolist() for t in shared.tiling.tiles] == [
        t.tolist() for t in full.tiling.tiles
    ], "the shared traversal must produce identical tiles"
    print(
        f"  moldyn/mol1 FST phase: both-sets={full.overhead['fst']} touches, "
        f"shared={shared.overhead['fst']} touches "
        f"({100 * (full.overhead['fst'] - shared.overhead['fst']) / full.overhead['fst']:.1f}% saved, "
        "identical tiles)"
    )


if __name__ == "__main__":
    main()
