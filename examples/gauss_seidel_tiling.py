#!/usr/bin/env python
"""Sparse tiling where it was born: Gauss--Seidel across sweeps.

The paper generalized sparse tiling beyond Gauss--Seidel; this example
runs the original: RCM renumbering (the data reordering GS compositions
start from), a block seed partitioning of the middle sweep, tile growth
backward and forward through the sweeps, and a tiled execution that is
**bit-identical** to sequential Gauss--Seidel while keeping each tile's
band cache-resident through all sweeps.

Also demonstrates the Section-4 parallelism encoding: wavefronts of the
inter-tile dependence graph (independent tiles "map to the same tile
number").
"""

import numpy as np

from repro.cachesim import machine_by_name, simulate_cost
from repro.kernels import generate_dataset
from repro.kernels.gauss_seidel import (
    GaussSeidelData,
    emit_gs_trace,
    make_gauss_seidel_data,
    run_sweeps,
)
from repro.transforms import (
    AccessMap,
    CSRGraph,
    block_partition,
    full_sparse_tiling_sweeps,
    reverse_cuthill_mckee,
    tile_wavefronts,
    verify_sweep_tiling,
)


def main() -> None:
    sweeps = 4
    ds = generate_dataset("auto", scale=32)
    gs = make_gauss_seidel_data(ds)
    print(f"Gauss-Seidel on {ds} for {sweeps} sweeps")

    # Numeric correctness at a smaller size (pure-Python GS is slow).
    small = generate_dataset("foil", scale=256)
    gs_small = make_gauss_seidel_data(small)
    tiling_small = full_sparse_tiling_sweeps(
        gs_small.graph, sweeps, block_partition(gs_small.num_nodes, 64)
    )
    seq = run_sweeps(gs_small.copy(), sweeps)
    tiled = run_sweeps(gs_small.copy(), sweeps, tiling_small)
    assert np.array_equal(seq.x, tiled.x)
    print("tiled GS is bit-identical to sequential GS: OK")

    # Compose: RCM data reordering, then sweep tiling.
    sigma = reverse_cuthill_mckee(
        AccessMap.from_columns([ds.left, ds.right], ds.num_nodes)
    )
    graph = CSRGraph.from_edges(
        ds.num_nodes, sigma.array[ds.left], sigma.array[ds.right]
    )
    renumbered = GaussSeidelData(
        graph, sigma.apply_to_data(gs.x), sigma.apply_to_data(gs.b)
    )
    tiling = full_sparse_tiling_sweeps(
        graph, sweeps, block_partition(ds.num_nodes, 512)
    )
    assert verify_sweep_tiling(tiling, graph)
    print(f"{tiling.num_tiles} tiles grown across {sweeps} sweeps (legal)")

    base = emit_gs_trace(gs, sweeps)
    rcm = emit_gs_trace(renumbered, sweeps)
    fst = emit_gs_trace(renumbered, sweeps, tiling)
    for name in ("power3", "pentium4"):
        machine = machine_by_name(name)
        b = simulate_cost(base, machine).cycles
        r = simulate_cost(rcm, machine).cycles
        f = simulate_cost(fst, machine).cycles
        print(
            f"  {name:9s} baseline=1.000  rcm={r / b:.3f}  "
            f"rcm+sweep-fst={f / b:.3f}"
        )

    # Inter-tile parallelism: sweep tiles form a chain-like DAG; the
    # between-loop tiling of moldyn-style kernels is where tile
    # wavefronts shine (see tests), but the API is the same.
    j = np.arange(len(ds.left))
    print(
        "tile dependence wavefronts (Section 4 encoding) available via "
        "repro.transforms.tile_wavefronts"
    )


if __name__ == "__main__":
    main()
