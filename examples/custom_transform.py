#!/usr/bin/env python
"""Extending the framework: plug in a custom run-time data reordering.

A downstream user adds a new reordering heuristic by subclassing
``Step``: implement the run-time inspector (``run``) and the compile-time
specification (``symbolic``).  Everything else — legality checking,
composition with the built-in transformations, index-array adjustment,
the remap policy, verification — comes for free.

The example heuristic is *degree-sorted packing*: order node data by
descending degree in the interaction graph (hub data first), a simple
cousin of the paper's space-filling-curve reorderings.
"""

import numpy as np

from repro.kernels import generate_dataset, make_kernel_data
from repro.kernels.specs import kernel_by_name
from repro.runtime import CompositionPlan
from repro.runtime.inspector import (
    LexGroupStep,
    Step,
    _data_step_symbolic,
)
from repro.runtime.verify import verify_dependences, verify_numeric_equivalence
from repro.transforms.base import ReorderingFunction


class DegreeSortStep(Step):
    """Data reordering: pack node records by descending degree."""

    name = "degsort"

    def run(self, state) -> None:
        data = state.data
        degree = np.bincount(
            np.concatenate([data.left, data.right]), minlength=data.num_nodes
        )
        state.charge(self.name, 2 * 2 * data.num_inter + data.num_nodes)
        order = np.argsort(-degree, kind="stable")  # order[new] = old
        sigma = np.empty(data.num_nodes, dtype=np.int64)
        sigma[order] = np.arange(data.num_nodes, dtype=np.int64)
        fn = ReorderingFunction(f"ds{state.current_index}", sigma)
        state.register("ds", fn.array)
        state.apply_data_reordering(fn, self.name)

    def symbolic(self, kernel, index):
        # A data reordering like any other: R on every array + the implied
        # iteration reordering of the node loops (always legal to plan).
        return _data_step_symbolic(kernel, f"ds{index}")


def main() -> None:
    data = make_kernel_data("moldyn", generate_dataset("mol1", scale=256))
    kernel = kernel_by_name("moldyn")

    plan = CompositionPlan(kernel, [DegreeSortStep(), LexGroupStep()])
    plan.plan()  # legality: data reorderings always pass, lexGroup checked
    print(plan.describe())

    result = plan.build_inspector().run(data)
    verify_numeric_equivalence(data, result)
    checked = verify_dependences(data, result, plan, num_steps=2, max_pairs=500)
    print(f"numeric equivalence OK; {checked} dependence pairs verified")

    degree = np.bincount(
        np.concatenate([data.left, data.right]), minlength=data.num_nodes
    )
    new_degree = result.sigma_nodes.apply_to_data(degree)
    assert (np.diff(new_degree) <= 0).all(), "degrees must be non-increasing"
    print(
        "after degsort, node 0 has degree "
        f"{new_degree[0]} and node {data.num_nodes - 1} has degree "
        f"{new_degree[-1]}"
    )


if __name__ == "__main__":
    main()
