#!/usr/bin/env python
"""Quickstart: plan, inspect, execute, and measure one composition.

Runs the paper's flagship composition — CPACK, lexGroup, full sparse
tiling, tilePack — on the moldyn benchmark, validates it end to end, and
prices the executors on both machine models.
"""

from repro.cachesim import machine_by_name, simulate_cost
from repro.kernels import generate_dataset, make_kernel_data
from repro.kernels.specs import kernel_by_name
from repro.runtime import CompositionPlan
from repro.runtime.executor import emit_trace
from repro.runtime.inspector import (
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
    TilePackStep,
)
from repro.runtime.verify import verify_numeric_equivalence


def main() -> None:
    # 1. A benchmark instance: moldyn on a scaled mol1-like neighbor list.
    dataset = generate_dataset("mol1", scale=64)
    data = make_kernel_data("moldyn", dataset)
    print(f"dataset: {dataset}")

    # 2. Compile time: plan the composition and check legality.
    kernel = kernel_by_name("moldyn")
    steps = [
        CPackStep(),
        LexGroupStep(),
        FullSparseTilingStep(seed_block_size=128),
        TilePackStep(),
    ]
    plan = CompositionPlan(kernel, steps, name="cpack+lg+fst+tp")
    final_state = plan.plan()  # raises LegalityError if illegal
    print(plan.describe())
    print(f"final unified space arity: {final_state.tuple_arity} (tile dim added)")

    # 3. Run time: the composed inspector generates the reordering
    #    functions, adjusts the index arrays, and relocates the data once.
    result = plan.build_inspector().run(data)
    print(f"inspector overhead (element touches): {result.overhead}")
    print(f"tiles: {result.tiling.num_tiles}")

    # 4. The transformed executor computes the same thing.
    verify_numeric_equivalence(data, result)
    print("numeric equivalence: OK")

    # 5. Price both executors on the two machine models.
    for machine_name in ("power3", "pentium4"):
        machine = machine_by_name(machine_name)
        base = simulate_cost(emit_trace(data), machine)
        opt = simulate_cost(emit_trace(result.transformed, result.plan), machine)
        print(
            f"{machine_name:9s} baseline={base.cycles:9d} cycles "
            f"composed={opt.cycles:9d} cycles "
            f"normalized={opt.cycles / base.cycles:.3f} "
            f"(L1 miss rate {base.l1_miss_rate:.3f} -> {opt.l1_miss_rate:.3f})"
        )


if __name__ == "__main__":
    main()
