#!/usr/bin/env python
"""Section 5 of the paper, symbolically: threading M and D through a
composition of run-time reorderings at compile time.

Builds the simplified moldyn kernel IR, derives the unified iteration
space, data mappings ``M_{I->a}`` and dependences ``D_{I->I}``, then
applies CPACK, lexGroup, CPACK, lexGroup, full sparse tiling, and
tilePack — printing the transformed specifications after each stage,
exactly the derivations written out in the paper's Sections 5.1--5.4.
"""

from repro.kernels.specs import kernel_by_name
from repro.runtime import CompositionPlan
from repro.runtime.inspector import (
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
    TilePackStep,
)
from repro.uniform import ProgramState, UnifiedSpace


def main() -> None:
    kernel = kernel_by_name("moldyn")

    print("=" * 70)
    print("The unified iteration space (paper Section 3.1):")
    print(UnifiedSpace(kernel).describe())

    state = ProgramState.initial(kernel)
    print()
    print("Initial data mapping M[x] (Section 3.2):")
    print(" ", state.data_mappings["x"])
    print()
    print("Dependences through x between S1 and the j loop (Section 3.3):")
    for dep in state.dependences:
        if dep.array == "x" and dep.src_stmt == "S1" and dep.dst_stmt == "S2":
            print(" ", dep.name)
            for conj in dep.relation.conjunctions:
                print("   ", conj)

    steps = [
        CPackStep(),
        LexGroupStep(),
        CPackStep(),
        LexGroupStep(),
        FullSparseTilingStep(seed_block_size=64),
        TilePackStep(),
    ]
    plan = CompositionPlan(kernel, steps)

    print()
    print("=" * 70)
    print("Threading the composition (Sections 5.1-5.4):")
    state = ProgramState.initial(kernel)
    for index, step in enumerate(steps):
        for transformation in step.symbolic(kernel, index):
            state = state.apply(transformation)
            print()
            print(f"after {transformation.describe()}")
            print(f"  M[x] = {state.data_mappings['x']!r}"[:300])
    print()
    print(f"final unified tuples have arity {state.tuple_arity}")
    print()
    print("Legality reports (Section 4):")
    for planned in plan.planned_transformations:
        label = getattr(planned.transformation, "label", "")
        status = "proven" if planned.report.proven else "OBLIGATIONS"
        extra = (
            f" ({len(planned.report.obligations)} discharged by the "
            "dependence-inspecting inspector)"
            if planned.report.obligations
            else ""
        )
        print(f"  {label or planned.transformation!r}: {status}{extra}")


if __name__ == "__main__":
    main()
