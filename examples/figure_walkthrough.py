#!/usr/bin/env python
"""Walk through the paper's Figures 2--5 on a toy moldyn instance.

Figure 2: the original mapping from j-loop iterations to data locations.
Figure 3: the same mapping after the CPACK data reordering.
Figure 4: after CPACK followed by lexGroup.
Figure 5: the iterations of one sparse tile across the i, j, k loops.
"""

import numpy as np

from repro.kernels import make_kernel_data
from repro.kernels.datasets import Dataset
from repro.runtime.inspector import (
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
)


def show_mapping(title, left, right):
    print(title)
    for j in range(len(left)):
        print(f"  j={j}: touches x[{left[j]}], x[{right[j]}]")
    print()


def main() -> None:
    # A small interaction list with deliberately scattered endpoints,
    # in the spirit of the paper's running example.
    left = np.array([0, 4, 2, 1, 6, 3, 5, 7])
    right = np.array([4, 2, 0, 3, 5, 7, 1, 6])
    data = make_kernel_data("moldyn", Dataset("toy", 8, left, right))

    show_mapping("Figure 2: original iteration -> data mapping", left, right)

    after_cpack = ComposedInspector([CPackStep()]).run(data)
    show_mapping(
        "Figure 3: after CPACK (first-touch packing)",
        after_cpack.transformed.left,
        after_cpack.transformed.right,
    )

    after_lg = ComposedInspector([CPackStep(), LexGroupStep()]).run(data)
    show_mapping(
        "Figure 4: after CPACK + lexGroup (iterations grouped by data)",
        after_lg.transformed.left,
        after_lg.transformed.right,
    )

    tiled = ComposedInspector(
        [CPackStep(), LexGroupStep(), FullSparseTilingStep(seed_block_size=4)]
    ).run(data)
    print("Figure 5: sparse tiles across the i, j, k loops")
    loop_names = ["i", "j", "k"]
    for t, tile in enumerate(tiled.plan.schedule):
        parts = [
            f"{loop_names[l]}: {list(tile[l])}"
            for l in range(3)
            if len(tile[l])
        ]
        print(f"  tile {t}: " + "; ".join(parts))
    print()
    print(
        "Executing the highlighted tile atomically touches only",
        sorted(
            set(tiled.transformed.left[tiled.plan.schedule[0][1]])
            | set(tiled.transformed.right[tiled.plan.schedule[0][1]])
        ),
        "of the data.",
    )


if __name__ == "__main__":
    main()
