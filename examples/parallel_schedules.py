#!/usr/bin/env python
"""Section 4's parallelism transformations, end to end.

Two run-time reordering transformations for parallelism:

1. **Run-time partial parallelization** — the inspector traverses the
   dependences and levels the iterations into wavefronts; iterations of a
   wave are mutually independent (the framework maps them "to the same
   point in the unified iteration space").
2. **Inter-tile parallelism** — after full sparse tiling, the tiles
   themselves form a dependence DAG; its wavefronts are coarse-grained
   parallel units.

The example prints both schedules for moldyn and sanity-checks the
wavefront property on every dependence edge.
"""

import numpy as np

from repro.eval.compositions import fst_seed_block
from repro.cachesim.machines import machine_by_name
from repro.kernels import generate_dataset, make_kernel_data
from repro.runtime.inspector import (
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
)
from repro.transforms import tile_wavefronts, wavefront_schedule


def main() -> None:
    data = make_kernel_data("moldyn", generate_dataset("mol1", scale=64))
    print(f"moldyn on {data.dataset_name}: {data.num_nodes} nodes, "
          f"{data.num_inter} interactions")

    # 1. Iteration-level wavefronts over the cross-loop dependences
    #    (i-loop iteration u feeds every interaction touching u).
    j = np.arange(data.num_inter, dtype=np.int64)
    src = np.concatenate([data.left, data.right])
    dst = np.concatenate([j, j]) + data.num_nodes  # j iterations offset
    sched = wavefront_schedule(data.num_nodes + data.num_inter, src, dst)
    assert (sched.wave[src] < sched.wave[dst]).all()
    print(
        f"partial parallelization: {sched.num_waves} wavefronts, "
        f"max width {sched.max_parallelism}, "
        f"average parallelism {sched.average_parallelism:.0f}"
    )

    # 2. Tile-level wavefronts after sparse tiling.
    machine = machine_by_name("pentium4")
    steps = [
        CPackStep(),
        LexGroupStep(),
        FullSparseTilingStep(fst_seed_block(data, machine)),
    ]
    result = ComposedInspector(steps).run(data)
    d = result.transformed
    jj = np.concatenate([j, j])
    ends = np.concatenate([d.left, d.right])
    edges = {(0, 1): (ends, jj), (1, 2): (jj, ends)}
    tiles = tile_wavefronts(result.tiling, edges)
    print(
        f"sparse tiling: {result.tiling.num_tiles} tiles in "
        f"{tiles.num_waves} waves (avg {tiles.average_parallelism:.2f} "
        "tiles runnable concurrently)"
    )
    for w, group in enumerate(tiles.groups()[:5]):
        print(f"  wave {w}: tiles {group.tolist()}")
    if tiles.num_waves > 5:
        print(f"  ... {tiles.num_waves - 5} more waves")
    print(
        "note: locality-first tile growth on one connected mesh chains the\n"
        "tiles (each shares a boundary with the next); parallelism-oriented\n"
        "growth strategies [Strout et al., LCPC'02] trade some locality for\n"
        "independent tiles — on disconnected structure the wavefronts widen\n"
        "automatically (see tests/transforms/test_parallel.py)."
    )


if __name__ == "__main__":
    main()
