"""Tests for the specializing code generator.

The gold standard: generated inspectors must produce bit-identical
reordering functions / index arrays to the library ComposedInspector, and
generated executors must numerically match the reference executors.
"""

import numpy as np
import pytest

from repro.codegen import (
    SourceWriter,
    compile_source,
    generate_executor_source,
    generate_inspector_source,
)
from repro.kernels import make_kernel_data
from repro.kernels.datasets import Dataset
from repro.kernels.specs import kernel_by_name
from repro.runtime.executor import run_numeric
from repro.runtime.inspector import (
    CacheBlockStep,
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    GPartStep,
    LexGroupStep,
    LexSortStep,
    TilePackStep,
)


def tiny(kernel_name, n=24, m=60, seed=0):
    rng = np.random.default_rng(seed)
    ds = Dataset(
        "tiny",
        n,
        rng.integers(0, n, m).astype(np.int64),
        rng.integers(0, n, m).astype(np.int64),
    )
    return make_kernel_data(kernel_name, ds)


class TestSourceWriter:
    def test_nesting(self):
        w = SourceWriter()
        with w.block("def f():"):
            with w.block("for i in range(2):"):
                w.line("pass")
        assert w.source() == "def f():\n    for i in range(2):\n        pass\n"

    def test_dedent_guard(self):
        with pytest.raises(ValueError):
            SourceWriter().dedent()

    def test_comment(self):
        w = SourceWriter()
        w.comment("hi")
        assert w.source() == "# hi\n"


class TestCompileSource:
    def test_returns_callable(self):
        fn = compile_source("def f(x):\n    return x + 1\n", "f")
        assert fn(1) == 2
        assert "return x + 1" in fn.__generated_source__

    def test_missing_entry_point(self):
        with pytest.raises(ValueError):
            compile_source("x = 1\n", "f")


class TestGeneratedExecutors:
    @pytest.mark.parametrize("kernel_name", ["moldyn", "nbf", "irreg"])
    def test_untiled_matches_reference(self, kernel_name):
        data = tiny(kernel_name)
        kernel = kernel_by_name(kernel_name)
        src = generate_executor_source(kernel)
        fn = compile_source(src, f"{kernel_name}_executor")
        arrays = {k: v.copy() for k, v in data.arrays.items()}
        kwargs = dict(
            num_steps=2,
            num_nodes=data.num_nodes,
            num_inter=data.num_inter,
            left=data.left,
            right=data.right,
            **arrays,
        )
        fn(**kwargs)
        ref = run_numeric(data.copy(), 2)
        for k in arrays:
            assert np.allclose(arrays[k], ref.arrays[k]), k

    def test_tiled_executor_matches(self):
        data = tiny("moldyn")
        kernel = kernel_by_name("moldyn")
        steps = [CPackStep(), LexGroupStep(), FullSparseTilingStep(10), TilePackStep()]
        res = ComposedInspector(steps).run(data)
        src = generate_executor_source(kernel, tiled=True)
        fn = compile_source(src, "moldyn_executor_tiled")
        arrays = {k: v.copy() for k, v in res.transformed.arrays.items()}
        fn(
            2, data.num_inter, data.num_nodes,
            res.transformed.left, res.transformed.right,
            arrays["x"], arrays["vx"], arrays["fx"],
            schedule=res.plan.schedule,
        )
        ref = run_numeric(res.transformed.copy(), 2)
        for k in arrays:
            assert np.allclose(arrays[k], ref.arrays[k]), k

    def test_source_mentions_every_statement(self):
        kernel = kernel_by_name("moldyn")
        src = generate_executor_source(kernel)
        assert "x[i]" in src and "fx[left[j]]" in src and "vx[k]" in src

    def test_tiled_source_shape(self):
        kernel = kernel_by_name("irreg")
        src = generate_executor_source(kernel, tiled=True)
        assert "for tile in schedule" in src
        assert "tile[0]" in src and "tile[1]" in src


COMPOSITIONS = [
    [CPackStep()],
    [CPackStep(), LexGroupStep()],
    [GPartStep(8), LexGroupStep()],
    [CPackStep(), LexSortStep()],
    [CPackStep(), LexGroupStep(), CPackStep(), LexGroupStep()],
    [CPackStep(), LexGroupStep(), FullSparseTilingStep(10), TilePackStep()],
    [
        CPackStep(), LexGroupStep(), CPackStep(), LexGroupStep(),
        FullSparseTilingStep(10), TilePackStep(),
    ],
]


class TestGeneratedInspectors:
    @pytest.mark.parametrize("steps", COMPOSITIONS, ids=lambda s: "+".join(x.name for x in s))
    @pytest.mark.parametrize("kernel_name", ["moldyn", "irreg"])
    @pytest.mark.parametrize("remap", ["once", "each"])
    def test_generated_matches_library(self, kernel_name, steps, remap):
        data = tiny(kernel_name)
        kernel = kernel_by_name(kernel_name)
        src = generate_inspector_source(kernel, steps, remap=remap)
        fn = compile_source(src, f"{kernel_name}_inspector")
        out = fn(
            data.num_nodes, data.num_inter, data.left, data.right,
            {k: v.copy() for k, v in data.arrays.items()},
        )
        lib = ComposedInspector(steps, remap=remap).run(data)
        assert np.array_equal(out["sigma"], lib.sigma_nodes.array)
        assert np.array_equal(out["left"], lib.transformed.left)
        assert np.array_equal(out["right"], lib.transformed.right)
        for k in data.arrays:
            assert np.allclose(out["arrays"][k], lib.transformed.arrays[k])
        if lib.plan.schedule is None:
            assert out["schedule"] is None
        else:
            assert len(out["schedule"]) == len(lib.plan.schedule)
            for t, tile in enumerate(lib.plan.schedule):
                for l in range(len(tile)):
                    assert np.array_equal(out["schedule"][t][l], tile[l])

    def test_cache_block_generated(self):
        data = tiny("moldyn")
        kernel = kernel_by_name("moldyn")
        steps = [CPackStep(), LexGroupStep(), CacheBlockStep(8)]
        src = generate_inspector_source(kernel, steps)
        fn = compile_source(src, "moldyn_inspector")
        out = fn(
            data.num_nodes, data.num_inter, data.left, data.right,
            {k: v.copy() for k, v in data.arrays.items()},
        )
        lib = ComposedInspector(steps).run(data)
        assert len(out["schedule"]) == lib.tiling.num_tiles

    def test_invalid_remap(self):
        kernel = kernel_by_name("irreg")
        with pytest.raises(ValueError):
            generate_inspector_source(kernel, [], remap="never")

    def test_comments_note_policy(self):
        kernel = kernel_by_name("irreg")
        src_once = generate_inspector_source(kernel, [CPackStep()], remap="once")
        src_each = generate_inspector_source(kernel, [CPackStep()], remap="each")
        assert "Figure 11" in src_once
        assert "Figure 15" in src_each


class TestSpaceFillingCodegen:
    def test_generated_sfc_matches_library(self):
        from repro.kernels import generate_dataset, make_kernel_data
        from repro.runtime import SpaceFillingStep

        ds = generate_dataset("foil", scale=256)
        data = make_kernel_data("irreg", ds)
        kernel = kernel_by_name("irreg")
        steps = [CPackStep(), SpaceFillingStep(ds.coords), LexGroupStep()]
        src = generate_inspector_source(kernel, steps)
        def_line = next(l for l in src.splitlines() if l.startswith("def "))
        assert "coords" in def_line  # in the signature
        fn = compile_source(src, "irreg_inspector")
        out = fn(
            data.num_nodes, data.num_inter, data.left, data.right,
            {k: v.copy() for k, v in data.arrays.items()},
            coords=ds.coords,
        )
        lib = ComposedInspector(steps).run(data)
        assert np.array_equal(out["sigma"], lib.sigma_nodes.array)
        assert np.array_equal(out["left"], lib.transformed.left)

    def test_no_coords_param_without_sfc(self):
        kernel = kernel_by_name("irreg")
        src = generate_inspector_source(kernel, [CPackStep()])
        assert "coords" not in src
