"""The sanitizer fallback: guarded executors are bit-identical on valid
data and convert every index corruption into a typed trap.

Two contracts, both load-bearing for the verifier's assumed facts:

* on valid data the guard prologue is *observation only* — sanitized
  NumPy and C executors reproduce the unguarded build bit for bit
  (Hypothesis property over random datasets);
* every ``faults.py`` index-array corruptor either trips a typed
  :class:`~repro.errors.ExecutorBoundsError` *before any data mutation*
  (out-of-range, dropped, truncated entries) or is legal-but-weird
  (swaps, in-range clobbers) and must execute memory-safely with
  well-defined output.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ExecutorBoundsError
from repro.kernels import generate_dataset, make_kernel_data
from repro.kernels.data import make_kernel_data as _mk
from repro.kernels.datasets import Dataset
from repro.lowering import toolchain
from repro.lowering.executor import clear_executor_memo, compile_executor
from repro.runtime.executor import run_numeric, run_numeric_wavefront
from repro.runtime.faults import CORRUPTORS

pytestmark = pytest.mark.compiled

HAVE_CC = toolchain.have_toolchain()[0]
COMPILED_BACKENDS = ("numpy", "c") if HAVE_CC else ("numpy",)

KERNELS = ("moldyn", "nbf", "irreg")

#: Index-array corruptors and whether the sanitizer must trap them on the
#: shapes used below (num_nodes=16, num_inter=32: an out-of-range write
#: lands at 39, a dropped slot at -1, truncation desyncs left/right).
INDEX_FAULTS = {
    "swap-entries": "benign",
    "clobber-entry": "benign",
    "truncate-array": "trap",
    "drop-sigma-entry": "trap",
    "out-of-range-entry": "trap",
}


@pytest.fixture(autouse=True)
def _isolated_artifacts(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_EXECUTOR_SANITIZE", raising=False)
    monkeypatch.setenv("REPRO_PLANCACHE_DIR", str(tmp_path / "cache"))
    clear_executor_memo()
    yield
    clear_executor_memo()


def _random_data(kernel, num_nodes, num_inter, seed):
    rng = np.random.default_rng(seed)
    ds = Dataset(
        "hyp",
        num_nodes,
        rng.integers(0, num_nodes, num_inter).astype(np.int64),
        rng.integers(0, num_nodes, num_inter).astype(np.int64),
    )
    return _mk(kernel, ds, seed=seed + 1)


def _assert_identical(ref, got, context):
    for name in ref.arrays:
        assert np.array_equal(ref.arrays[name], got.arrays[name]), (
            context, name,
        )


def _two_tile_schedule(data):
    sizes = data.loop_sizes()
    return [
        [np.arange(0, n // 2, dtype=np.int64) for n in sizes],
        [np.arange(n // 2, n, dtype=np.int64) for n in sizes],
    ]


def test_index_faults_cover_the_registry():
    """Every reordering corruptor in faults.py has a sanitizer verdict —
    a new corruptor must be classified here before it ships."""
    registry = {
        name
        for name, fault in CORRUPTORS.items()
        if fault.corrupt_array is not None
    }
    assert registry == set(INDEX_FAULTS)


@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[
        HealthCheck.function_scoped_fixture, HealthCheck.too_slow,
    ],
)
@given(
    kernel=st.sampled_from(KERNELS),
    num_nodes=st.integers(min_value=4, max_value=80),
    num_inter=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=10_000),
    num_steps=st.integers(min_value=1, max_value=3),
)
def test_sanitized_bit_identical_on_valid_data(
    kernel, num_nodes, num_inter, seed, num_steps
):
    """The guard prologue never perturbs a valid run: sanitized output
    equals unguarded output bit for bit, on every backend."""
    base = _random_data(kernel, num_nodes, num_inter, seed)
    for backend in COMPILED_BACKENDS:
        plain = run_numeric(
            base.copy(), num_steps=num_steps, backend=backend
        )
        guarded = run_numeric(
            base.copy(), num_steps=num_steps, backend=backend, sanitize=True
        )
        _assert_identical(plain, guarded, (kernel, backend, seed))


@pytest.mark.parametrize("fault_name", sorted(INDEX_FAULTS))
@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("side", ["left", "right"])
def test_every_index_corruptor_traps_or_stays_safe(
    fault_name, backend, side
):
    fault = CORRUPTORS[fault_name]
    base = _random_data("moldyn", 16, 32, seed=11)
    rng = np.random.default_rng(7)
    corrupted = fault.corrupt_array(getattr(base, side), rng)
    setattr(base, side, corrupted)

    if INDEX_FAULTS[fault_name] == "trap":
        before = {k: v.copy() for k, v in base.arrays.items()}
        with pytest.raises(ExecutorBoundsError) as info:
            run_numeric(base, backend=backend, sanitize=True)
        assert info.value.stage == "sanitizer"
        assert info.value.array is not None
        # The guard scans before any mutation: arrays untouched.
        for k in before:
            assert np.array_equal(before[k], base.arrays[k]), k
    else:
        # Legal corruption (still a well-formed index array): must run,
        # and must agree with the library executor on the same data.
        ref = run_numeric(base.copy(), backend="library")
        got = run_numeric(base.copy(), backend=backend, sanitize=True)
        _assert_identical(ref, got, (fault_name, backend, side))


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_tiled_sanitizer_identity_and_schedule_trap(backend):
    data = make_kernel_data("moldyn", generate_dataset("mol1", scale=64))
    schedule = _two_tile_schedule(data)

    plain = run_numeric_wavefront(
        data.copy(), schedule, None, num_steps=2, backend=backend
    )
    guarded = run_numeric_wavefront(
        data.copy(), schedule, None, num_steps=2, backend=backend,
        sanitize=True,
    )
    _assert_identical(plain, guarded, (backend, "tiled"))

    # A schedule entry pointing past its loop extent must trap.
    broken = [[it.copy() for it in tile] for tile in schedule]
    broken[1][0][0] = data.num_nodes + 99
    with pytest.raises(ExecutorBoundsError) as info:
        run_numeric_wavefront(
            data.copy(), broken, None, backend=backend, sanitize=True
        )
    assert info.value.stage == "sanitizer"
    assert "schedule" in (info.value.array or "")


class _Waves:
    """Minimal stand-in for a WavefrontSchedule: just .groups()."""

    def __init__(self, groups):
        self._groups = groups

    def groups(self):
        return self._groups


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_tiled_sanitizer_wave_group_trap(backend):
    data = make_kernel_data("moldyn", generate_dataset("mol1", scale=64))
    schedule = _two_tile_schedule(data)
    bad = _Waves([np.array([0], dtype=np.int64), np.array([5], dtype=np.int64)])
    with pytest.raises(ExecutorBoundsError) as info:
        run_numeric_wavefront(
            data.copy(), schedule, bad, backend=backend, sanitize=True
        )
    assert info.value.stage == "sanitizer"


def test_sanitize_env_switch(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR_SANITIZE", "1")
    compiled = compile_executor("moldyn", backend="numpy", memo=False)
    assert compiled.sanitized
    monkeypatch.setenv("REPRO_EXECUTOR_SANITIZE", "0")
    compiled = compile_executor("moldyn", backend="numpy", memo=False)
    assert not compiled.sanitized


def test_sanitized_artifact_is_distinct():
    plain = compile_executor("moldyn", backend="numpy", memo=False)
    guarded = compile_executor(
        "moldyn", backend="numpy", memo=False, sanitize=True
    )
    assert plain.artifact_path != guarded.artifact_path
    assert guarded.sanitized and not plain.sanitized


def test_library_backend_ignores_sanitize():
    data = make_kernel_data("moldyn", generate_dataset("mol1", scale=64))
    ref = run_numeric(data.copy(), backend="library")
    got = run_numeric(data.copy(), backend="library", sanitize=True)
    _assert_identical(ref, got, "library")
