"""Generated trace executors must reproduce emit_trace's access stream."""

import numpy as np
import pytest

from repro.codegen import compile_source
from repro.codegen.trace_gen import (
    expr_to_python,
    generate_trace_executor_source,
)
from repro.kernels import make_kernel_data
from repro.kernels.datasets import Dataset
from repro.kernels.specs import kernel_by_name
from repro.presburger.terms import AffineExpr, var
from repro.runtime.executor import emit_trace
from repro.runtime.inspector import (
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
)


def tiny(kernel_name, n=20, m=50, seed=0):
    rng = np.random.default_rng(seed)
    return make_kernel_data(
        kernel_name,
        Dataset(
            "tiny", n,
            rng.integers(0, n, m).astype(np.int64),
            rng.integers(0, n, m).astype(np.int64),
        ),
    )


def reference_stream(data, plan=None, num_steps=1):
    trace = emit_trace(data, plan, num_steps=num_steps)
    names = [r.name for r in trace.regions]
    return [
        (names[rid], int(el))
        for rid, el in zip(trace.region_ids, trace.elements)
    ]


def generated_stream(kernel_name, data, tiled=False, schedule=None, num_steps=1):
    kernel = kernel_by_name(kernel_name)
    src = generate_trace_executor_source(kernel, tiled=tiled)
    fn = compile_source(src, f"{kernel_name}_trace_executor")
    touched = []

    def touch(region, element):
        touched.append((region, int(element)))

    kwargs = dict(
        num_steps=num_steps,
        num_nodes=data.num_nodes,
        num_inter=data.num_inter,
        left=data.left,
        right=data.right,
        touch=touch,
    )
    if tiled:
        kwargs["schedule"] = schedule
    fn(**kwargs)
    return touched


class TestExprToPython:
    def test_plain_var(self):
        assert expr_to_python(var("i")) == "i"

    def test_uf_call(self):
        assert expr_to_python(AffineExpr.ufs("left", var("j"))) == "left[j]"

    def test_nested_call(self):
        e = AffineExpr.ufs("sigma", AffineExpr.ufs("left", var("j")))
        assert expr_to_python(e) == "sigma[left[j]]"

    def test_affine(self):
        assert expr_to_python(var("i") + 1) == "i + 1"
        assert expr_to_python(var("i") * 2 - 3) == "2 * i - 3"

    def test_zero(self):
        from repro.presburger.terms import const

        assert expr_to_python(const(0)) == "0"


class TestGeneratedTraceExecutors:
    @pytest.mark.parametrize("kernel_name", ["moldyn", "nbf", "irreg"])
    def test_matches_emit_trace(self, kernel_name):
        data = tiny(kernel_name)
        assert generated_stream(kernel_name, data) == reference_stream(data)

    @pytest.mark.parametrize("kernel_name", ["moldyn", "irreg"])
    def test_matches_after_composition(self, kernel_name):
        data = tiny(kernel_name)
        res = ComposedInspector([CPackStep(), LexGroupStep()]).run(data)
        assert generated_stream(
            kernel_name, res.transformed
        ) == reference_stream(res.transformed)

    def test_matches_tiled(self):
        data = tiny("moldyn")
        res = ComposedInspector(
            [CPackStep(), LexGroupStep(), FullSparseTilingStep(10)]
        ).run(data)
        got = generated_stream(
            "moldyn", res.transformed, tiled=True, schedule=res.plan.schedule
        )
        assert got == reference_stream(res.transformed, res.plan)

    def test_multiple_steps(self):
        data = tiny("irreg")
        assert generated_stream("irreg", data, num_steps=3) == reference_stream(
            data, num_steps=3
        )

    def test_source_streams_interaction_records(self):
        src = generate_trace_executor_source(kernel_by_name("irreg"))
        assert "touch('inters', j)" in src
        assert "touch('nodes', left[j])" in src
        assert "touch('nodes', k)" in src
