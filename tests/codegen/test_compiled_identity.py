"""The compiled-backend identity harness: library = numpy = C, bit for bit.

Every backend of the lowering tier must reproduce the library executor's
floating-point output exactly — same operations, same order, same
rounding — across all three kernels, random datasets (Hypothesis),
the tile-wavefront executor, every example plan spec, and the
no-toolchain fallback path.  ``allclose`` is deliberately absent here:
the contract is ``array_equal``.
"""

import json
import warnings
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import BackendFallbackWarning
from repro.cachesim.machines import machine_by_name
from repro.eval.compositions import fst_seed_block
from repro.kernels import generate_dataset, make_kernel_data
from repro.kernels.data import make_kernel_data as _mk
from repro.kernels.datasets import Dataset
from repro.lowering import toolchain
from repro.lowering.executor import clear_executor_memo, compile_executor
from repro.runtime.executor import run_numeric, run_numeric_wavefront
from repro.runtime.inspector import (
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
)
from repro.runtime.planspec import load_plan_spec
from repro.transforms import tile_wavefronts

pytestmark = pytest.mark.compiled

HAVE_CC = toolchain.have_toolchain()[0]
COMPILED_BACKENDS = ("numpy", "c") if HAVE_CC else ("numpy",)
PLAN_DIR = Path(__file__).resolve().parents[2] / "examples" / "plans"

KERNELS = ("moldyn", "nbf", "irreg")


@pytest.fixture(autouse=True)
def _isolated_artifacts(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
    monkeypatch.setenv("REPRO_PLANCACHE_DIR", str(tmp_path / "cache"))
    clear_executor_memo()
    yield
    clear_executor_memo()


def _random_data(kernel, num_nodes, num_inter, seed):
    rng = np.random.default_rng(seed)
    ds = Dataset(
        "hyp",
        num_nodes,
        rng.integers(0, num_nodes, num_inter).astype(np.int64),
        rng.integers(0, num_nodes, num_inter).astype(np.int64),
    )
    return _mk(kernel, ds, seed=seed + 1)


def _assert_identical(ref, got, context):
    for name in ref.arrays:
        assert np.array_equal(ref.arrays[name], got.arrays[name]), (
            context, name,
        )


@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[
        HealthCheck.function_scoped_fixture, HealthCheck.too_slow,
    ],
)
@given(
    kernel=st.sampled_from(KERNELS),
    num_nodes=st.integers(min_value=4, max_value=80),
    num_inter=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=10_000),
    num_steps=st.integers(min_value=1, max_value=4),
)
def test_backends_bit_identical_property(
    kernel, num_nodes, num_inter, seed, num_steps
):
    """The core property: on arbitrary (even degenerate) index arrays,
    every backend reproduces the library executor bit for bit."""
    base = _random_data(kernel, num_nodes, num_inter, seed)
    ref = run_numeric(base.copy(), num_steps=num_steps, backend="library")
    for backend in COMPILED_BACKENDS:
        got = run_numeric(base.copy(), num_steps=num_steps, backend=backend)
        _assert_identical(ref, got, (kernel, backend, seed))


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_run_numeric_dispatch_identity(kernel, backend):
    base = make_kernel_data(kernel, generate_dataset("mol1", scale=96))
    ref = run_numeric(base.copy(), num_steps=3)
    got = run_numeric(base.copy(), num_steps=3, backend=backend)
    _assert_identical(ref, got, (kernel, backend))


def _tiled_case(kernel, dataset):
    machine = machine_by_name("pentium4")
    data = make_kernel_data(kernel, generate_dataset(dataset, scale=128))
    steps = [
        CPackStep(),
        LexGroupStep(),
        FullSparseTilingStep(fst_seed_block(data, machine)),
    ]
    result = ComposedInspector(steps).run(data)
    d = result.transformed
    j = np.arange(d.num_inter, dtype=np.int64)
    jj = np.concatenate([j, j])
    ends = np.concatenate([d.left, d.right])
    p_j = d.interaction_loop_position()
    edges = {}
    for pos in d.node_loop_positions():
        pair = (pos, p_j) if pos < p_j else (p_j, pos)
        edges[pair] = (ends, jj) if pos < p_j else (jj, ends)
    waves = tile_wavefronts(result.tiling, edges)
    return d, result.tiling.schedule(), waves


@pytest.mark.parametrize(
    "kernel,dataset",
    [("moldyn", "mol1"), ("irreg", "foil"), ("nbf", "foil")],
)
@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_wavefront_executor_identity(kernel, dataset, backend):
    """The tiled wave executor: same wave/phase structure, same fixed
    commit order, bit-identical across backends — with and without a
    wavefront grouping."""
    d, schedule, waves = _tiled_case(kernel, dataset)
    ref = run_numeric_wavefront(
        d.copy(), schedule, waves, num_steps=3, parallel=False
    )
    got = run_numeric_wavefront(
        d.copy(), schedule, waves, num_steps=3, backend=backend
    )
    _assert_identical(ref, got, (kernel, backend, "waves"))

    ref_serial = run_numeric_wavefront(
        d.copy(), schedule, None, num_steps=2, parallel=False
    )
    got_serial = run_numeric_wavefront(
        d.copy(), schedule, None, num_steps=2, backend=backend
    )
    _assert_identical(ref_serial, got_serial, (kernel, backend, "serial"))


@pytest.mark.parametrize(
    "spec_path", sorted(PLAN_DIR.glob("*.json")), ids=lambda p: p.stem
)
@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_every_example_plan_spec_identity(spec_path, backend):
    """Each shipped plan spec, bound and executed: the transformed data
    (remapped arrays + adjusted index arrays) produce bit-identical
    results under every backend."""
    plan = load_plan_spec(str(spec_path))
    data = make_kernel_data(
        plan.kernel.name, generate_dataset("mol1", scale=96)
    )
    bound = plan.bind(data)
    d = bound.transformed
    ref = run_numeric(d.copy(), num_steps=3)
    got = run_numeric(d.copy(), num_steps=3, backend=backend)
    _assert_identical(ref, got, (spec_path.stem, backend))


@pytest.mark.parametrize("kernel", KERNELS)
def test_no_compiler_fallback_is_bit_identical(kernel, monkeypatch):
    """Requesting the C backend on a toolchain-less machine must run the
    numpy backend — same bits, one warning, never an error."""
    from repro import backends as backends_mod

    monkeypatch.setattr(toolchain, "find_compiler", lambda: None)
    backends_mod.reset_fallback_announcements()
    base = make_kernel_data(kernel, generate_dataset("mol1", scale=64))
    ref = run_numeric(base.copy(), num_steps=2)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        got = run_numeric(base.copy(), num_steps=2, backend="c")
        run_numeric(base.copy(), num_steps=2, backend="c")  # no re-warn
    _assert_identical(ref, got, (kernel, "fallback"))
    fallback = [
        w for w in caught if issubclass(w.category, BackendFallbackWarning)
    ]
    assert len(fallback) == 1
    backends_mod.reset_fallback_announcements()


@pytest.mark.skipif(not HAVE_CC, reason="no C toolchain")
def test_warm_artifact_bind_is_bit_identical(tmp_path):
    """A .so loaded from the artifact cache behaves exactly like the one
    produced by the cold compile."""
    base = make_kernel_data("moldyn", generate_dataset("mol1", scale=64))
    cold = compile_executor(
        "moldyn", backend="c", cache_dir=tmp_path, memo=False
    )
    warm = compile_executor(
        "moldyn", backend="c", cache_dir=tmp_path, memo=False
    )
    assert not cold.from_cache and warm.from_cache
    a, b = base.copy(), base.copy()
    cold.run(a.arrays, a.left, a.right, num_steps=3)
    warm.run(b.arrays, b.left, b.right, num_steps=3)
    _assert_identical(a, b, "warm-vs-cold")
