"""Compiled dynamic-scheduler identity: library waves = numpy = C, bit for bit.

The counter-scheduled executors (``scheduler="dynamic"``) must
reproduce the level-synchronous wave executor's floating-point output
exactly — every backend, every thread count, with and without the
sanitizer, through both the ``compile_executor`` API and the
``run_numeric_wavefront`` dispatcher.  ``allclose`` is deliberately
absent: the contract is byte equality.
"""

import numpy as np
import pytest

from repro.cachesim.machines import machine_by_name
from repro.errors import LegalityError
from repro.eval.compositions import fst_seed_block
from repro.kernels import generate_dataset, make_kernel_data
from repro.lowering import toolchain
from repro.lowering.executor import clear_executor_memo, compile_executor
from repro.lowering.schedule import tile_dag, tile_dag_from_tiling
from repro.runtime.executor import run_numeric_wavefront
from repro.runtime.inspector import (
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
    dependence_edges,
)
from repro.transforms import tile_wavefronts

pytestmark = pytest.mark.compiled

HAVE_CC = toolchain.have_toolchain()[0]
COMPILED_BACKENDS = ("numpy", "c") if HAVE_CC else ("numpy",)

CASES = [("moldyn", "mol1"), ("irreg", "foil"), ("nbf", "foil")]
THREADS = (1, 2, 4)


@pytest.fixture(autouse=True)
def _isolated_artifacts(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_EXECUTOR_SCHEDULER", raising=False)
    monkeypatch.delenv("REPRO_EXECUTOR_THREADS", raising=False)
    monkeypatch.setenv("REPRO_PLANCACHE_DIR", str(tmp_path / "cache"))
    clear_executor_memo()
    yield
    clear_executor_memo()


def _tiled_case(kernel, dataset):
    """Small-seed tiling (many tiles, wide waves) + edge-derived DAG."""
    machine = machine_by_name("pentium4")
    data = make_kernel_data(kernel, generate_dataset(dataset, scale=128))
    seed = max(4, fst_seed_block(data, machine) // 8)
    steps = [CPackStep(), LexGroupStep(), FullSparseTilingStep(seed)]
    result = ComposedInspector(steps).run(data)
    d = result.transformed
    edges = dependence_edges(d)
    waves = tile_wavefronts(result.tiling, edges)
    dag = tile_dag_from_tiling(result.tiling, edges, waves=waves)
    return d, result.tiling.schedule(), waves, dag


def _reference(kernel, d, schedule, groups):
    ex = compile_executor(kernel, backend="library", tiled=True)
    ref = {k: v.copy() for k, v in d.arrays.items()}
    ex.run(ref, d.left, d.right, schedule, groups, num_steps=3)
    return ref


@pytest.mark.parametrize("kernel,dataset", CASES)
@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("sanitize", [False, True])
def test_dynamic_bit_identical_to_waves(kernel, dataset, backend, sanitize):
    d, schedule, waves, dag = _tiled_case(kernel, dataset)
    groups = waves.groups()
    ref = _reference(kernel, d, schedule, groups)
    ex = compile_executor(
        kernel,
        backend=backend,
        tiled=True,
        sanitize=sanitize,
        scheduler="dynamic",
    )
    assert ex.scheduler == "dynamic"
    for num_threads in THREADS:
        out = {k: v.copy() for k, v in d.arrays.items()}
        ex.run(
            out,
            d.left,
            d.right,
            schedule,
            groups,
            num_steps=3,
            dag=dag,
            num_threads=num_threads,
        )
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes(), (
                kernel, backend, sanitize, num_threads, name,
            )


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_dispatcher_scheduler_identity(backend):
    """run_numeric_wavefront(scheduler="dynamic") matches the wave path."""
    kernel, dataset = "moldyn", "mol1"
    d, schedule, waves, dag = _tiled_case(kernel, dataset)
    ref = run_numeric_wavefront(
        d.copy(), schedule, waves, num_steps=3, parallel=False
    )
    for num_threads in (1, 2):
        got = run_numeric_wavefront(
            d.copy(),
            schedule,
            waves,
            num_steps=3,
            backend=backend,
            scheduler="dynamic",
            dag=dag,
            num_threads=num_threads,
        )
        for name in ref.arrays:
            assert np.array_equal(ref.arrays[name], got.arrays[name]), (
                backend, num_threads, name,
            )


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_dynamic_rejects_cyclic_dag(backend):
    """IRV006 at the executor boundary: a cyclic counter graph raises
    before the compiled engine runs (it would deadlock inside)."""
    kernel, dataset = "moldyn", "mol1"
    d, schedule, waves, _ = _tiled_case(kernel, dataset)
    num_tiles = len(schedule)
    chain = np.arange(num_tiles - 1, dtype=np.int64)
    src = np.concatenate([chain, [num_tiles - 1]])
    dst = np.concatenate([chain + 1, [0]])  # back edge closes the cycle
    cyclic = tile_dag(num_tiles, src, dst)
    ex = compile_executor(
        kernel, backend=backend, tiled=True, scheduler="dynamic"
    )
    arrays = {k: v.copy() for k, v in d.arrays.items()}
    with pytest.raises(LegalityError, match="IRV006"):
        ex.run(
            arrays,
            d.left,
            d.right,
            schedule,
            waves.groups(),
            dag=cyclic,
            num_threads=2,
        )


def test_dynamic_artifacts_use_dyn_suffixes(tmp_path, monkeypatch):
    """Wave and dynamic binds are distinct artifacts — ``dyn.*``
    suffixes — so ``repro cache stats`` can report them apart."""
    monkeypatch.setenv("REPRO_PLANCACHE_DIR", str(tmp_path / "cache2"))
    clear_executor_memo()
    compile_executor("moldyn", backend="numpy", tiled=True)
    compile_executor(
        "moldyn", backend="numpy", tiled=True, scheduler="dynamic"
    )
    suffixes = sorted(
        ".".join(p.name.split(".", 1)[1:])
        for p in (tmp_path / "cache2").rglob("*.py")
    )
    assert any(s == "py" for s in suffixes)
    assert any(s == "dyn.py" for s in suffixes)
    if HAVE_CC:
        compile_executor("moldyn", backend="c", tiled=True)
        compile_executor(
            "moldyn", backend="c", tiled=True, scheduler="dynamic"
        )
        so = sorted(
            ".".join(p.name.split(".", 1)[1:])
            for p in (tmp_path / "cache2").rglob("*.so")
        )
        assert "so" in so and "dyn.so" in so


def test_untiled_executor_ignores_scheduler():
    """The dynamic scheduler is a tiled-executor concept; an untiled
    bind resolves to the wave (serial) shape regardless of the knob."""
    ex = compile_executor("moldyn", backend="numpy", scheduler="dynamic")
    assert ex.scheduler == "wave"


def test_scheduler_env_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR_SCHEDULER", "dynamic")
    clear_executor_memo()
    ex = compile_executor("moldyn", backend="numpy", tiled=True)
    assert ex.scheduler == "dynamic"
