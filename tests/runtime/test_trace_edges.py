"""Edge cases of ``emit_trace``: write flags, schedule validation,
empty tiles, and multi-step repetition."""

import numpy as np
import pytest

from repro.kernels import generate_dataset, make_kernel_data
from repro.runtime.executor import ExecutionPlan, emit_trace


@pytest.fixture(scope="module")
def moldyn_data():
    return make_kernel_data("moldyn", generate_dataset("mol1", scale=256))


@pytest.fixture(scope="module")
def nbf_data():
    return make_kernel_data("nbf", generate_dataset("foil", scale=256))


def test_mark_writes_propagates_kernel_ir_store_flags(moldyn_data):
    """Write flags follow the kernel IR: every loop containing a node
    WRITE/UPDATE marks its node-record touches; interaction records are
    read-only in all benchmarks."""
    data = moldyn_data
    trace = emit_trace(data, mark_writes=True)
    assert trace.writes is not None and len(trace.writes) == len(trace)

    n, m = data.num_nodes, data.num_inter
    # Loop 0 (x update): a node sweep of stores.
    assert trace.writes[:n].all()
    # Loop 1 (force): triples (interaction record, left node, right node)
    # — the interaction record is a load, both node touches are stores.
    inter = trace.writes[n : n + 3 * m].reshape(m, 3)
    assert not inter[:, 0].any()
    assert inter[:, 1:].all()
    # Loop 2 (velocity update): stores again.
    assert trace.writes[n + 3 * m :].all()


def test_mark_writes_default_off(moldyn_data):
    assert emit_trace(moldyn_data).writes is None


def test_mark_writes_two_loop_kernel(nbf_data):
    data = nbf_data
    trace = emit_trace(data, mark_writes=True)
    m, n = data.num_inter, data.num_nodes
    inter = trace.writes[: 3 * m].reshape(m, 3)
    assert not inter[:, 0].any()
    assert inter[:, 1:].all()
    assert trace.writes[3 * m :].all()


def test_validate_schedule_rejects_undercoverage(moldyn_data):
    data = moldyn_data
    sizes = data.loop_sizes()
    # Drop one iteration of loop 1: the schedule no longer covers it.
    tile = [
        np.arange(sizes[0], dtype=np.int64),
        np.arange(sizes[1] - 1, dtype=np.int64),
        np.arange(sizes[2], dtype=np.int64),
    ]
    plan = ExecutionPlan(schedule=[tile])
    with pytest.raises(ValueError, match=(
        rf"schedule covers {sizes[1] - 1} iterations of loop 1, "
        rf"expected {sizes[1]}"
    )):
        emit_trace(data, plan)


def test_validate_schedule_rejects_duplicates_by_count(moldyn_data):
    data = moldyn_data
    sizes = data.loop_sizes()
    doubled = np.concatenate([np.arange(sizes[0]), np.arange(sizes[0])])
    tile = [
        doubled.astype(np.int64),
        np.arange(sizes[1], dtype=np.int64),
        np.arange(sizes[2], dtype=np.int64),
    ]
    with pytest.raises(ValueError, match="schedule covers"):
        emit_trace(data, ExecutionPlan(schedule=[tile]))


def test_bad_loop_order_length_rejected(moldyn_data):
    data = moldyn_data
    orders = [None] * len(data.loops)
    orders[0] = np.arange(3, dtype=np.int64)
    with pytest.raises(ValueError, match="loop 0 order has 3 entries"):
        emit_trace(data, ExecutionPlan(loop_orders=orders))


def test_empty_tiles_match_dense_trace(moldyn_data):
    """A schedule padded with empty tiles emits exactly the dense
    (identity) trace: empty tiles contribute no accesses, in any slot."""
    data = moldyn_data
    sizes = data.loop_sizes()
    full = [np.arange(size, dtype=np.int64) for size in sizes]
    empty = [np.empty(0, dtype=np.int64) for _ in sizes]
    schedule = [empty, full, empty, empty]
    dense = emit_trace(data, ExecutionPlan.identity())
    tiled = emit_trace(data, ExecutionPlan(schedule=schedule))
    assert np.array_equal(dense.region_ids, tiled.region_ids)
    assert np.array_equal(dense.elements, tiled.elements)

    # ...and with write flags the expanded store stream matches too.
    dense_w = emit_trace(data, ExecutionPlan.identity(), mark_writes=True)
    tiled_w = emit_trace(
        data, ExecutionPlan(schedule=schedule), mark_writes=True
    )
    assert np.array_equal(dense_w.writes, tiled_w.writes)
    lines_a, writes_a = dense_w.line_sequence_with_writes(64)
    lines_b, writes_b = tiled_w.line_sequence_with_writes(64)
    assert np.array_equal(lines_a, lines_b)
    assert np.array_equal(writes_a, writes_b)


def test_num_steps_repeats_the_access_pattern(moldyn_data):
    one = emit_trace(moldyn_data, num_steps=1)
    three = emit_trace(moldyn_data, num_steps=3)
    assert len(three) == 3 * len(one)
    assert np.array_equal(three.elements[: len(one)], one.elements)
    assert np.array_equal(three.elements[len(one) : 2 * len(one)], one.elements)
