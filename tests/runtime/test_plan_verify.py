"""Integration tests: CompositionPlan (compile-time) vs inspector (run-time).

These are the tests that close the paper's loop: the symbolic plan's final
dependences, with every stage's generated reordering function bound in,
must hold concretely in the transformed execution order.
"""

import numpy as np
import pytest

from repro.kernels.specs import kernel_by_name
from repro.runtime import CompositionPlan
from repro.runtime.inspector import (
    CPackStep,
    FullSparseTilingStep,
    GPartStep,
    LexGroupStep,
    TilePackStep,
)
from repro.runtime.verify import verify_dependences, verify_numeric_equivalence
from repro.uniform.legality import LegalityError


def tiny(kernel_name, request):
    return request.getfixturevalue(f"{kernel_name}_data")


class TestPlanning:
    def test_plan_threads_state(self, moldyn_data):
        kernel = kernel_by_name("moldyn")
        plan = CompositionPlan(
            kernel, [CPackStep(), LexGroupStep(), CPackStep(), LexGroupStep()]
        )
        state = plan.plan()
        # cp0 composed with cp2 in the final mappings (paper section 5.3)
        names = set()
        for mapping in state.data_mappings.values():
            names |= mapping.uf_names()
        assert {"cp0", "cp2", "left", "right"} <= names

    def test_plan_reports_all_legal(self, moldyn_data):
        kernel = kernel_by_name("moldyn")
        plan = CompositionPlan(kernel, [CPackStep(), LexGroupStep()])
        plan.plan()
        assert all(p.report.proven for p in plan.planned_transformations)

    def test_fst_extends_arity(self):
        kernel = kernel_by_name("moldyn")
        plan = CompositionPlan(
            kernel,
            [CPackStep(), LexGroupStep(), FullSparseTilingStep(8), TilePackStep()],
        )
        state = plan.plan()
        assert state.tuple_arity == 5

    def test_default_name_from_steps(self):
        kernel = kernel_by_name("irreg")
        plan = CompositionPlan(kernel, [CPackStep(), LexGroupStep()])
        assert plan.name == "cpack+lg"

    def test_describe_mentions_every_step(self):
        kernel = kernel_by_name("moldyn")
        plan = CompositionPlan(
            kernel, [GPartStep(8), LexGroupStep(), FullSparseTilingStep(8)]
        )
        text = plan.describe()
        assert "GPartStep" in text and "FullSparseTilingStep" in text

    @pytest.mark.parametrize("kernel_name", ["moldyn", "nbf", "irreg"])
    def test_paper_compositions_plan_legally(self, kernel_name):
        kernel = kernel_by_name(kernel_name)
        plan = CompositionPlan(
            kernel,
            [
                CPackStep(), LexGroupStep(), CPackStep(), LexGroupStep(),
                FullSparseTilingStep(8), TilePackStep(),
            ],
        )
        state = plan.plan(strict=True)
        assert state.tuple_arity == 5


class TestEndToEndVerification:
    @pytest.mark.parametrize("kernel_name", ["moldyn", "irreg"])
    def test_dependences_hold_concretely(self, kernel_name, request):
        data = tiny(kernel_name, request)
        kernel = kernel_by_name(kernel_name)
        steps = [CPackStep(), LexGroupStep()]
        plan = CompositionPlan(kernel, steps)
        plan.plan()
        res = plan.build_inspector().run(data)
        checked = verify_dependences(data, res, plan, num_steps=2)
        assert checked > 0

    def test_full_composition_dependences_hold(self, moldyn_data):
        kernel = kernel_by_name("moldyn")
        steps = [
            CPackStep(), LexGroupStep(), CPackStep(), LexGroupStep(),
            FullSparseTilingStep(10), TilePackStep(),
        ]
        plan = CompositionPlan(kernel, steps)
        plan.plan()
        res = plan.build_inspector().run(moldyn_data)
        assert verify_numeric_equivalence(moldyn_data, res)
        checked = verify_dependences(moldyn_data, res, plan, num_steps=2)
        assert checked > 1000  # tiled 5-D space has many pairs

    def test_max_pairs_caps_work(self, moldyn_data):
        kernel = kernel_by_name("moldyn")
        plan = CompositionPlan(kernel, [CPackStep(), LexGroupStep()])
        plan.plan()
        res = plan.build_inspector().run(moldyn_data)
        assert verify_dependences(moldyn_data, res, plan, max_pairs=10) == 10

    def test_verify_catches_corruption(self, moldyn_data):
        """Sabotage the tiling: the dependence verifier must object."""
        kernel = kernel_by_name("moldyn")
        steps = [CPackStep(), LexGroupStep(), FullSparseTilingStep(10)]
        plan = CompositionPlan(kernel, steps)
        plan.plan()
        res = plan.build_inspector().run(moldyn_data)
        # Move one j iteration into a much later tile than its sources.
        theta = res.stage_functions["theta2"]
        theta[0][:] = res.tiling.num_tiles  # all i-loop tiles far too late
        with pytest.raises(AssertionError, match="violated"):
            verify_dependences(moldyn_data, res, plan, num_steps=1)

    def test_numeric_verify_catches_corruption(self, moldyn_data):
        kernel = kernel_by_name("moldyn")
        plan = CompositionPlan(kernel, [CPackStep()])
        plan.plan()
        res = plan.build_inspector().run(moldyn_data)
        res.transformed.left[0] = (res.transformed.left[0] + 1) % moldyn_data.num_nodes
        with pytest.raises(AssertionError, match="differs"):
            verify_numeric_equivalence(moldyn_data, res)
