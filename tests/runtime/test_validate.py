"""Bind-time validation (repro.runtime.validate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.kernels.data import make_kernel_data
from repro.kernels.datasets import Dataset
from repro.runtime.validate import (
    check_index_array,
    check_permutation,
    validate_dataset,
    validate_kernel_data,
)

from .conftest import tiny_dataset


def _clean_dataset(num_nodes=24, seed=3):
    """Random dataset with no duplicate edges or self-loops (strict-clean)."""
    rng = np.random.default_rng(seed)
    pairs = [(a, b) for a in range(num_nodes) for b in range(a + 1, num_nodes)]
    chosen = rng.choice(len(pairs), size=3 * num_nodes, replace=False)
    left = np.array([pairs[c][0] for c in chosen], dtype=np.int64)
    right = np.array([pairs[c][1] for c in chosen], dtype=np.int64)
    return Dataset("clean", num_nodes, left, right)


class TestCheckIndexArray:
    def test_clean_array_passes(self):
        assert check_index_array(np.arange(5), 5, "a") == []

    def test_out_of_range_is_fatal_with_positions(self):
        arr = np.array([0, 9, 2, -1, 4])
        findings = check_index_array(arr, 5, "left")
        (f,) = findings
        assert f.severity == "fatal" and f.check == "out-of-range"
        assert f.indices == [1, 3]

    def test_positions_capped_at_five(self):
        findings = check_index_array(np.full(20, -1), 5, "left")
        assert len(findings[0].indices) == 5

    def test_non_1d_is_fatal(self):
        findings = check_index_array(np.zeros((2, 2), dtype=int), 5, "left")
        assert findings[0].check == "bad-shape"

    def test_float_dtype_error_under_strict(self):
        findings = check_index_array(np.array([0.0, 1.0]), 2, "a", "strict")
        assert findings[0].check == "dtype-mismatch"
        assert findings[0].severity == "error"

    def test_integral_float_coerced_under_permissive(self):
        findings = check_index_array(np.array([0.0, 1.0]), 2, "a", "permissive")
        assert findings[0].severity == "warning"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError):
            check_index_array(np.arange(3), 3, "a", policy="lenient")


class TestCheckPermutation:
    def test_valid_permutation(self):
        assert check_permutation(np.array([2, 0, 1]), 3, "sigma") == []

    def test_duplicate_named(self):
        findings = check_permutation(np.array([0, 1, 1]), 3, "sigma")
        assert any(f.check == "duplicate" for f in findings)

    def test_truncated_named(self):
        findings = check_permutation(np.array([0, 1]), 3, "sigma")
        assert any(f.check == "bad-length" for f in findings)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 64))
    def test_random_permutations_always_pass(self, seed, n):
        perm = np.random.default_rng(seed).permutation(n)
        assert check_permutation(perm, n, "sigma") == []

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 64))
    def test_clobbered_permutations_always_flagged(self, seed, n):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n)
        i, j = rng.choice(n, size=2, replace=False)
        perm[i] = perm[j]
        findings = check_permutation(perm, n, "sigma")
        assert any(f.severity == "fatal" for f in findings)


class TestValidateKernelData:
    def test_clean_data_passes_strict(self):
        data = make_kernel_data("irreg", _clean_dataset())
        assert validate_kernel_data(data, policy="strict").ok

    def test_random_tiny_data_warns_but_passes_permissive(self):
        # Random endpoint sampling produces duplicate edges and self-loops.
        data = make_kernel_data("irreg", tiny_dataset())
        report = validate_kernel_data(data, policy="permissive")
        assert report.ok
        checks = {f.check for f in report.warnings}
        assert "duplicate-edges" in checks or "self-loops" in checks

    def test_strict_raises_on_warnings(self):
        data = make_kernel_data("irreg", tiny_dataset())
        report = validate_kernel_data(data, policy="strict")
        assert not report.ok
        with pytest.raises(ValidationError) as exc:
            report.raise_if_failed(stage="bind")
        assert "[stage bind]" in str(exc.value)

    def test_out_of_range_endpoint_is_fatal_everywhere(self):
        data = make_kernel_data("irreg", _clean_dataset())
        data.left[4] = data.num_nodes + 3
        for policy in ("strict", "permissive"):
            report = validate_kernel_data(data, policy=policy)
            assert not report.ok
            assert any(f.check == "out-of-range" for f in report.fatal)
            assert 4 in report.fatal[0].indices

    def test_ragged_endpoints_fatal(self):
        data = make_kernel_data("irreg", _clean_dataset())
        data.right = data.right[:-2]
        report = validate_kernel_data(data, policy="permissive")
        assert any(f.check == "ragged-endpoints" for f in report.fatal)

    def test_nonfinite_payload_warns(self):
        data = make_kernel_data("irreg", _clean_dataset())
        data.arrays["x"][7] = np.nan
        report = validate_kernel_data(data, policy="permissive")
        warning = [f for f in report.warnings if f.check == "non-finite-payload"]
        assert warning and warning[0].indices == [7]


class TestValidateDataset:
    def test_generated_datasets_are_strict_clean(self):
        from repro.kernels.datasets import generate_dataset

        report = validate_dataset(generate_dataset("foil", scale=256))
        assert report.ok

    def test_coords_length_checked(self):
        ds = _clean_dataset()
        bad = Dataset(ds.name, ds.num_nodes, ds.left, ds.right,
                      coords=np.zeros((3, 2)))
        report = validate_dataset(bad)
        assert any(f.check == "bad-length" for f in report.fatal)

    def test_empty_dataset_is_consistent_warning(self):
        empty = Dataset("empty", 0, np.empty(0, dtype=np.int64),
                        np.empty(0, dtype=np.int64))
        report = validate_dataset(empty, policy="permissive")
        assert report.ok and report.warnings
