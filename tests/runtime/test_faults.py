"""Fault-injection robustness suite (repro.runtime.faults).

The contract under test, for every corruptor in ``CORRUPTORS``:

* ``expect == "caught"`` — under ``on_stage_failure='raise'`` the pipeline
  raises a typed :class:`~repro.errors.ReproError` naming the stage; under
  ``'skip'``/``'identity'`` it completes, the fallback is recorded in the
  :class:`~repro.runtime.report.PipelineReport`, and the executor output is
  verified bit-identical to the untransformed kernel (the safety net).
* ``expect == "benign"`` — the corruption is legal (e.g. swapping two
  entries of a permutation); the pipeline must complete *without*
  degradation and still verify.

Zero silent corruptions: there is no path where a corruptor neither raises
nor ends in a verified run.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DegradedPlanWarning, ReproError
from repro.kernels.data import make_kernel_data
from repro.kernels.specs import kernel_by_name
from repro.runtime.faults import CORRUPTORS, applicable, inject
from repro.runtime.inspector import (
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
    TilePackStep,
)
from repro.runtime.plan import CompositionPlan
from repro.runtime.verify import verify_numeric_equivalence

from .conftest import tiny_dataset

pytestmark = pytest.mark.faults


def make_steps():
    return [CPackStep(), LexGroupStep(), FullSparseTilingStep(8), TilePackStep()]


def fresh_data():
    return make_kernel_data("moldyn", tiny_dataset(seed=5))


#: Every (fault, stage) combination the 4-step composition admits.
CASES = [
    (fault.name, stage)
    for fault in CORRUPTORS.values()
    for stage, step in enumerate(make_steps())
    if applicable(fault, step)
]


def run_injected(fault, stage, policy, seed=0):
    data = fresh_data()
    steps = inject(make_steps(), stage=stage, fault=fault, seed=seed)
    # No plan.plan() here: the symbolic legality threading is exercised
    # elsewhere and is independent of the injected faults; bind() alone
    # drives the run-time path under test.
    plan = CompositionPlan(
        kernel_by_name("moldyn"),
        steps,
        on_stage_failure=policy,
        validation="permissive",  # random tiny data has duplicate edges
    )
    return data, plan


@pytest.mark.parametrize("fault,stage", CASES)
class TestEveryCorruptor:
    def test_raise_policy(self, fault, stage):
        data, plan = run_injected(fault, stage, "raise")
        if CORRUPTORS[fault].expect == "caught":
            with pytest.raises(ReproError) as exc:
                plan.bind(data)
            # The typed error names the stage it was detected at.
            assert exc.value.stage is not None
        else:  # benign: must complete and verify
            result = plan.bind(data, verify=True)
            assert result.report.verified is True
            assert not result.report.degraded

    @pytest.mark.parametrize("policy", ["skip", "identity"])
    def test_permissive_policies_degrade_and_verify(self, fault, stage, policy):
        data, plan = run_injected(fault, stage, policy)
        if CORRUPTORS[fault].expect == "benign":
            result = plan.bind(data, verify=True)
            assert not result.report.degraded
            assert result.report.verified is True
            return
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = plan.bind(data)
        assert any(
            issubclass(w.category, DegradedPlanWarning) for w in caught
        )
        report = result.report
        assert report.degraded
        fallback_stages = {s.index for s in report.fallbacks}
        assert stage in fallback_stages
        expected_status = "skipped" if policy == "skip" else "identity"
        record = next(s for s in report.stages if s.index == stage)
        assert record.status == expected_status
        assert record.error_type is not None
        # bind's safety net already ran (degraded => verify); double-check
        # against a fresh copy of the data for bit-identical output.
        assert report.verified is True
        assert verify_numeric_equivalence(fresh_data(), result)


class TestInjectionHarness:
    def test_unknown_fault_rejected(self):
        with pytest.raises(ReproError, match="unknown fault"):
            inject(make_steps(), stage=0, fault="cosmic-ray")

    def test_stage_out_of_range(self):
        with pytest.raises(ReproError, match="out of range"):
            inject(make_steps(), stage=9, fault="swap-entries")

    def test_inapplicable_fault_rejected(self):
        # A tiling corruptor cannot target a data-reordering stage.
        with pytest.raises(ReproError, match="does not apply"):
            inject(make_steps(), stage=0, fault="scramble-tiling")

    def test_injection_does_not_mutate_input(self):
        steps = make_steps()
        injected = inject(steps, stage=1, fault="clobber-entry")
        assert injected is not steps
        assert injected[0] is steps[0]
        assert injected[1] is not steps[1]

    def test_corruptors_are_deterministic(self):
        from repro.runtime.faults import _swap_entries

        arr = np.arange(40)
        a = _swap_entries(arr, np.random.default_rng(9))
        b = _swap_entries(arr, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_every_fault_has_an_applicable_stage(self):
        steps = make_steps()
        for fault in CORRUPTORS.values():
            assert any(applicable(fault, s) for s in steps), fault.name


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    case=st.sampled_from(CASES),
    policy=st.sampled_from(["raise", "skip", "identity"]),
)
def test_property_no_silent_corruption(seed, case, policy):
    """For any seed, stage, and policy: a corruptor either raises a typed
    error or the pipeline completes with verified-equivalent output."""
    fault, stage = case
    data, plan = run_injected(fault, stage, policy, seed=seed)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedPlanWarning)
            result = plan.bind(data, verify=True)
    except ReproError:
        assert policy == "raise" and CORRUPTORS[fault].expect == "caught"
        return
    # Completed: the output must be proven equivalent, and any caught
    # fault must be on the record as a fallback.
    assert result.report.verified is True
    if CORRUPTORS[fault].expect == "caught":
        assert policy != "raise"
        assert any(s.index == stage for s in result.report.fallbacks)
