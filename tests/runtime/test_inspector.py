"""Unit and integration tests for the composed inspector."""

import numpy as np
import pytest

from repro.runtime.inspector import (
    BucketTilingStep,
    CacheBlockStep,
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    GPartStep,
    LexGroupStep,
    LexSortStep,
    RCMStep,
    TilePackStep,
)
from repro.runtime.verify import verify_numeric_equivalence
from repro.transforms.fst import verify_tiling


def run_composition(data, steps, remap="once"):
    return ComposedInspector(steps, remap=remap).run(data)


class TestSingleSteps:
    def test_cpack_adjusts_index_arrays(self, moldyn_data):
        res = run_composition(moldyn_data, [CPackStep()])
        sigma = res.sigma_nodes
        assert sigma.is_permutation()
        assert np.array_equal(
            res.transformed.left, sigma.remap_values(moldyn_data.left)
        )

    def test_cpack_moves_payload(self, moldyn_data):
        res = run_composition(moldyn_data, [CPackStep()])
        for name, arr in moldyn_data.arrays.items():
            moved = res.sigma_nodes.apply_to_data(arr)
            assert np.array_equal(res.transformed.arrays[name], moved)

    def test_restore_array_roundtrip(self, moldyn_data):
        res = run_composition(moldyn_data, [CPackStep(), LexGroupStep()])
        for name in moldyn_data.arrays:
            assert np.allclose(
                res.restore_array(name), moldyn_data.arrays[name]
            )

    def test_lexgroup_sorts_by_first_location(self, irreg_data):
        res = run_composition(irreg_data, [CPackStep(), LexGroupStep()])
        firsts = res.transformed.left
        assert (np.diff(firsts) >= 0).all()

    def test_node_delta_follows_data_sigma(self, moldyn_data):
        res = run_composition(moldyn_data, [CPackStep()])
        for pos in moldyn_data.node_loop_positions():
            assert np.array_equal(
                res.delta_loops[pos].array, res.sigma_nodes.array
            )

    def test_interaction_delta_tracked(self, irreg_data):
        res = run_composition(irreg_data, [LexGroupStep()])
        pos = irreg_data.interaction_loop_position()
        delta = res.delta_loops[pos]
        assert delta.is_permutation()
        # rows moved accordingly: new row delta[old] == old row
        old = irreg_data.left
        new = res.transformed.left
        assert np.array_equal(new[delta.array], old)

    @pytest.mark.parametrize(
        "step",
        [
            CPackStep(),
            GPartStep(8),
            RCMStep(),
            LexGroupStep(),
            LexSortStep(),
            BucketTilingStep(8),
        ],
    )
    def test_each_step_preserves_semantics(self, moldyn_data, step):
        res = run_composition(moldyn_data, [step])
        assert verify_numeric_equivalence(moldyn_data, res)


class TestSparseTilingSteps:
    def test_fst_produces_schedule(self, moldyn_data):
        res = run_composition(
            moldyn_data, [CPackStep(), LexGroupStep(), FullSparseTilingStep(10)]
        )
        assert res.tiling is not None
        assert res.plan.schedule is not None
        sizes = moldyn_data.loop_sizes()
        for pos, size in enumerate(sizes):
            covered = sum(len(t[pos]) for t in res.plan.schedule)
            assert covered == size

    def test_fst_tiling_legal_on_final_arrays(self, moldyn_data):
        res = run_composition(
            moldyn_data, [CPackStep(), LexGroupStep(), FullSparseTilingStep(10)]
        )
        d = res.transformed
        j = np.arange(d.num_inter)
        e01 = (np.concatenate([d.left, d.right]), np.concatenate([j, j]))
        e12 = (e01[1], e01[0])
        assert verify_tiling(res.tiling, {(0, 1): e01, (1, 2): e12})

    def test_tilepack_keeps_tiling_legal(self, moldyn_data):
        res = run_composition(
            moldyn_data,
            [CPackStep(), LexGroupStep(), FullSparseTilingStep(10), TilePackStep()],
        )
        d = res.transformed
        j = np.arange(d.num_inter)
        e01 = (np.concatenate([d.left, d.right]), np.concatenate([j, j]))
        e12 = (e01[1], e01[0])
        assert verify_tiling(res.tiling, {(0, 1): e01, (1, 2): e12})

    def test_tilepack_requires_tiling(self, moldyn_data):
        with pytest.raises(ValueError, match="requires a prior sparse tiling"):
            run_composition(moldyn_data, [TilePackStep()])

    def test_cache_block_on_moldyn(self, moldyn_data):
        res = run_composition(
            moldyn_data, [CPackStep(), LexGroupStep(), CacheBlockStep(10)]
        )
        assert res.tiling is not None
        assert verify_numeric_equivalence(moldyn_data, res)

    def test_fst_on_two_loop_kernels(self, irreg_data):
        res = run_composition(
            irreg_data, [CPackStep(), LexGroupStep(), FullSparseTilingStep(10)]
        )
        d = res.transformed
        j = np.arange(d.num_inter)
        e01 = (np.concatenate([j, j]), np.concatenate([d.left, d.right]))
        assert verify_tiling(res.tiling, {(0, 1): e01})
        assert verify_numeric_equivalence(irreg_data, res)

    def test_fst_symmetry_flag_equivalent(self, moldyn_data):
        with_sym = run_composition(
            moldyn_data,
            [CPackStep(), LexGroupStep(), FullSparseTilingStep(10, use_symmetry=True)],
        )
        without = run_composition(
            moldyn_data,
            [CPackStep(), LexGroupStep(), FullSparseTilingStep(10, use_symmetry=False)],
        )
        assert [t.tolist() for t in with_sym.tiling.tiles] == [
            t.tolist() for t in without.tiling.tiles
        ]
        assert with_sym.overhead["fst"] < without.overhead["fst"]


class TestPaperCompositions:
    """End-to-end semantics for every composition in the evaluation."""

    @pytest.mark.parametrize("kernel_fixture", ["moldyn_data", "nbf_data", "irreg_data"])
    @pytest.mark.parametrize(
        "make_steps",
        [
            lambda: [CPackStep(), LexGroupStep()],
            lambda: [GPartStep(8), LexGroupStep()],
            lambda: [CPackStep(), LexGroupStep(), CPackStep(), LexGroupStep()],
            lambda: [CPackStep(), LexGroupStep(), FullSparseTilingStep(10), TilePackStep()],
            lambda: [
                CPackStep(), LexGroupStep(), CPackStep(), LexGroupStep(),
                FullSparseTilingStep(10), TilePackStep(),
            ],
            lambda: [GPartStep(8), LexGroupStep(), FullSparseTilingStep(10), TilePackStep()],
        ],
    )
    def test_composition_preserves_semantics(
        self, kernel_fixture, make_steps, request
    ):
        data = request.getfixturevalue(kernel_fixture)
        res = run_composition(data, make_steps())
        assert verify_numeric_equivalence(data, res)


class TestRemapPolicies:
    def _steps(self):
        return [
            CPackStep(), LexGroupStep(), CPackStep(), LexGroupStep(),
            FullSparseTilingStep(10), TilePackStep(),
        ]

    def test_policies_produce_identical_executors(self, moldyn_data):
        once = run_composition(moldyn_data, self._steps(), remap="once")
        each = run_composition(moldyn_data, self._steps(), remap="each")
        assert np.array_equal(once.transformed.left, each.transformed.left)
        assert np.array_equal(once.transformed.right, each.transformed.right)
        for name in moldyn_data.arrays:
            assert np.allclose(
                once.transformed.arrays[name], each.transformed.arrays[name]
            )
        assert np.array_equal(once.sigma_nodes.array, each.sigma_nodes.array)

    def test_once_moves_payload_once(self, moldyn_data):
        once = run_composition(moldyn_data, self._steps(), remap="once")
        each = run_composition(moldyn_data, self._steps(), remap="each")
        assert once.data_moves == 1
        assert each.data_moves == 3  # cpack, cpack, tilepack

    def test_once_has_lower_overhead(self, moldyn_data):
        """Figure 16's effect: remap-once reduces inspector touches."""
        once = run_composition(moldyn_data, self._steps(), remap="once")
        each = run_composition(moldyn_data, self._steps(), remap="each")
        assert once.overhead["data_remap"] < each.overhead["data_remap"]
        assert once.total_touches < each.total_touches

    def test_single_data_reordering_same_cost(self, moldyn_data):
        steps = [CPackStep(), LexGroupStep()]
        once = run_composition(moldyn_data, steps, remap="once")
        each = run_composition(moldyn_data, steps, remap="each")
        assert once.total_touches == each.total_touches

    def test_invalid_remap_policy(self):
        with pytest.raises(ValueError):
            ComposedInspector([], remap="sometimes")

    def test_no_steps_is_identity(self, moldyn_data):
        res = run_composition(moldyn_data, [])
        assert res.data_moves == 0
        assert np.array_equal(
            res.sigma_nodes.array, np.arange(moldyn_data.num_nodes)
        )
        assert np.array_equal(res.transformed.left, moldyn_data.left)
