"""The acid test: executor order == lex order of the transformed space.

For every composition, enumerating the final symbolic iteration space
(with the generated reordering functions bound in) in lexicographic order
must reproduce, tuple for tuple, the order the run-time executor actually
visits — the paper's defining property of the unified-iteration-space
framework.
"""

import numpy as np
import pytest

from repro.kernels import make_kernel_data
from repro.kernels.datasets import Dataset
from repro.kernels.specs import kernel_by_name
from repro.runtime import CompositionPlan
from repro.runtime.inspector import (
    CPackStep,
    FullSparseTilingStep,
    GPartStep,
    LexGroupStep,
    TilePackStep,
)
from repro.runtime.symbolic_executor import (
    executor_execution_order,
    symbolic_execution_order,
    symbolic_locations_touched,
)


def tiny(kernel_name, n=10, m=16, seed=3):
    rng = np.random.default_rng(seed)
    return make_kernel_data(
        kernel_name,
        Dataset(
            "tiny", n,
            rng.integers(0, n, m).astype(np.int64),
            rng.integers(0, n, m).astype(np.int64),
        ),
    )


def run(kernel_name, steps):
    data = tiny(kernel_name)
    plan = CompositionPlan(kernel_by_name(kernel_name), steps)
    plan.plan()
    result = plan.build_inspector().run(data)
    return data, plan, result


COMPOSITIONS = [
    ("empty", lambda: []),
    ("cpack", lambda: [CPackStep()]),
    ("cpack+lg", lambda: [CPackStep(), LexGroupStep()]),
    ("gpart+lg", lambda: [GPartStep(4), LexGroupStep()]),
    (
        "cpack2x",
        lambda: [CPackStep(), LexGroupStep(), CPackStep(), LexGroupStep()],
    ),
    ("cpack+lg+fst", lambda: [CPackStep(), LexGroupStep(), FullSparseTilingStep(5)]),
    (
        "cpack+lg+fst+tp",
        lambda: [
            CPackStep(), LexGroupStep(), FullSparseTilingStep(5), TilePackStep(),
        ],
    ),
]


class TestExecutionOrderEquivalence:
    @pytest.mark.parametrize(
        "name,make_steps", COMPOSITIONS, ids=[c[0] for c in COMPOSITIONS]
    )
    @pytest.mark.parametrize("kernel_name", ["moldyn", "irreg"])
    def test_lex_order_is_executor_order(self, kernel_name, name, make_steps):
        data, plan, result = run(kernel_name, make_steps())
        symbolic = symbolic_execution_order(data, result, plan, num_steps=1)
        concrete = executor_execution_order(data, result, num_steps=1)
        assert symbolic == concrete

    def test_two_time_steps(self):
        data, plan, result = run("irreg", [CPackStep(), LexGroupStep()])
        symbolic = symbolic_execution_order(data, result, plan, num_steps=2)
        concrete = executor_execution_order(data, result, num_steps=2)
        assert symbolic == concrete


class TestSymbolicLocations:
    def test_mapping_images_match_executor_arrays(self):
        """M applied to a transformed j-loop point gives exactly the
        (adjusted) index arrays' endpoints."""
        data, plan, result = run("moldyn", [CPackStep(), LexGroupStep()])
        d = result.transformed
        p_j = 1
        for j in (0, d.num_inter - 1):
            point = (0, p_j, j, 0)
            touched = symbolic_locations_touched(data, result, plan, point)
            assert set(touched["x"]) == {(int(d.left[j]),), (int(d.right[j]),)}

    def test_node_loop_identity_mapping(self):
        data, plan, result = run("moldyn", [CPackStep()])
        touched = symbolic_locations_touched(data, result, plan, (0, 0, 3, 0))
        assert touched["x"] == [(3,)]
        assert touched["vx"] == [(3,)]

    def test_tiled_point_mapping(self):
        data, plan, result = run(
            "moldyn", [CPackStep(), LexGroupStep(), FullSparseTilingStep(5)]
        )
        # first scheduled i-loop iteration of tile 0
        tile0_i = result.plan.schedule[0][0]
        if len(tile0_i):
            x = int(tile0_i[0])
            touched = symbolic_locations_touched(
                data, result, plan, (0, 0, 0, x, 0)
            )
            assert touched["x"] == [(x,)]
