"""Failure injection: every guard in the pipeline must actually fire.

The reproduction's safety story rests on layered checks — permutation
validation at inspector boundaries, tiling verification, numeric
equivalence, concrete dependence ordering.  These tests corrupt state at
each layer and assert the corresponding check objects.
"""

import numpy as np
import pytest

from repro.kernels import make_kernel_data
from repro.kernels.datasets import Dataset
from repro.kernels.specs import kernel_by_name
from repro.runtime import CompositionPlan
from repro.runtime.executor import ExecutionPlan, emit_trace
from repro.runtime.inspector import (
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    InspectorState,
    LexGroupStep,
    Step,
)
from repro.runtime.verify import verify_dependences, verify_numeric_equivalence
from repro.transforms.base import ReorderingFunction, identity_reordering
from repro.transforms.fst import TilingFunction, verify_tiling
from repro.transforms.fst_sweeps import SweepTiling, verify_sweep_tiling


def tiny(kernel_name="moldyn", n=24, m=60, seed=0):
    rng = np.random.default_rng(seed)
    return make_kernel_data(
        kernel_name,
        Dataset(
            "tiny", n,
            rng.integers(0, n, m).astype(np.int64),
            rng.integers(0, n, m).astype(np.int64),
        ),
    )


class BrokenDataStep(Step):
    """A 'reordering' that maps two nodes to the same slot."""

    name = "broken"

    def run(self, state: InspectorState) -> None:
        n = state.data.num_nodes
        sigma = np.arange(n, dtype=np.int64)
        sigma[1] = sigma[0]  # collision
        state.apply_data_reordering(
            ReorderingFunction("broken", sigma), self.name
        )

    def symbolic(self, kernel, index):
        return []


class TestPermutationGuards:
    def test_non_bijective_data_reordering_rejected(self):
        data = tiny()
        with pytest.raises(ValueError, match="not a permutation"):
            ComposedInspector([BrokenDataStep()]).run(data)

    def test_non_bijective_iteration_reordering_rejected(self):
        data = tiny()
        inspector = ComposedInspector([])
        result = inspector.run(data)

        state = InspectorState(
            data=data.copy(),
            remap="once",
            sigma_total=identity_reordering(data.num_nodes),
            sigma_pending=identity_reordering(data.num_nodes),
            delta_total={
                pos: identity_reordering(size)
                for pos, size in enumerate(data.loop_sizes())
            },
        )
        bad = np.zeros(data.num_inter, dtype=np.int64)
        with pytest.raises(ValueError, match="not a permutation"):
            state.apply_iteration_reordering(
                data.interaction_loop_position(),
                ReorderingFunction("bad", bad),
                "bad",
            )

    def test_node_loop_iteration_reordering_rejected(self):
        """Node loops follow the data; explicit deltas are a misuse."""
        data = tiny()
        state = InspectorState(
            data=data.copy(),
            remap="once",
            sigma_total=identity_reordering(data.num_nodes),
            sigma_pending=identity_reordering(data.num_nodes),
            delta_total={
                pos: identity_reordering(size)
                for pos, size in enumerate(data.loop_sizes())
            },
        )
        with pytest.raises(ValueError, match="interaction loop"):
            state.apply_iteration_reordering(
                0, identity_reordering(data.num_nodes), "x"
            )


class TestTilingGuards:
    def test_corrupted_tiles_fail_verification(self):
        data = tiny()
        res = ComposedInspector(
            [CPackStep(), LexGroupStep(), FullSparseTilingStep(8)]
        ).run(data)
        d = res.transformed
        j = np.arange(d.num_inter)
        e01 = (np.concatenate([d.left, d.right]), np.concatenate([j, j]))
        edges = {(0, 1): e01, (1, 2): (e01[1], e01[0])}
        assert verify_tiling(res.tiling, edges)
        corrupted = TilingFunction(
            [t.copy() for t in res.tiling.tiles], res.tiling.num_tiles
        )
        corrupted.tiles[0][:] = res.tiling.num_tiles - 1  # i loop all-last
        assert not verify_tiling(corrupted, edges)

    def test_corrupted_sweep_tiles_fail_verification(self):
        from repro.transforms.fst_sweeps import CSRGraph, full_sparse_tiling_sweeps
        from repro.transforms import block_partition

        data = tiny()
        graph = CSRGraph.from_edges(data.num_nodes, data.left, data.right)
        tiling = full_sparse_tiling_sweeps(
            graph, 3, block_partition(data.num_nodes, 8)
        )
        assert verify_sweep_tiling(tiling, graph)
        bad = SweepTiling([t.copy() for t in tiling.tiles], tiling.num_tiles)
        bad.tiles[0][:] = tiling.num_tiles - 1
        assert not verify_sweep_tiling(bad, graph)


class TestExecutorGuards:
    def test_truncated_schedule_rejected(self):
        data = tiny()
        res = ComposedInspector(
            [CPackStep(), LexGroupStep(), FullSparseTilingStep(8)]
        ).run(data)
        broken = [tile[:] for tile in res.plan.schedule]
        broken[0] = [arr[:-1] if len(arr) else arr for arr in broken[0]]
        with pytest.raises(ValueError, match="schedule covers"):
            emit_trace(res.transformed, ExecutionPlan(schedule=broken))

    def test_swapped_payload_caught_numerically(self):
        data = tiny()
        plan = CompositionPlan(kernel_by_name("moldyn"), [CPackStep()])
        plan.plan()
        res = plan.build_inspector().run(data)
        a = res.transformed.arrays["x"]
        a[0], a[1] = a[1], a[0]
        with pytest.raises(AssertionError, match="differs"):
            verify_numeric_equivalence(data, res)

    def test_stale_index_array_caught_numerically(self):
        """Simulate forgetting to adjust index arrays after remapping."""
        data = tiny()
        plan = CompositionPlan(kernel_by_name("moldyn"), [CPackStep()])
        plan.plan()
        res = plan.build_inspector().run(data)
        res.transformed.left = data.left.copy()  # stale!
        with pytest.raises(AssertionError, match="differs"):
            verify_numeric_equivalence(data, res)

    def test_any_lexgroup_permutation_is_legal(self):
        """Swapping lg for a different permutation does NOT violate the
        dependences: lexGroup targets a subspace whose only internal
        dependences are reductions, so *any* permutation is legal — the
        compile-time reason it needs no dependence-inspecting inspector.
        """
        data = tiny()
        plan = CompositionPlan(
            kernel_by_name("moldyn"), [CPackStep(), LexGroupStep()]
        )
        plan.plan()
        res = plan.build_inspector().run(data)
        lg = res.stage_functions["lg1"]
        res.stage_functions["lg1"] = lg[::-1].copy()
        assert verify_dependences(data, res, plan, num_steps=1) > 0

    def test_wrong_tiling_function_caught_by_dependence_check(self):
        """theta, unlike lg, is load-bearing: corrupting it must fire."""
        data = tiny()
        plan = CompositionPlan(
            kernel_by_name("moldyn"),
            [CPackStep(), LexGroupStep(), FullSparseTilingStep(8)],
        )
        plan.plan()
        res = plan.build_inspector().run(data)
        theta = res.stage_functions["theta2"]
        theta[1][:] = 0  # every j iteration claims the first tile
        with pytest.raises(AssertionError, match="violated"):
            verify_dependences(data, res, plan, num_steps=1)
