"""The tile-wavefront numeric executor: legality and bit-identity.

Parallel execution must be *deterministic*: reduction commits apply in
ascending tile order regardless of thread timing, so a parallel run is
bit-identical to a serial one — and both agree (up to floating-point
reassociation) with the untiled reference executor.
"""

import numpy as np
import pytest

from repro.cachesim.machines import machine_by_name
from repro.eval.compositions import fst_seed_block
from repro.kernels import generate_dataset, make_kernel_data
from repro.runtime.executor import run_numeric, run_numeric_wavefront
from repro.runtime.inspector import (
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
)
from repro.transforms import tile_wavefronts


def _tiled_case(kernel: str, dataset: str):
    machine = machine_by_name("pentium4")
    data = make_kernel_data(kernel, generate_dataset(dataset, scale=128))
    steps = [
        CPackStep(),
        LexGroupStep(),
        FullSparseTilingStep(fst_seed_block(data, machine)),
    ]
    result = ComposedInspector(steps).run(data)
    d = result.transformed
    j = np.arange(d.num_inter, dtype=np.int64)
    jj = np.concatenate([j, j])
    ends = np.concatenate([d.left, d.right])
    p_j = d.interaction_loop_position()
    edges = {}
    for pos in d.node_loop_positions():
        pair = (pos, p_j) if pos < p_j else (p_j, pos)
        edges[pair] = (ends, jj) if pos < p_j else (jj, ends)
    waves = tile_wavefronts(result.tiling, edges)
    return d, result.tiling.schedule(), waves


@pytest.mark.parametrize(
    "kernel,dataset",
    [("moldyn", "mol1"), ("irreg", "foil"), ("nbf", "foil")],
)
def test_parallel_bit_identical_to_serial(kernel, dataset):
    d, schedule, waves = _tiled_case(kernel, dataset)
    serial = run_numeric_wavefront(
        d.copy(), schedule, waves, num_steps=3, parallel=False
    )
    threaded = run_numeric_wavefront(
        d.copy(), schedule, waves, num_steps=3, parallel=True, max_workers=4
    )
    for name in serial.arrays:
        assert np.array_equal(serial.arrays[name], threaded.arrays[name]), name


@pytest.mark.parametrize("kernel,dataset", [("moldyn", "mol1")])
def test_wavefront_matches_untiled_reference(kernel, dataset):
    d, schedule, waves = _tiled_case(kernel, dataset)
    tiled = run_numeric_wavefront(d.copy(), schedule, waves, num_steps=2)
    ref = run_numeric(d.copy(), num_steps=2)
    for name in tiled.arrays:
        np.testing.assert_allclose(
            tiled.arrays[name], ref.arrays[name], rtol=1e-9, atol=1e-12
        )


def test_trivial_tiling_is_exactly_the_reference():
    """One tile holding every iteration reproduces ``run_numeric``
    bit for bit (same operations over the same full index arrays)."""
    data = make_kernel_data("moldyn", generate_dataset("mol1", scale=256))
    schedule = [
        [np.arange(size, dtype=np.int64) for size in data.loop_sizes()]
    ]
    tiled = run_numeric_wavefront(data.copy(), schedule, None, num_steps=2)
    ref = run_numeric(data.copy(), num_steps=2)
    for name in tiled.arrays:
        assert np.array_equal(tiled.arrays[name], ref.arrays[name]), name


def test_schedule_shape_validation():
    data = make_kernel_data("moldyn", generate_dataset("mol1", scale=256))
    with pytest.raises(ValueError, match="must cover 3 loops"):
        run_numeric_wavefront(
            data.copy(), [[np.arange(4, dtype=np.int64)]], None
        )
