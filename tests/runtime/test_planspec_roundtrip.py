"""Plan-spec round-tripping: every shipped spec survives
``plan_from_spec -> plan_to_spec -> plan_from_spec`` with a byte-stable
canonical encoding and an unchanged plan-cache fingerprint.

The service treats plan specs as its wire format, so serialization must
be a fixed point: one round trip canonicalizes (defaults become
explicit), and every round trip after that is byte-identical.
"""

import json
import pathlib

import pytest

from repro.errors import ValidationError
from repro.plancache.fingerprint import plan_fingerprint
from repro.runtime.planspec import (
    STEP_TYPES,
    dumps_plan_spec,
    make_step,
    plan_from_spec,
    plan_to_spec,
    step_to_spec,
)

PLANS = pathlib.Path(__file__).resolve().parents[2] / "examples" / "plans"
PLAN_FILES = sorted(PLANS.glob("*.json"))


def roundtrip(spec):
    return plan_to_spec(plan_from_spec(spec))


class TestShippedPlans:
    def test_examples_exist(self):
        assert PLAN_FILES, f"no example plans found under {PLANS}"

    @pytest.mark.parametrize(
        "path", PLAN_FILES, ids=[p.stem for p in PLAN_FILES]
    )
    def test_roundtrip_reaches_byte_stable_fixed_point(self, path):
        spec = json.loads(path.read_text())
        once = roundtrip(spec)
        encoded = dumps_plan_spec(once)
        # One round trip canonicalizes; every further one is identity.
        assert dumps_plan_spec(roundtrip(once)) == encoded
        assert dumps_plan_spec(roundtrip(json.loads(encoded))) == encoded

    @pytest.mark.parametrize(
        "path", PLAN_FILES, ids=[p.stem for p in PLAN_FILES]
    )
    def test_roundtrip_preserves_the_cache_fingerprint(self, path):
        spec = json.loads(path.read_text())
        plan = plan_from_spec(spec)
        rebuilt = plan_from_spec(plan_to_spec(plan))
        assert plan_fingerprint(rebuilt) == plan_fingerprint(plan)

    @pytest.mark.parametrize(
        "path", PLAN_FILES, ids=[p.stem for p in PLAN_FILES]
    )
    def test_roundtrip_preserves_plan_settings(self, path):
        spec = json.loads(path.read_text())
        plan = plan_from_spec(spec)
        out = plan_to_spec(plan)
        assert out["kernel"] == spec["kernel"]
        assert out["name"] == spec.get("name", "")
        assert out["remap"] == spec.get("remap", "once")
        assert out["on_stage_failure"] == spec.get("on_stage_failure", "raise")
        assert out["validation"] == spec.get("validation", "strict")
        assert [s["type"] for s in out["steps"]] == [
            (s if isinstance(s, str) else s["type"]) for s in spec["steps"]
        ]


class TestEveryStepType:
    @pytest.mark.parametrize("type_name", sorted(STEP_TYPES))
    def test_default_constructed_step_roundtrips(self, type_name):
        step = make_step(type_name)
        entry = step_to_spec(step)
        assert entry["type"] == type_name
        rebuilt = step_to_spec(make_step(type_name, **{
            k: v for k, v in entry.items() if k != "type"
        }))
        assert rebuilt == entry

    @pytest.mark.parametrize("type_name", sorted(STEP_TYPES))
    def test_full_plan_with_step_fingerprints_stably(self, type_name):
        spec = {"kernel": "moldyn", "steps": [{"type": type_name}]}
        plan = plan_from_spec(spec)
        rebuilt = plan_from_spec(plan_to_spec(plan))
        assert plan_fingerprint(rebuilt) == plan_fingerprint(plan)


class TestRejections:
    def test_unserializable_step_is_typed(self):
        class Opaque:
            pass

        step = make_step("fst")
        step.callback = Opaque()  # a non-scalar parameter
        with pytest.raises(ValidationError, match="not spec-serializable"):
            step_to_spec(step)

    def test_unknown_step_class_is_typed(self):
        class NotAStep:
            pass

        with pytest.raises(ValidationError, match="no plan-spec type"):
            step_to_spec(NotAStep())

    def test_dumps_is_canonical(self):
        spec = {"kernel": "moldyn", "steps": []}
        text = dumps_plan_spec(spec)
        assert text.endswith("\n")
        assert json.loads(text) == spec
        # Key order is normalized, so dict insertion order cannot leak.
        reordered = {"steps": [], "kernel": "moldyn"}
        assert dumps_plan_spec(reordered) == text
