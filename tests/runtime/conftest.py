"""Shared fixtures: small concrete kernel instances."""

import numpy as np
import pytest

from repro.kernels.data import make_kernel_data
from repro.kernels.datasets import Dataset


def tiny_dataset(num_nodes=30, num_inter=80, seed=0, name="tiny"):
    rng = np.random.default_rng(seed)
    return Dataset(
        name,
        num_nodes,
        rng.integers(0, num_nodes, num_inter).astype(np.int64),
        rng.integers(0, num_nodes, num_inter).astype(np.int64),
    )


@pytest.fixture
def moldyn_data():
    return make_kernel_data("moldyn", tiny_dataset())


@pytest.fixture
def nbf_data():
    return make_kernel_data("nbf", tiny_dataset(seed=1))


@pytest.fixture
def irreg_data():
    return make_kernel_data("irreg", tiny_dataset(seed=2))
