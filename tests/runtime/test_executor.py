"""Unit tests for trace emission and numeric execution."""

import numpy as np
import pytest

from repro.runtime.executor import (
    INTERS_REGION,
    NODES_REGION,
    ExecutionPlan,
    emit_trace,
    run_numeric,
)


class TestTraceEmission:
    def test_trace_length_moldyn(self, moldyn_data):
        trace = emit_trace(moldyn_data, num_steps=1)
        n, m = moldyn_data.num_nodes, moldyn_data.num_inter
        # i loop: n node touches; j loop: m * (1 inter + 2 nodes); k loop: n
        assert len(trace) == n + 3 * m + n

    def test_trace_length_two_steps(self, irreg_data):
        one = emit_trace(irreg_data, num_steps=1)
        two = emit_trace(irreg_data, num_steps=2)
        assert len(two) == 2 * len(one)

    def test_trace_regions(self, moldyn_data):
        trace = emit_trace(moldyn_data)
        names = [r.name for r in trace.regions]
        assert names == [NODES_REGION, INTERS_REGION]
        assert trace.regions[0].record_bytes == 72  # moldyn payload
        assert trace.regions[1].record_bytes == 8

    def test_j_loop_interleaving(self, irreg_data):
        """Pattern inside the j loop: inter record, left node, right node."""
        trace = emit_trace(irreg_data)
        m = irreg_data.num_inter
        rids = trace.region_ids[: 3 * m]
        elems = trace.elements[: 3 * m]
        inter_rid = [r.name for r in trace.regions].index(INTERS_REGION)
        assert (rids[0::3] == inter_rid).all()
        node_rid = [r.name for r in trace.regions].index(NODES_REGION)
        assert (rids[1::3] == node_rid).all()
        assert np.array_equal(elems[1::3], irreg_data.left)
        assert np.array_equal(elems[2::3], irreg_data.right)

    def test_loop_order_override(self, irreg_data):
        order = np.arange(irreg_data.num_inter)[::-1].copy()
        plan = ExecutionPlan(loop_orders=[order, None])
        trace = emit_trace(irreg_data, plan)
        assert np.array_equal(trace.elements[0::3][: len(order)], order)

    def test_loop_order_length_check(self, irreg_data):
        plan = ExecutionPlan(loop_orders=[np.arange(3), None])
        with pytest.raises(ValueError):
            emit_trace(irreg_data, plan)

    def test_schedule_covers_all_iterations(self, moldyn_data):
        n, m = moldyn_data.num_nodes, moldyn_data.num_inter
        half_n, half_m = n // 2, m // 2
        schedule = [
            [np.arange(half_n), np.arange(half_m), np.arange(half_n)],
            [np.arange(half_n, n), np.arange(half_m, m), np.arange(half_n, n)],
        ]
        plan = ExecutionPlan(schedule=schedule)
        trace = emit_trace(moldyn_data, plan)
        assert len(trace) == n + 3 * m + n

    def test_incomplete_schedule_rejected(self, moldyn_data):
        schedule = [[np.arange(1), np.arange(1), np.arange(1)]]
        with pytest.raises(ValueError, match="schedule covers"):
            emit_trace(moldyn_data, ExecutionPlan(schedule=schedule))

    def test_total_bytes_counts_regions(self, moldyn_data):
        trace = emit_trace(moldyn_data)
        expected = (
            moldyn_data.num_nodes * 72 + moldyn_data.num_inter * 8
        )
        assert trace.total_bytes() == expected


class TestLineExpansion:
    def test_spanning_records_touch_two_lines(self, moldyn_data):
        """A 72-byte record usually spans two 64-byte lines."""
        trace = emit_trace(moldyn_data)
        lines64 = trace.line_sequence(64)
        lines128 = trace.line_sequence(128)
        assert len(lines64) > len(trace)  # expansion happened
        assert len(lines64) > len(lines128)

    def test_line_sequence_monotone_within_record(self, irreg_data):
        trace = emit_trace(irreg_data)
        lines = trace.line_sequence(64)
        assert len(lines) >= len(trace)

    def test_bad_line_size(self, irreg_data):
        trace = emit_trace(irreg_data)
        with pytest.raises(ValueError):
            trace.line_sequence(96)


class TestNumericExecution:
    @pytest.mark.parametrize("fixture", ["moldyn_data", "nbf_data", "irreg_data"])
    def test_runs_and_changes_state(self, fixture, request):
        data = request.getfixturevalue(fixture)
        before = {k: v.copy() for k, v in data.arrays.items()}
        run_numeric(data, num_steps=1)
        changed = any(
            not np.array_equal(before[k], data.arrays[k]) for k in before
        )
        assert changed

    def test_deterministic(self, moldyn_data):
        a = run_numeric(moldyn_data.copy(), 3)
        b = run_numeric(moldyn_data.copy(), 3)
        for k in a.arrays:
            assert np.array_equal(a.arrays[k], b.arrays[k])
