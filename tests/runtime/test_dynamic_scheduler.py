"""The dependence-counter scheduler's contracts.

Three layers of guarantee, each tested directly:

* **bit identity** (property-based) — on random kernel instances, the
  dynamic executor produces byte-for-byte the level-synchronous wave
  executor's arrays at every thread count;
* **engine protocol** — commits run serially in ``dag.order``, each
  tile's stages run in gather → commit → post order, and no tile
  gathers before every DAG predecessor posted;
* **the IRV006 gate** — cyclic or mis-counted counter graphs are named
  by the verifier and refused by the engine instead of deadlocking.
"""

import dataclasses
import threading

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis import irverify as iv
from repro.errors import LegalityError
from repro.kernels import make_kernel_data
from repro.kernels.datasets import Dataset
from repro.lowering import schedule as sched
from repro.lowering.executor import compile_executor
from repro.lowering.schedule import (
    TileDAG,
    ensure_runnable,
    run_dynamic,
    static_levels,
    tile_dag,
    tile_dag_from_tiling,
    tile_dag_from_waves,
)
from repro.runtime.inspector import (
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
    dependence_edges,
)
from repro.transforms import tile_wavefronts

KERNELS = ("moldyn", "irreg", "nbf")


def _tiled(data, seed_block):
    """Tile a kernel instance and derive the edge-accurate counter DAG."""
    steps = [CPackStep(), LexGroupStep(), FullSparseTilingStep(seed_block)]
    result = ComposedInspector(steps).run(data)
    d = result.transformed
    edges = dependence_edges(d)
    waves = tile_wavefronts(result.tiling, edges)
    dag = tile_dag_from_tiling(result.tiling, edges, waves=waves)
    return d, result.tiling.schedule(), waves, dag


@st.composite
def kernel_instances(draw):
    kernel_name = draw(st.sampled_from(KERNELS))
    n = draw(st.integers(8, 48))
    m = draw(st.integers(4, 96))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    ds = Dataset(
        "prop", n,
        rng.integers(0, n, m).astype(np.int64),
        rng.integers(0, n, m).astype(np.int64),
    )
    return make_kernel_data(kernel_name, ds)


class TestBitIdentity:
    @settings(max_examples=30, deadline=None)
    @given(
        data=kernel_instances(),
        seed_block=st.integers(2, 10),
        num_threads=st.sampled_from([1, 2, 4]),
    )
    def test_dynamic_matches_level_sync(self, data, seed_block, num_threads):
        d, schedule, waves, dag = _tiled(data, seed_block)
        groups = waves.groups()
        wave_ex = compile_executor(
            data.kernel_name, backend="library", tiled=True
        )
        dyn_ex = compile_executor(
            data.kernel_name,
            backend="library",
            tiled=True,
            scheduler="dynamic",
        )
        ref = {k: v.copy() for k, v in d.arrays.items()}
        wave_ex.run(ref, d.left, d.right, schedule, groups, num_steps=3)
        out = {k: v.copy() for k, v in d.arrays.items()}
        dyn_ex.run(
            out,
            d.left,
            d.right,
            schedule,
            groups,
            num_steps=3,
            dag=dag,
            num_threads=num_threads,
        )
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes(), (
                f"{data.kernel_name}/{name} diverged at "
                f"{num_threads} thread(s)"
            )

    @settings(max_examples=10, deadline=None)
    @given(data=kernel_instances(), num_threads=st.sampled_from([2, 4]))
    def test_barrier_dag_fallback_matches(self, data, num_threads):
        """Without real edges the engine runs the conservative
        wave-barrier DAG — still bit-identical."""
        d, schedule, waves, _ = _tiled(data, 4)
        groups = waves.groups()
        wave_ex = compile_executor(
            data.kernel_name, backend="library", tiled=True
        )
        dyn_ex = compile_executor(
            data.kernel_name,
            backend="library",
            tiled=True,
            scheduler="dynamic",
        )
        ref = {k: v.copy() for k, v in d.arrays.items()}
        wave_ex.run(ref, d.left, d.right, schedule, groups, num_steps=2)
        out = {k: v.copy() for k, v in d.arrays.items()}
        dyn_ex.run(  # dag=None: derived from the wave groups
            out,
            d.left,
            d.right,
            schedule,
            groups,
            num_steps=2,
            num_threads=num_threads,
        )
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes(), name


def _record_run(dag, num_threads, num_steps=1):
    """Run the engine with recording stages; returns the event log."""
    events = []
    lock = threading.Lock()

    def stage(name):
        def record(tile):
            with lock:
                events.append((name, tile))

        return record

    run_dynamic(
        dag,
        stage("gather"),
        stage("commit"),
        stage("post"),
        num_threads=num_threads,
        num_steps=num_steps,
    )
    return events


def _random_dag(rng, num_tiles=24, num_edges=40):
    """A random acyclic tile graph (edges point id-upward)."""
    src = rng.integers(0, num_tiles - 1, num_edges).astype(np.int64)
    width = num_tiles - 1 - src
    dst = src + 1 + (rng.integers(0, 1 << 30, num_edges) % width)
    return tile_dag(num_tiles, src, dst.astype(np.int64))


class TestEngineProtocol:
    @pytest.mark.parametrize("num_threads", [2, 4])
    def test_commits_replay_order_exactly(self, num_threads):
        rng = np.random.default_rng(7)
        dag = _random_dag(rng)
        steps = 3
        events = _record_run(dag, num_threads, num_steps=steps)
        commits = [t for name, t in events if name == "commit"]
        assert commits == list(dag.order) * steps

    @pytest.mark.parametrize("num_threads", [1, 2, 4])
    def test_stage_order_and_dependences(self, num_threads):
        rng = np.random.default_rng(11)
        dag = _random_dag(rng)
        events = _record_run(dag, num_threads)
        when = {}
        for i, (name, tile) in enumerate(events):
            when[(name, tile)] = i
        for t in range(dag.num_tiles):
            assert (
                when[("gather", t)]
                < when[("commit", t)]
                < when[("post", t)]
            )
        for u in range(dag.num_tiles):
            for v in dag.successors(u):
                assert when[("post", u)] < when[("gather", int(v))], (
                    f"tile {v} gathered before predecessor {u} posted"
                )

    def test_every_stage_runs_exactly_once_per_step(self):
        rng = np.random.default_rng(13)
        dag = _random_dag(rng)
        events = _record_run(dag, 4, num_steps=2)
        assert len(events) == 3 * dag.num_tiles * 2
        for name in ("gather", "commit", "post"):
            tiles = sorted(t for n, t in events if n == name)
            assert tiles == sorted(list(range(dag.num_tiles)) * 2)


@pytest.fixture
def cyclic_dag():
    """A deliberately cyclic counter graph (0 -> 1 -> 2 -> 0)."""
    dag = tile_dag(3, np.array([0, 1, 2]), np.array([1, 2, 0]))
    assert dag.wave is None  # the constructor records that leveling failed
    return dag


class TestIRV006Gate:
    def test_verifier_names_the_cycle(self, cyclic_dag):
        diags = iv.verify_counter_dag(cyclic_dag)
        assert diags, "cyclic counter graph passed the verifier"
        assert all(d.code == iv.IRV_COUNTER_DAG == "IRV006" for d in diags)
        assert any("cyclic" in d.message for d in diags)

    def test_engine_refuses_to_run_it(self, cyclic_dag):
        with pytest.raises(LegalityError, match="IRV006"):
            run_dynamic(
                cyclic_dag, lambda t: None, lambda t: None, lambda t: None,
                num_threads=2,
            )

    def test_static_levels_refuses_it(self, cyclic_dag):
        bare = dataclasses.replace(cyclic_dag, wave=None)
        with pytest.raises(LegalityError, match="cyclic"):
            static_levels(bare)

    def test_miscounted_indegree_is_flagged(self):
        good = tile_dag(3, np.array([0, 1]), np.array([1, 2]))
        under = dataclasses.replace(
            good, indegree=np.array([0, 0, 1], dtype=np.int64)
        )
        over = dataclasses.replace(
            good, indegree=np.array([0, 2, 1], dtype=np.int64)
        )
        assert any(
            "under-counted" in d.message
            for d in iv.verify_counter_dag(under)
        )
        assert any(
            "over-counted" in d.message for d in iv.verify_counter_dag(over)
        )
        with pytest.raises(LegalityError):
            ensure_runnable(under)

    def test_bad_commit_order_is_flagged(self):
        good = tile_dag(3, np.array([0, 1]), np.array([1, 2]))
        scrambled = dataclasses.replace(
            good, order=np.array([2, 1, 0], dtype=np.int64)
        )
        assert any(
            "commit order violates" in d.message
            for d in iv.verify_counter_dag(scrambled)
        )


class TestDagHelpers:
    def test_ensure_runnable_memoizes_per_instance(self, monkeypatch):
        dag = tile_dag(4, np.array([0, 1]), np.array([1, 2]))
        calls = {"n": 0}
        real = iv.verify_counter_dag

        def counting(d):
            calls["n"] += 1
            return real(d)

        monkeypatch.setattr(iv, "verify_counter_dag", counting)
        ensure_runnable(dag)
        ensure_runnable(dag)
        assert calls["n"] == 1

    def test_static_levels_recomputes_missing_waves(self):
        rng = np.random.default_rng(3)
        dag = _random_dag(rng)
        bare = dataclasses.replace(dag, wave=None)
        assert np.array_equal(static_levels(bare), dag.wave)

    def test_barrier_dag_shape(self):
        groups = [np.array([0, 2]), np.array([1, 3])]
        dag = tile_dag_from_waves(groups, 4)
        # Every wave-1 tile depends on every wave-0 tile.
        assert np.array_equal(dag.indegree, [0, 2, 0, 2])
        assert dag.num_edges == 4
        assert list(dag.order) == [0, 2, 1, 3]
        assert np.array_equal(dag.wave, [0, 1, 0, 1])

    def test_empty_dag_runs(self):
        dag = tile_dag_from_waves([], 0)
        run_dynamic(
            dag, lambda t: None, lambda t: None, lambda t: None,
            num_threads=4,
        )

    def test_scheduler_report_shape(self):
        report = sched.scheduler_report()
        assert report["scheduler"] in sched.EXECUTOR_SCHEDULERS
        assert report["threads"] >= 1
        assert report["env"] == sched.SCHEDULER_ENV
