"""Property-based tests: random compositions on random instances.

The central soundness property of the whole system: **any** composition
of reordering steps, on **any** kernel instance, under **either** remap
policy, produces a transformed executor that computes the baseline's
results.  hypothesis drives the search for counterexamples.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.kernels import make_kernel_data
from repro.kernels.datasets import Dataset
from repro.runtime.inspector import (
    BucketTilingStep,
    CacheBlockStep,
    ComposedInspector,
    CPackStep,
    FullSparseTilingStep,
    GPartStep,
    LexGroupStep,
    LexSortStep,
    RCMStep,
    TilePackStep,
)
from repro.runtime.verify import verify_numeric_equivalence
from repro.transforms.fst import verify_tiling


@st.composite
def kernel_instances(draw):
    kernel_name = draw(st.sampled_from(["moldyn", "nbf", "irreg"]))
    n = draw(st.integers(4, 40))
    m = draw(st.integers(2, 80))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    ds = Dataset(
        "prop", n,
        rng.integers(0, n, m).astype(np.int64),
        rng.integers(0, n, m).astype(np.int64),
    )
    return make_kernel_data(kernel_name, ds)


_STEP_MAKERS = [
    lambda r: CPackStep(),
    lambda r: GPartStep(r.draw(st.integers(1, 16))),
    lambda r: RCMStep(),
    lambda r: LexGroupStep(),
    lambda r: LexSortStep(),
    lambda r: BucketTilingStep(r.draw(st.integers(1, 16))),
]


@st.composite
def step_lists(draw, with_tiling=False):
    class _R:
        def draw(self, strategy):
            return draw(strategy)

    r = _R()
    count = draw(st.integers(0, 4))
    steps = [
        draw(st.sampled_from(_STEP_MAKERS))(r) for _ in range(count)
    ]
    if with_tiling:
        steps.append(FullSparseTilingStep(draw(st.integers(1, 20))))
        if draw(st.booleans()):
            steps.append(TilePackStep())
    return steps


class TestRandomCompositions:
    @given(kernel_instances(), step_lists(), st.sampled_from(["once", "each"]))
    @settings(max_examples=60, deadline=None)
    def test_untiled_compositions_preserve_semantics(self, data, steps, remap):
        result = ComposedInspector(steps, remap=remap).run(data)
        assert result.sigma_nodes.is_permutation()
        assert verify_numeric_equivalence(data, result, num_steps=2)

    @given(kernel_instances(), step_lists(with_tiling=True),
           st.sampled_from(["once", "each"]))
    @settings(max_examples=40, deadline=None)
    def test_tiled_compositions_preserve_semantics(self, data, steps, remap):
        result = ComposedInspector(steps, remap=remap).run(data)
        assert result.tiling is not None
        assert verify_numeric_equivalence(data, result, num_steps=2)
        # the final tiling is legal against the final index arrays
        d = result.transformed
        j = np.arange(d.num_inter)
        p_j = d.interaction_loop_position()
        ends = np.concatenate([d.left, d.right])
        jj = np.concatenate([j, j])
        edges = {}
        for pos in d.node_loop_positions():
            pair = (pos, p_j) if pos < p_j else (p_j, pos)
            edges[pair] = (ends, jj) if pos < p_j else (jj, ends)
        assert verify_tiling(result.tiling, edges)

    @given(kernel_instances(), step_lists())
    @settings(max_examples=30, deadline=None)
    def test_remap_policies_agree(self, data, steps):
        once = ComposedInspector(steps, remap="once").run(data)
        each = ComposedInspector(steps, remap="each").run(data)
        assert np.array_equal(once.sigma_nodes.array, each.sigma_nodes.array)
        assert np.array_equal(once.transformed.left, each.transformed.left)
        for name in data.arrays:
            assert np.allclose(
                once.transformed.arrays[name], each.transformed.arrays[name]
            )

    @given(kernel_instances(), step_lists(with_tiling=True))
    @settings(max_examples=25, deadline=None)
    def test_schedule_is_a_partition(self, data, steps):
        result = ComposedInspector(steps).run(data)
        sizes = data.loop_sizes()
        for pos, size in enumerate(sizes):
            seen = np.concatenate(
                [tile[pos] for tile in result.plan.schedule]
            )
            assert sorted(seen.tolist()) == list(range(size))

    @given(kernel_instances(), step_lists())
    @settings(max_examples=30, deadline=None)
    def test_index_arrays_stay_consistent(self, data, steps):
        """sigma(left_0 reordered by deltas) == left_final, always."""
        result = ComposedInspector(steps).run(data)
        p_j = data.interaction_loop_position()
        delta = result.delta_loops[p_j]
        expected = result.sigma_nodes.remap_values(data.left)[
            delta.inverse_array
        ]
        assert np.array_equal(result.transformed.left, expected)
