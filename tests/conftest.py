"""Suite-wide configuration: deterministic property-based testing.

Hypothesis is derandomized so `pytest tests/` is bit-reproducible across
runs and machines (the property tests still explore their full example
budget — only the seed is fixed).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
