"""The parallel grid runner: determinism, fallback, and health probes.

The contract is byte-level: a parallel grid must render to exactly the
same report text as a serial one (same rows, same order, same values),
and any pool-level failure must degrade to the serial path rather than
failing the experiment.
"""

import numpy as np
import pytest

from repro.eval import parallel as par
from repro.eval.experiments import run_grid
from repro.eval.parallel import (
    default_jobs,
    grid_tasks,
    run_grid_parallel,
    worker_pool_health,
)
from repro.eval.report import format_grid, rows_to_csv

SCALE = 128  # small inputs: the grid is about orchestration, not size
COMPOSITIONS = ("cpack", "gpart")
KERNELS = ("moldyn", "irreg")


@pytest.fixture(scope="module")
def serial_rows():
    return run_grid(
        "power3", COMPOSITIONS, scale=SCALE, kernels=KERNELS
    )


def test_parallel_rows_byte_identical_to_serial(serial_rows):
    rows = run_grid_parallel(
        "power3", COMPOSITIONS, scale=SCALE, kernels=KERNELS, jobs=2
    )
    assert format_grid(rows) == format_grid(serial_rows)
    columns = ["kernel", "dataset", "composition", "executor_cycles"]
    assert rows_to_csv(rows, columns) == rows_to_csv(serial_rows, columns)


def test_run_grid_jobs_dispatches_to_parallel(serial_rows):
    rows = run_grid(
        "power3", COMPOSITIONS, scale=SCALE, kernels=KERNELS, jobs=2
    )
    assert format_grid(rows) == format_grid(serial_rows)


def test_grid_tasks_match_serial_order(serial_rows):
    tasks = grid_tasks("power3", COMPOSITIONS, SCALE, kernels=KERNELS)
    assert [(t[0], t[1], t[3]) for t in tasks] == [
        (r.kernel, r.dataset, r.composition) for r in serial_rows
    ]


def test_broken_pool_degrades_to_serial(serial_rows, monkeypatch):
    from concurrent.futures.process import BrokenProcessPool

    def _boom(tasks, jobs, backend, chunksize=1):
        raise BrokenProcessPool("worker died")

    monkeypatch.setattr(par, "_run_pool", _boom)
    with pytest.warns(RuntimeWarning, match="degraded to serial"):
        rows = run_grid_parallel(
            "power3", COMPOSITIONS, scale=SCALE, kernels=KERNELS, jobs=2
        )
    assert format_grid(rows) == format_grid(serial_rows)


def test_jobs_one_never_spawns_a_pool(serial_rows, monkeypatch):
    def _boom(*_args):
        raise AssertionError("pool must not be created for jobs=1")

    monkeypatch.setattr(par, "_run_pool", _boom)
    rows = run_grid_parallel(
        "power3", COMPOSITIONS, scale=SCALE, kernels=KERNELS, jobs=1
    )
    assert format_grid(rows) == format_grid(serial_rows)


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_worker_pool_health_probe():
    ok, message = worker_pool_health(jobs=2)
    # On a healthy box this passes; in a sandbox without pools the probe
    # must *report*, not raise.
    assert isinstance(ok, bool) and message


def test_worker_initializer_installs_plan_cache():
    from repro.eval import experiments

    assert experiments._PLAN_CACHE is None
    try:
        par._init_worker("vectorized")
        assert experiments._PLAN_CACHE is not None
        assert experiments._PLAN_CACHE.disk is None  # memory tier only
    finally:
        experiments.set_plan_cache(None)
