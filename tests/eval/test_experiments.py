"""Tests for the experiment harness (small scale to stay fast)."""

import pytest

from repro.cachesim.machines import machine_by_name
from repro.eval.compositions import (
    COMPOSITIONS,
    composition_steps,
    fst_seed_block,
    gpart_partition_size,
)
from repro.eval.experiments import BENCHMARK_DATASETS, run_cell, run_grid
from repro.eval.figures import table1
from repro.eval.report import format_grid, format_rows
from repro.kernels import generate_dataset, make_kernel_data

SCALE = 256  # tiny instances for unit tests


@pytest.fixture(scope="module")
def p4():
    return machine_by_name("pentium4")


@pytest.fixture(scope="module")
def moldyn_small():
    return make_kernel_data("moldyn", generate_dataset("mol1", scale=SCALE))


class TestCompositionCatalogue:
    def test_all_paper_compositions_present(self):
        assert set(COMPOSITIONS) == {
            "baseline",
            "cpack",
            "gpart",
            "cpack2x",
            "cpack+fst",
            "gpart+fst",
            "cpack2x+fst",
        }

    def test_unknown_composition(self, moldyn_small, p4):
        with pytest.raises(KeyError):
            composition_steps("loop-fusion", moldyn_small, p4)

    def test_baseline_is_empty(self, moldyn_small, p4):
        assert composition_steps("baseline", moldyn_small, p4) == []

    def test_fst_compositions_end_with_tilepack(self, moldyn_small, p4):
        steps = composition_steps("cpack2x+fst", moldyn_small, p4)
        assert type(steps[-1]).__name__ == "TilePackStep"
        assert type(steps[-2]).__name__ == "FullSparseTilingStep"

    def test_gpart_partition_targets_l1(self, moldyn_small, p4):
        size = gpart_partition_size(moldyn_small, p4)
        assert size * moldyn_small.node_record_bytes <= p4.l1.size_bytes
        assert size >= 8

    def test_fst_seed_accounts_for_interaction_stream(self, moldyn_small, p4):
        block = fst_seed_block(moldyn_small, p4, fraction=0.5)
        nodes = block * moldyn_small.num_nodes / moldyn_small.num_inter
        working_set = (
            nodes * moldyn_small.node_record_bytes
            + block * moldyn_small.inter_record_bytes
        )
        assert working_set <= 0.6 * p4.l1.size_bytes


class TestRunCell:
    def test_baseline_normalizes_to_one(self):
        cell = run_cell("irreg", "foil", "pentium4", "baseline", scale=SCALE)
        assert cell.normalized_time == 1.0
        assert cell.inspector_touches == 0

    def test_composition_beats_baseline(self):
        cell = run_cell("irreg", "foil", "pentium4", "gpart", scale=SCALE)
        assert cell.normalized_time < 1.0
        assert cell.inspector_touches > 0
        assert cell.amortization_steps < float("inf")

    def test_remap_policies_same_executor_cost(self):
        once = run_cell(
            "moldyn", "mol1", "pentium4", "cpack2x+fst", scale=SCALE, remap="once"
        )
        each = run_cell(
            "moldyn", "mol1", "pentium4", "cpack2x+fst", scale=SCALE, remap="each"
        )
        assert once.executor_cycles == each.executor_cycles
        assert once.inspector_touches < each.inspector_touches

    def test_amortization_inf_when_no_savings(self):
        from repro.eval.experiments import CellResult

        cell = CellResult(
            kernel="k", dataset="d", machine="m", composition="c",
            executor_cycles=100, baseline_cycles=100, l1_miss_rate=0.0,
            inspector_touches=10, inspector_cycles=60.0, data_moves=1,
            footprint_bytes=0,
        )
        assert cell.amortization_steps == float("inf")

    def test_grid_covers_all_pairs(self):
        rows = run_grid("pentium4", ("cpack",), scale=SCALE)
        pairs = {(r.kernel, r.dataset) for r in rows}
        expected = {
            (k, d) for k, ds in BENCHMARK_DATASETS.items() for d in ds
        }
        assert pairs == expected

    def test_grid_kernel_filter(self):
        rows = run_grid("pentium4", ("cpack",), scale=SCALE, kernels=("irreg",))
        assert {r.kernel for r in rows} == {"irreg"}


class TestReporting:
    def test_table1_rows(self):
        rows = table1(scale=SCALE)
        assert {r.name for r in rows} == {"mol1", "mol2", "foil", "auto"}
        text = format_rows(
            rows, ["name", "nodes", "edges", "edges_per_node"], "T1"
        )
        assert "mol1" in text and "T1" in text

    def test_format_grid_pivots(self):
        rows = run_grid("pentium4", ("cpack", "gpart"), scale=SCALE, kernels=("irreg",))
        text = format_grid(rows, title="demo")
        assert "irreg/foil" in text
        assert "cpack" in text and "gpart" in text

    def test_format_rows_handles_inf(self):
        from repro.eval.experiments import CellResult

        cell = CellResult(
            kernel="k", dataset="d", machine="m", composition="c",
            executor_cycles=100, baseline_cycles=100, l1_miss_rate=0.0,
            inspector_touches=0, inspector_cycles=0.0, data_moves=0,
            footprint_bytes=0,
        )
        text = format_rows([cell], ["composition", "amortization_steps"])
        assert "inf" in text


class TestFigureShapes:
    """The qualitative claims of the paper, at test scale."""

    @pytest.fixture(scope="class")
    def p4_grid(self):
        return run_grid(
            "pentium4",
            ("cpack", "gpart", "cpack+fst", "gpart+fst"),
            scale=SCALE,
        )

    def test_every_composition_beats_baseline(self, p4_grid):
        for row in p4_grid:
            assert row.normalized_time < 1.0, (
                row.kernel, row.dataset, row.composition
            )

    def test_fst_helps_moldyn_on_p4(self, p4_grid):
        by_key = {
            (r.kernel, r.dataset, r.composition): r.normalized_time
            for r in p4_grid
        }
        for dataset in BENCHMARK_DATASETS["moldyn"]:
            assert (
                by_key[("moldyn", dataset, "gpart+fst")]
                < by_key[("moldyn", dataset, "gpart")]
            )

    def test_remap_once_reduces_overhead(self):
        from repro.eval.figures import figure16

        for row in figure16(scale=SCALE):
            assert row.percent_reduction > 0


class TestCSVExport:
    def test_rows_to_csv_dataclasses(self):
        from repro.eval.report import rows_to_csv

        rows = run_grid("pentium4", ("cpack",), scale=SCALE, kernels=("irreg",))
        text = rows_to_csv(rows, ["kernel", "dataset", "composition", "normalized_time"])
        lines = text.strip().split("\n")
        assert lines[0] == "kernel,dataset,composition,normalized_time"
        assert len(lines) == 1 + len(rows)
        assert lines[1].startswith("irreg,")

    def test_rows_to_csv_dicts(self):
        from repro.eval.report import rows_to_csv

        text = rows_to_csv(
            [{"a": 1, "b": "x"}, {"a": 2, "b": "y,z"}], ["a", "b"]
        )
        assert text.splitlines()[2] == '2,"y,z"'
