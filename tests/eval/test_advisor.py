"""Tests for run-time composition selection (Section 7 implemented)."""

import numpy as np
import pytest

from repro.cachesim.machines import machine_by_name
from repro.eval.advisor import (
    Advice,
    choose_composition,
    sample_kernel_data,
)
from repro.kernels import generate_dataset, make_kernel_data


@pytest.fixture(scope="module")
def moldyn_mol1():
    return make_kernel_data("moldyn", generate_dataset("mol1", scale=64))


class TestSampling:
    def test_sample_is_compacted(self, moldyn_mol1):
        sample = sample_kernel_data(moldyn_mol1, 0.1, seed=1)
        assert sample.num_inter <= moldyn_mol1.num_inter
        assert sample.num_nodes <= moldyn_mol1.num_nodes
        # dense renumbering: every node id in range and every node touched
        assert sample.left.max() < sample.num_nodes
        touched = set(sample.left) | set(sample.right)
        assert touched == set(range(sample.num_nodes))

    def test_sample_keeps_record_bytes(self, moldyn_mol1):
        sample = sample_kernel_data(moldyn_mol1, 0.1)
        assert sample.node_record_bytes == moldyn_mol1.node_record_bytes

    def test_sample_arrays_follow_nodes(self, moldyn_mol1):
        sample = sample_kernel_data(moldyn_mol1, 0.1)
        for arr in sample.arrays.values():
            assert len(arr) == sample.num_nodes

    def test_full_fraction_is_whole_instance(self, moldyn_mol1):
        sample = sample_kernel_data(moldyn_mol1, 1.0)
        assert sample.num_inter == moldyn_mol1.num_inter

    def test_invalid_fraction(self, moldyn_mol1):
        with pytest.raises(ValueError):
            sample_kernel_data(moldyn_mol1, 0.0)
        with pytest.raises(ValueError):
            sample_kernel_data(moldyn_mol1, 1.5)

    def test_deterministic_per_seed(self, moldyn_mol1):
        a = sample_kernel_data(moldyn_mol1, 0.2, seed=3)
        b = sample_kernel_data(moldyn_mol1, 0.2, seed=3)
        assert np.array_equal(a.left, b.left)


class TestAdvisor:
    def test_short_runs_pick_baseline(self, moldyn_mol1):
        machine = machine_by_name("pentium4")
        advice = choose_composition(moldyn_mol1, machine, num_steps=1)
        assert advice.composition == "baseline"

    def test_long_runs_pick_a_transformation(self, moldyn_mol1):
        machine = machine_by_name("pentium4")
        advice = choose_composition(moldyn_mol1, machine, num_steps=200)
        assert advice.composition != "baseline"

    def test_estimates_cover_all_candidates(self, moldyn_mol1):
        machine = machine_by_name("power3")
        advice = choose_composition(
            moldyn_mol1, machine, num_steps=10,
            candidates=("baseline", "cpack", "gpart"),
        )
        assert {e.composition for e in advice.estimates} == {
            "baseline", "cpack", "gpart",
        }
        assert advice.estimate_for("cpack").inspector_cycles > 0
        assert advice.estimate_for("baseline").inspector_cycles == 0

    def test_estimate_for_unknown(self, moldyn_mol1):
        machine = machine_by_name("power3")
        advice = choose_composition(
            moldyn_mol1, machine, num_steps=2, candidates=("baseline",)
        )
        with pytest.raises(KeyError):
            advice.estimate_for("gpart")

    def test_pick_minimizes_projected_total(self, moldyn_mol1):
        machine = machine_by_name("pentium4")
        advice = choose_composition(moldyn_mol1, machine, num_steps=50)
        chosen = advice.estimate_for(advice.composition)
        for estimate in advice.estimates:
            assert chosen.total_cycles(50) <= estimate.total_cycles(50)

    def test_total_cycles_math(self):
        from repro.eval.advisor import CandidateEstimate

        e = CandidateEstimate("x", inspector_cycles=100.0, executor_cycles_per_step=10)
        assert e.total_cycles(0) == 100.0
        assert e.total_cycles(5) == 150.0
