"""Public API surface: every package imports and every __all__ resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.presburger",
    "repro.uniform",
    "repro.transforms",
    "repro.runtime",
    "repro.analysis",
    "repro.codegen",
    "repro.kernels",
    "repro.cachesim",
    "repro.eval",
]

MODULES = [
    "repro.presburger.terms",
    "repro.presburger.constraints",
    "repro.presburger.sets",
    "repro.presburger.relations",
    "repro.presburger.simplify",
    "repro.presburger.evaluate",
    "repro.presburger.parser",
    "repro.presburger.ordering",
    "repro.presburger.render",
    "repro.uniform.kernel",
    "repro.uniform.iterspace",
    "repro.uniform.mappings",
    "repro.uniform.state",
    "repro.uniform.legality",
    "repro.transforms.base",
    "repro.transforms.cpack",
    "repro.transforms.gpart",
    "repro.transforms.rcm",
    "repro.transforms.spacefill",
    "repro.transforms.lexgroup",
    "repro.transforms.bucket_tiling",
    "repro.transforms.block_partition",
    "repro.transforms.fst",
    "repro.transforms.fst_sweeps",
    "repro.transforms.cache_block",
    "repro.transforms.tilepack",
    "repro.transforms.parallel",
    "repro.runtime.executor",
    "repro.runtime.inspector",
    "repro.runtime.plan",
    "repro.runtime.planspec",
    "repro.runtime.verify",
    "repro.runtime.symbolic_executor",
    "repro.analysis.dataflow",
    "repro.analysis.diagnostics",
    "repro.analysis.rules",
    "repro.analysis.rewrite",
    "repro.codegen.emit",
    "repro.codegen.executor_gen",
    "repro.codegen.inspector_gen",
    "repro.codegen.trace_gen",
    "repro.kernels.specs",
    "repro.kernels.data",
    "repro.kernels.datasets",
    "repro.kernels.executors",
    "repro.kernels.gauss_seidel",
    "repro.kernels.spmv",
    "repro.cachesim.cache",
    "repro.cachesim.hierarchy",
    "repro.cachesim.machines",
    "repro.cachesim.trace",
    "repro.cachesim.model",
    "repro.eval.compositions",
    "repro.eval.experiments",
    "repro.eval.figures",
    "repro.eval.report",
    "repro.eval.advisor",
    "repro.__main__",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_resolves(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_docstrings(name):
    """Every module carries real documentation."""
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 40, name


def test_version():
    import repro

    assert repro.__version__
