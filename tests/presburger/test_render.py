"""Round-trip tests: render to Omega text, parse back, same semantics."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.presburger import Environment, parse_relation, parse_set
from repro.presburger.render import (
    constraint_to_omega,
    expr_to_omega,
    relation_to_omega,
    set_to_omega,
    to_omega,
)
from repro.presburger.constraints import eq, geq, leq
from repro.presburger.parser import parse_expr
from repro.presburger.terms import AffineExpr, const, var


class TestExprRendering:
    def test_simple(self):
        assert expr_to_omega(var("i") + 3) == "i + 3"

    def test_coefficients_use_star(self):
        text = expr_to_omega(var("i") * 2 - var("j") * 3)
        assert parse_expr(text) == var("i") * 2 - var("j") * 3

    def test_uf_calls(self):
        e = AffineExpr.ufs("sigma", AffineExpr.ufs("left", var("j") + 1))
        assert parse_expr(expr_to_omega(e)) == e

    def test_constant_only(self):
        assert expr_to_omega(const(0)) == "0"
        assert expr_to_omega(const(-4)) == "-4"

    @given(st.integers(-9, 9), st.integers(-9, 9), st.integers(-9, 9))
    @settings(max_examples=60)
    def test_roundtrip_random_affine(self, a, b, c):
        e = var("i") * a + var("j") * b + c
        assert parse_expr(expr_to_omega(e)) == e


class TestConstraintRendering:
    def test_constant_moves_right(self):
        assert constraint_to_omega(geq(var("x"), 3)) == "x >= 3"

    def test_eq(self):
        text = constraint_to_omega(eq(var("x"), var("y") + 1))
        # x - y = 1 or equivalent
        assert "=" in text and ">" not in text

    def test_trivial_constant_constraint(self):
        assert constraint_to_omega(eq(const(1), 0)) == "1 = 0"


class TestSetRoundTrip:
    CASES = [
        "{[i] : 0 <= i < 10}",
        "{[i, j] : 0 <= i < n && i <= j < n}",
        "{[s, l, x, q] : l = 1 && 0 <= x < num_inter && q = 0}",
        "{[j] : left(j) = 2 && 0 <= j < 3}",
        "{[i] : i = 0} union {[i] : 3 <= i <= 5}",
        "{[i] : exists(a : i = 2*a && 0 <= a <= 4)}",
        "{[i, j]}",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_semantics_preserved(self, text):
        original = parse_set(text)
        reparsed = parse_set(set_to_omega(original))
        env = Environment(symbols={"n": 5, "num_inter": 4})
        env.bind_array("left", [0, 2, 1])
        import itertools

        arity = original.arity
        for point in itertools.product(range(-1, 7), repeat=arity):
            assert env.set_contains(original, point) == env.set_contains(
                reparsed, point
            ), point

    def test_empty_set_renders_unsatisfiable(self):
        from repro.presburger.sets import PresburgerSet

        empty = PresburgerSet.empty(["i"])
        reparsed = parse_set(set_to_omega(empty))
        env = Environment()
        assert not env.set_contains(reparsed, (0,))


class TestRelationRoundTrip:
    CASES = [
        "{[i] -> [j] : j = i + 1 && 0 <= i < 5}",
        "{[s, l, x, q] -> [s, l, x1, q] : l = 0 && x1 = cp(x)}"
        " union {[s, l, x, q] -> [s, l, x1, q] : l = 1 && x1 = lg(x)}",
        "{[j] -> [m] : m = left(j) && 0 <= j < 3}",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_semantics_preserved(self, text):
        original = parse_relation(text)
        reparsed = parse_relation(relation_to_omega(original))
        env = Environment(symbols={"n": 6})
        env.bind_array("left", [0, 2, 1])
        env.bind_array("cp", [1, 0, 2, 3])
        env.bind_array("lg", [3, 2, 1, 0])
        import itertools

        for point in itertools.product(range(0, 3), repeat=original.in_arity):
            assert sorted(env.apply_relation(original, point)) == sorted(
                env.apply_relation(reparsed, point)
            ), point

    def test_composed_relation_roundtrips(self):
        """The acid test: compositions carry existentials and nested UFS."""
        t1 = parse_relation("{[i] -> [j] : j = cp(i) && 0 <= i < 4}")
        t2 = parse_relation("{[j] -> [k] : k = lg(j)}")
        composed = t1.then(t2)
        reparsed = parse_relation(relation_to_omega(composed))
        env = Environment()
        env.bind_array("cp", [1, 0, 3, 2])
        env.bind_array("lg", [2, 3, 0, 1])
        for i in range(4):
            assert env.apply_relation(composed, (i,)) == env.apply_relation(
                reparsed, (i,)
            )

    def test_to_omega_dispatch(self):
        assert "->" in to_omega(parse_relation("{[i] -> [j] : j = i}"))
        assert "->" not in to_omega(parse_set("{[i]}"))
        with pytest.raises(TypeError):
            to_omega(42)


class TestFrameworkDumpsRoundTrip:
    def test_moldyn_data_mappings_roundtrip(self):
        """Every mapping/dependence the framework derives must serialize."""
        from repro.kernels.specs import kernel_by_name
        from repro.uniform import ProgramState

        state = ProgramState.initial(kernel_by_name("moldyn"))
        for mapping in state.data_mappings.values():
            reparsed = parse_relation(relation_to_omega(mapping))
            assert reparsed.in_arity == mapping.in_arity
        for dep in state.dependences:
            reparsed = parse_relation(relation_to_omega(dep.relation))
            assert reparsed.out_arity == dep.relation.out_arity
