"""Property-based tests (hypothesis) for the Presburger layer invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.presburger import Environment, parse_relation, parse_set
from repro.presburger.ordering import lex_compare, lex_lt
from repro.presburger.terms import AffineExpr, const, var

# -- strategies ---------------------------------------------------------------

names = st.sampled_from(["i", "j", "k", "s", "q"])


@st.composite
def affine_exprs(draw, depth=0):
    kind = draw(st.integers(0, 3 if depth < 2 else 1))
    if kind == 0:
        return const(draw(st.integers(-20, 20)))
    if kind == 1:
        return var(draw(names))
    if kind == 2:
        return draw(affine_exprs(depth + 1)) + draw(affine_exprs(depth + 1))
    return AffineExpr.ufs("f", draw(affine_exprs(depth + 1)))


assignments = st.fixed_dictionaries(
    {n: st.integers(-50, 50) for n in ["i", "j", "k", "s", "q"]}
)


def make_env():
    return Environment(functions={"f": lambda x: 3 * x + 1})


# -- algebraic laws of AffineExpr ------------------------------------------------


class TestAffineLaws:
    @given(affine_exprs(), affine_exprs(), assignments)
    @settings(max_examples=80)
    def test_addition_commutes(self, a, b, env_vals):
        env = make_env()
        assert env.eval_expr(a + b, env_vals) == env.eval_expr(b + a, env_vals)

    @given(affine_exprs(), affine_exprs(), affine_exprs(), assignments)
    @settings(max_examples=60)
    def test_addition_associates(self, a, b, c, env_vals):
        env = make_env()
        assert env.eval_expr((a + b) + c, env_vals) == env.eval_expr(
            a + (b + c), env_vals
        )

    @given(affine_exprs(), assignments)
    @settings(max_examples=80)
    def test_negation_inverts(self, a, env_vals):
        env = make_env()
        assert env.eval_expr(a + (-a), env_vals) == 0

    @given(affine_exprs(), st.integers(-10, 10), assignments)
    @settings(max_examples=80)
    def test_scaling_distributes(self, a, k, env_vals):
        env = make_env()
        assert env.eval_expr(a * k, env_vals) == k * env.eval_expr(a, env_vals)

    @given(affine_exprs(), affine_exprs())
    @settings(max_examples=80)
    def test_equal_exprs_have_equal_hash(self, a, b):
        if a == b:
            assert hash(a) == hash(b)

    @given(affine_exprs(), st.integers(-5, 5), assignments)
    @settings(max_examples=60)
    def test_substitution_matches_evaluation(self, a, value, env_vals):
        """Substituting i := c then evaluating equals evaluating with i=c."""
        env = make_env()
        substituted = a.substitute({"i": const(value)})
        direct = dict(env_vals)
        direct["i"] = value
        assert env.eval_expr(substituted, env_vals) == env.eval_expr(a, direct)


# -- lexicographic ordering laws ------------------------------------------------


tuples3 = st.tuples(
    st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5)
)


class TestLexLaws:
    @given(tuples3, tuples3)
    def test_antisymmetry(self, a, b):
        if lex_lt(a, b):
            assert not lex_lt(b, a)

    @given(tuples3, tuples3, tuples3)
    def test_transitivity(self, a, b, c):
        if lex_lt(a, b) and lex_lt(b, c):
            assert lex_lt(a, c)

    @given(tuples3, tuples3)
    def test_totality(self, a, b):
        assert (lex_compare(a, b) == 0) == (tuple(a) == tuple(b))
        assert lex_lt(a, b) or lex_lt(b, a) or tuple(a) == tuple(b)

    @given(tuples3)
    def test_irreflexive(self, a):
        assert not lex_lt(a, a)


# -- set/relation semantics -------------------------------------------------------


class TestSetRelationSemantics:
    @given(st.integers(0, 12), st.integers(0, 12))
    @settings(max_examples=40)
    def test_union_is_membership_or(self, lo, hi):
        env = Environment(symbols={"a": lo, "b": hi})
        s1 = parse_set("{[i] : 0 <= i < a}")
        s2 = parse_set("{[i] : 0 <= i < b}")
        u = s1 | s2
        for x in range(-1, 14):
            assert env.set_contains(u, (x,)) == (
                env.set_contains(s1, (x,)) or env.set_contains(s2, (x,))
            )

    @given(st.integers(0, 12), st.integers(0, 12))
    @settings(max_examples=40)
    def test_intersection_is_membership_and(self, lo, hi):
        env = Environment(symbols={"a": lo, "b": hi})
        s1 = parse_set("{[i] : 0 <= i < a}")
        s2 = parse_set("{[i] : 0 <= i < b}")
        inter = s1 & s2
        for x in range(-1, 14):
            assert env.set_contains(inter, (x,)) == (
                env.set_contains(s1, (x,)) and env.set_contains(s2, (x,))
            )

    @given(st.permutations(list(range(6))))
    @settings(max_examples=40)
    def test_relation_roundtrip_through_inverse(self, perm):
        env = Environment(symbols={"n": len(perm)})
        env.bind_array("sigma", perm)
        r = parse_relation("{[i] -> [j] : j = sigma(i) && 0 <= i < n}")
        for i in range(len(perm)):
            (j,) = env.apply_relation(r, (i,))
            back = env.apply_relation(r.inverse(), j)
            assert (i,) in back

    @given(st.permutations(list(range(5))), st.permutations(list(range(5))))
    @settings(max_examples=40)
    def test_composition_agrees_with_sequential_application(self, p1, p2):
        env = Environment(symbols={"n": 5})
        env.bind_array("s1", p1)
        env.bind_array("s2", p2)
        r1 = parse_relation("{[i] -> [j] : j = s1(i) && 0 <= i < n}")
        r2 = parse_relation("{[j] -> [k] : k = s2(j)}")
        composed = r1.then(r2)
        for i in range(5):
            mid = env.apply_relation_single(r1, (i,))
            expected = env.apply_relation_single(r2, mid)
            assert env.apply_relation_single(composed, (i,)) == expected

    @given(st.integers(1, 8))
    @settings(max_examples=20)
    def test_enumeration_count_matches_volume(self, n):
        env = Environment(symbols={"n": n})
        s = parse_set("{[i, j] : 0 <= i < n && 0 <= j <= i}")
        pts = list(env.enumerate_set(s))
        assert len(pts) == n * (n + 1) // 2
        assert pts == sorted(pts)  # lexicographic order
