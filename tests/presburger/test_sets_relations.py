"""Unit tests for PresburgerSet / PresburgerRelation algebra."""

import pytest

from repro.presburger import (
    Environment,
    PresburgerRelation,
    PresburgerSet,
    eq,
    geq,
    leq,
    parse_relation,
    parse_set,
)
from repro.presburger.sets import Conjunction, fresh_name
from repro.presburger.terms import AffineExpr, var


def points(env, pset):
    return list(env.enumerate_set(pset))


class TestSetBasics:
    def test_universe_and_empty(self):
        u = PresburgerSet.universe(["i"])
        assert len(u.conjunctions) == 1
        e = PresburgerSet.empty(["i"])
        assert e.is_empty_syntactically()

    def test_duplicate_tuple_vars_rejected(self):
        with pytest.raises(ValueError):
            PresburgerSet(["i", "i"])

    def test_union_arity_mismatch(self):
        with pytest.raises(ValueError):
            parse_set("{[i]}").union(parse_set("{[i,j]}"))

    def test_union_enumerates_both(self):
        s = parse_set("{[i] : 0 <= i < 2} union {[i] : 5 <= i < 7}")
        assert points(Environment(), s) == [(0,), (1,), (5,), (6,)]

    def test_union_removes_duplicates_in_enumeration(self):
        s = parse_set("{[i] : 0 <= i < 3} union {[i] : 1 <= i < 4}")
        assert points(Environment(), s) == [(0,), (1,), (2,), (3,)]

    def test_intersect(self):
        a = parse_set("{[i] : 0 <= i < 10}")
        b = parse_set("{[i] : 5 <= i < 20}")
        assert points(Environment(), a & b) == [(5,), (6,), (7,), (8,), (9,)]

    def test_intersect_renames_positionally(self):
        a = parse_set("{[i] : 0 <= i < 4}")
        b = parse_set("{[j] : j >= 2}").constrain(leq(var("j"), 10))
        inter = a.intersect(b)
        assert points(Environment(), inter) == [(2,), (3,)]

    def test_constrain(self):
        s = parse_set("{[i] : 0 <= i < 10}").constrain(geq(var("i"), 8))
        assert points(Environment(), s) == [(8,), (9,)]

    def test_fix_tuple_position(self):
        s = parse_set("{[a, b] : 0 <= a < 3 && 0 <= b < 3}")
        fixed = s.fix_tuple_position(0, 1)
        assert points(Environment(), fixed) == [(1, 0), (1, 1), (1, 2)]

    def test_free_symbols(self):
        s = parse_set("{[i] : 0 <= i < n}")
        assert s.free_symbols() == {"n"}

    def test_uf_names(self):
        s = parse_set("{[j] : left(j) >= 0}")
        assert s.uf_names() == {"left"}

    def test_simplified_drops_false_conjunction(self):
        s = parse_set("{[i] : 1 = 0} union {[i] : i = 3}")
        simp = s.simplified()
        assert len(simp.conjunctions) == 1


class TestRelationBasics:
    def test_identity(self):
        ident = PresburgerRelation.identity(["a", "b"])
        env = Environment()
        assert env.apply_relation_single(ident, (3, 4)) == (3, 4)

    def test_inverse(self):
        r = parse_relation("{[i] -> [j] : j = i + 5}")
        env = Environment()
        assert env.apply_relation_single(r.inverse(), (12,)) == (7,)

    def test_in_out_vars_disjoint(self):
        with pytest.raises(ValueError):
            PresburgerRelation(["i"], ["i"])

    def test_union(self):
        r = parse_relation("{[i] -> [j] : j = i} union {[i] -> [j] : j = i + 10}")
        env = Environment()
        outs = set(env.apply_relation(r, (1,)))
        assert outs == {(1,), (11,)}

    def test_domain_range(self):
        r = parse_relation("{[i] -> [j] : j = i + 1 && 0 <= i < 3}")
        env = Environment()
        assert points(env, r.domain()) == [(0,), (1,), (2,)]
        assert points(env, r.range()) == [(1,), (2,), (3,)]

    def test_restrict_domain(self):
        r = parse_relation("{[i] -> [j] : j = i}")
        restricted = r.restrict_domain(parse_set("{[i] : 0 <= i < 2}"))
        env = Environment()
        assert list(env.enumerate_relation(restricted)) == [
            ((0,), (0,)),
            ((1,), (1,)),
        ]

    def test_restrict_range(self):
        r = parse_relation("{[i] -> [j] : j = i && 0 <= i < 5}")
        restricted = r.restrict_range(parse_set("{[j] : j >= 3}"))
        env = Environment()
        assert list(env.enumerate_relation(restricted)) == [
            ((3,), (3,)),
            ((4,), (4,)),
        ]

    def test_apply_set(self):
        r = parse_relation("{[i] -> [j] : j = i + 100}")
        image = r.apply_set(parse_set("{[i] : 0 <= i < 3}"))
        assert points(Environment(), image) == [(100,), (101,), (102,)]


class TestComposition:
    def test_affine_composition(self):
        first = parse_relation("{[i] -> [j] : j = i + 1}")
        second = parse_relation("{[j] -> [k] : k = 2*j}")
        composed = first.then(second)
        env = Environment()
        assert env.apply_relation_single(composed, (3,)) == (8,)

    def test_ufs_composition_nests_calls(self):
        first = parse_relation("{[i] -> [j] : j = sigma(i)}")
        second = parse_relation("{[j] -> [k] : k = delta(j)}")
        composed = first.then(second)
        # The composed constraint should contain delta(sigma(i)).
        names = composed.uf_names()
        assert names == {"sigma", "delta"}
        env = Environment()
        env.bind_array("sigma", [2, 0, 1])
        env.bind_array("delta", [10, 20, 30])
        assert env.apply_relation_single(composed, (0,)) == (30,)

    def test_compose_is_then_flipped(self):
        first = parse_relation("{[i] -> [j] : j = i + 1}")
        second = parse_relation("{[j] -> [k] : k = 3*j}")
        env = Environment()
        a = env.apply_relation_single(second.compose(first), (1,))
        b = env.apply_relation_single(first.then(second), (1,))
        assert a == b == (6,)

    def test_composition_existentials_eliminated(self):
        first = parse_relation("{[i] -> [j] : j = i + 1}")
        second = parse_relation("{[j] -> [k] : k = j + 1}")
        composed = first.then(second)
        for conj in composed.conjunctions:
            assert not conj.exist_vars

    def test_composition_preserves_guards(self):
        first = parse_relation("{[i] -> [j] : j = i && 0 <= i < 4}")
        second = parse_relation("{[j] -> [k] : k = j && j >= 2}")
        composed = first.then(second)
        env = Environment()
        pairs = list(env.enumerate_relation(composed))
        assert pairs == [((2,), (2,)), ((3,), (3,))]

    def test_composition_of_unions(self):
        first = parse_relation(
            "{[i] -> [j] : j = i && 0 <= i < 2} union {[i] -> [j] : j = i + 10 && 0 <= i < 2}"
        )
        second = parse_relation("{[j] -> [k] : k = j + 1}")
        composed = first.then(second)
        env = Environment()
        outs = set(env.apply_relation(composed, (0,)))
        assert outs == {(1,), (11,)}

    def test_arity_mismatch_raises(self):
        first = parse_relation("{[i] -> [j, j2]}")
        second = parse_relation("{[j] -> [k]}")
        with pytest.raises(ValueError):
            first.then(second)

    def test_multidim_paper_style_composition(self):
        # T_{I0->I1} then T_{I1->I2} from the paper's section 5.3.
        t01 = parse_relation(
            "{[s,1,i,1] -> [s,1,i1,1] : i1 = cp(i)}"
        )
        t12 = parse_relation(
            "{[s,1,i1,1] -> [s,1,i2,1] : i2 = cp2(i1)}"
        )
        composed = t01.then(t12)
        env = Environment()
        env.bind_array("cp", [1, 2, 0])
        env.bind_array("cp2", [2, 0, 1])
        assert env.apply_relation_single(composed, (5, 1, 0, 1)) == (5, 1, 0, 1)
        # cp(1) = 2, cp2(2) = 1
        assert env.apply_relation_single(composed, (9, 1, 1, 1)) == (9, 1, 1, 1)


class TestFreshNames:
    def test_fresh_names_unique(self):
        names = {fresh_name() for _ in range(100)}
        assert len(names) == 100

    def test_conjunction_dedup_in_eq(self):
        c1 = Conjunction([eq(var("i"), 0), eq(var("i"), 0)])
        c2 = Conjunction([eq(var("i"), 0)])
        assert c1 == c2


class TestPowers:
    def test_power_of_successor(self):
        r = parse_relation("{[i] -> [j] : j = i + 1}")
        env = Environment()
        assert env.apply_relation_single(r.power(3), (0,)) == (3,)

    def test_power_zero_is_identity(self):
        r = parse_relation("{[i] -> [j] : j = 2*i}")
        env = Environment()
        assert env.apply_relation_single(r.power(0), (5,)) == (5,)

    def test_power_one_is_self(self):
        r = parse_relation("{[i] -> [j] : j = i + 10}")
        env = Environment()
        assert env.apply_relation_single(r.power(1), (1,)) == (11,)

    def test_power_with_ufs(self):
        r = parse_relation("{[i] -> [j] : j = sigma(i)}")
        env = Environment()
        env.bind_array("sigma", [1, 2, 0])
        assert env.apply_relation_single(r.power(3), (0,)) == (0,)

    def test_power_requires_square(self):
        r = parse_relation("{[i] -> [j, k] : j = i && k = i}")
        with pytest.raises(ValueError):
            r.power(2)

    def test_negative_power_rejected(self):
        r = parse_relation("{[i] -> [j] : j = i}")
        with pytest.raises(ValueError):
            r.power(-1)

    def test_paths_upto_collects_chain(self):
        r = parse_relation("{[i] -> [j] : j = i + 1 && 0 <= i < 10}")
        env = Environment()
        outs = set(env.apply_relation(r.paths_upto(3), (0,)))
        assert outs == {(1,), (2,), (3,)}

    def test_paths_upto_one_is_self(self):
        r = parse_relation("{[i] -> [j] : j = i + 1}")
        env = Environment()
        assert env.apply_relation(r.paths_upto(1), (4,)) == [(5,)]

    def test_paths_upto_requires_positive(self):
        r = parse_relation("{[i] -> [j] : j = i}")
        with pytest.raises(ValueError):
            r.paths_upto(0)

    def test_dependence_chain_reasoning(self):
        """Chains through an index array: who can iteration 0 reach in <= 2 hops?"""
        env = Environment(symbols={"n": 4})
        env.bind_array("next", [2, 3, 1, 0])
        r = parse_relation("{[i] -> [j] : j = next(i) && 0 <= i < n}")
        reach = set(env.apply_relation(r.paths_upto(2), (0,)))
        assert reach == {(2,), (1,)}


class TestSubtraction:
    def test_interval_difference(self):
        a = parse_set("{[i] : 0 <= i < 10}")
        b = parse_set("{[i] : 3 <= i < 6}")
        assert points(Environment(), a - b) == [
            (0,), (1,), (2,), (6,), (7,), (8,), (9,),
        ]

    def test_subtract_equality(self):
        a = parse_set("{[i] : 0 <= i < 5}")
        b = parse_set("{[i] : i = 2}")
        assert points(Environment(), a - b) == [(0,), (1,), (3,), (4,)]

    def test_subtract_union(self):
        a = parse_set("{[i] : 0 <= i < 6}")
        b = parse_set("{[i] : i = 1} union {[i] : i = 4}")
        assert points(Environment(), a - b) == [(0,), (2,), (3,), (5,)]

    def test_subtract_self_is_empty(self):
        a = parse_set("{[i] : 0 <= i < 4}")
        assert points(Environment(), a - a) == []

    def test_subtract_disjoint_is_identity(self):
        a = parse_set("{[i] : 0 <= i < 3}")
        b = parse_set("{[i] : 10 <= i < 12}")
        assert points(Environment(), a - b) == points(Environment(), a)

    def test_subtract_universe_is_empty(self):
        a = parse_set("{[i] : 0 <= i < 3}")
        universe = parse_set("{[i]}")
        assert (a - universe).is_empty_syntactically()

    def test_subtract_existential_rejected(self):
        a = parse_set("{[i] : 0 <= i < 4}")
        b = parse_set("{[i] : exists(k : i = 2*k)}")
        with pytest.raises(ValueError, match="existential"):
            a - b

    def test_membership_semantics(self):
        env = Environment(symbols={"n": 8})
        a = parse_set("{[i, j] : 0 <= i < n && 0 <= j < n}")
        b = parse_set("{[i, j] : i <= j}")
        diff = a - b
        for i in range(8):
            for j in range(8):
                expected = env.set_contains(a, (i, j)) and not env.set_contains(
                    b, (i, j)
                )
                assert env.set_contains(diff, (i, j)) == expected

    def test_relation_subtraction(self):
        r = parse_relation("{[i] -> [j] : 0 <= i < 4 && 0 <= j < 4}")
        ident = parse_relation("{[i] -> [j] : j = i}")
        off_diag = r - ident
        env = Environment()
        pairs = list(env.enumerate_relation(off_diag))
        assert all(src != dst for src, dst in pairs)
        assert len(pairs) == 12

    def test_relation_subtraction_arity_check(self):
        r = parse_relation("{[i] -> [j]}")
        s = parse_relation("{[i] -> [j, k]}")
        with pytest.raises(ValueError):
            r - s

    def test_subtract_with_ufs(self):
        env = Environment(symbols={"n": 5})
        env.bind_array("sig", [0, 2, 4, 1, 3])
        a = parse_set("{[i] : 0 <= i < n}")
        b = parse_set("{[i] : sig(i) = 2}")
        diff = a - b
        expected = [(i,) for i in range(5) if i != 1]
        assert points(env, diff) == expected
