"""Unit tests for simplification and lexicographic ordering helpers."""

from repro.presburger import Environment, parse_set
from repro.presburger.constraints import eq, geq, leq
from repro.presburger.ordering import (
    lex_compare,
    lex_le,
    lex_lt,
    lex_lt_conjunctions,
)
from repro.presburger.sets import Conjunction, PresburgerSet
from repro.presburger.simplify import (
    constraints_entail_false,
    simplify_conjunction,
)
from repro.presburger.terms import AffineExpr, var


class TestSimplifyConjunction:
    def test_eliminates_defined_existential(self):
        conj = Conjunction(
            [eq(var("m"), var("i") + 1), eq(var("j"), var("m") * 1)],
            exist_vars=["m"],
        )
        simp = simplify_conjunction(conj)
        assert simp is not None
        assert not simp.exist_vars
        assert eq(var("j"), var("i") + 1) in simp.constraints

    def test_eliminates_chain_of_existentials(self):
        conj = Conjunction(
            [
                eq(var("a"), var("i")),
                eq(var("b"), var("a") + 1),
                eq(var("j"), var("b") + 1),
            ],
            exist_vars=["a", "b"],
        )
        simp = simplify_conjunction(conj)
        assert not simp.exist_vars
        assert eq(var("j"), var("i") + 2) in simp.constraints

    def test_keeps_undefined_existential(self):
        conj = Conjunction([geq(var("i"), var("a") * 2)], exist_vars=["a"])
        simp = simplify_conjunction(conj)
        assert simp.exist_vars == ("a",)

    def test_drops_trivially_true(self):
        conj = Conjunction([geq(AffineExpr.constant(3), 0), geq(var("i"), 0)])
        simp = simplify_conjunction(conj)
        assert len(simp.constraints) == 1

    def test_detects_trivially_false(self):
        conj = Conjunction([eq(AffineExpr.constant(1), 0)])
        assert simplify_conjunction(conj) is None

    def test_substitution_induced_false(self):
        conj = Conjunction(
            [eq(var("m"), 1), eq(var("m"), 2)], exist_vars=["m"]
        )
        assert simplify_conjunction(conj) is None

    def test_dedupes(self):
        conj = Conjunction([geq(var("i"), 0), geq(var("i"), 0)])
        assert len(simplify_conjunction(conj).constraints) == 1

    def test_drops_unused_existentials(self):
        conj = Conjunction([geq(var("i"), 0)], exist_vars=["ghost"])
        assert simplify_conjunction(conj).exist_vars == ()

    def test_substitutes_inside_uf_args(self):
        conj = Conjunction(
            [
                eq(var("m"), var("j") + 1),
                eq(var("k"), AffineExpr.ufs("sigma", var("m"))),
            ],
            exist_vars=["m"],
        )
        simp = simplify_conjunction(conj)
        assert not simp.exist_vars
        expected = eq(var("k"), AffineExpr.ufs("sigma", var("j") + 1))
        assert expected in simp.constraints


class TestEntailFalse:
    def test_crossing_bounds(self):
        cons = [geq(var("i"), 5), leq(var("i"), 3)]
        assert constraints_entail_false(cons)

    def test_compatible_bounds(self):
        cons = [geq(var("i"), 3), leq(var("i"), 5)]
        assert not constraints_entail_false(cons)

    def test_eq_outside_bounds(self):
        cons = [eq(var("i"), 10), leq(var("i"), 3)]
        assert constraints_entail_false(cons)

    def test_negated_linear_parts_share_entry(self):
        # i - j >= 2 and j - i >= 0 cannot both hold.
        cons = [geq(var("i") - var("j"), 2), geq(var("j") - var("i"), 0)]
        assert constraints_entail_false(cons)

    def test_incomparable_constraints_pass(self):
        cons = [geq(var("i"), 0), geq(var("j"), 0)]
        assert not constraints_entail_false(cons)


class TestLexOrder:
    def test_compare(self):
        assert lex_compare((1, 2), (1, 3)) == -1
        assert lex_compare((1, 3), (1, 2)) == 1
        assert lex_compare((1, 2), (1, 2)) == 0

    def test_lt_le(self):
        assert lex_lt((0, 9), (1, 0))
        assert not lex_lt((1, 0), (1, 0))
        assert lex_le((1, 0), (1, 0))

    def test_prefix_ordering(self):
        assert lex_lt((1,), (1, 0))

    def test_symbolic_lex_matches_concrete(self):
        disjuncts = lex_lt_conjunctions(["a0", "a1"], ["b0", "b1"])
        pset = PresburgerSet(["a0", "a1", "b0", "b1"], disjuncts)
        env = Environment()
        import itertools

        for a in itertools.product(range(3), repeat=2):
            for b in itertools.product(range(3), repeat=2):
                assert env.set_contains(pset, a + b) == lex_lt(a, b), (a, b)

    def test_symbolic_lex_arity_mismatch(self):
        import pytest

        with pytest.raises(ValueError):
            lex_lt_conjunctions(["a"], ["b", "c"])
