"""Unit tests for the Omega-like text parser."""

import pytest

from repro.presburger import Environment, parse_expr, parse_relation, parse_set
from repro.presburger.parser import ParseError
from repro.presburger.terms import AffineExpr, var


class TestExprParsing:
    def test_integer(self):
        assert parse_expr("42") == AffineExpr.constant(42)

    def test_identifier(self):
        assert parse_expr("num_nodes") == var("num_nodes")

    def test_primed_identifier(self):
        assert parse_expr("s'") == var("s'")

    def test_arithmetic(self):
        assert parse_expr("2*i + j - 3") == var("i") * 2 + var("j") - 3

    def test_parenthesized(self):
        assert parse_expr("2*(i + 1)") == var("i") * 2 + 2

    def test_unary_minus(self):
        assert parse_expr("-i + 4") == -var("i") + 4

    def test_uf_call(self):
        assert parse_expr("left(j)") == AffineExpr.ufs("left", var("j"))

    def test_nested_uf_call(self):
        e = parse_expr("sigma(left(j) + 1)")
        assert e.uf_names() == {"sigma", "left"}

    def test_multi_arg_uf(self):
        e = parse_expr("theta(2, j)")
        (atom,) = e.atoms()
        assert len(atom.args) == 2

    def test_nonlinear_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("i * j")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("i + 1 ]")


class TestSetParsing:
    def test_simple_bounds(self):
        s = parse_set("{[i] : 0 <= i < 10}")
        assert s.tuple_vars == ("i",)
        pts = list(Environment().enumerate_set(s))
        assert len(pts) == 10

    def test_chained_comparison(self):
        s = parse_set("{[i] : 0 <= i <= 3}")
        assert list(Environment().enumerate_set(s)) == [(0,), (1,), (2,), (3,)]

    def test_and_keyword(self):
        s = parse_set("{[i] : i >= 0 and i < 2}")
        assert list(Environment().enumerate_set(s)) == [(0,), (1,)]

    def test_unconstrained_set(self):
        s = parse_set("{[i, j]}")
        assert s.tuple_vars == ("i", "j")
        assert len(s.conjunctions) == 1

    def test_constant_tuple_entry(self):
        s = parse_set("{[s, 1, i] : 0 <= s < 2 && 0 <= i < 2}")
        env = Environment()
        pts = list(env.enumerate_set(s))
        assert pts == [(0, 1, 0), (0, 1, 1), (1, 1, 0), (1, 1, 1)]

    def test_exists(self):
        # Even numbers between 0 and 10.
        s = parse_set("{[i] : exists(a : i = 2*a && 0 <= a) && i < 10}")
        assert list(Environment().enumerate_set(s)) == [
            (0,), (2,), (4,), (6,), (8,),
        ]

    def test_union(self):
        s = parse_set("{[i] : i = 0} union {[i] : i = 5}")
        assert list(Environment().enumerate_set(s)) == [(0,), (5,)]


class TestRelationParsing:
    def test_basic(self):
        r = parse_relation("{[i] -> [j] : j = i + 1}")
        assert Environment().apply_relation_single(r, (4,)) == (5,)

    def test_repeated_name_means_equality(self):
        # Paper idiom: [s,1,i,1] -> [s,1,i1,1] keeps s fixed.
        r = parse_relation("{[s, i] -> [s, i1] : i1 = i + 1}")
        assert Environment().apply_relation_single(r, (7, 0)) == (7, 1)

    def test_expression_output_entry(self):
        r = parse_relation("{[i] -> [i + 1]}")
        assert Environment().apply_relation_single(r, (2,)) == (3,)

    def test_uf_output_entry(self):
        r = parse_relation("{[j] -> [lg(j)]}")
        env = Environment()
        env.bind_array("lg", [3, 1, 0, 2])
        assert env.apply_relation_single(r, (0,)) == (3,)

    def test_repeated_name_within_one_tuple(self):
        r = parse_relation("{[i] -> [i, i]}")
        assert Environment().apply_relation_single(r, (9,)) == (9, 9)

    def test_paper_dependence_relation(self):
        # d12/d13 from the paper (0-based): [s,0,i,0] -> [s',1,j,q] with
        # s <= s', 0 <= q < 2, and i = left(j) or i = right(j).
        text = (
            "{[s,0,i,0] -> [s',1,j,q] : s <= s' && 0 <= q < 2 && i = left(j)}"
            " union "
            "{[s,0,i,0] -> [s',1,j,q] : s <= s' && 0 <= q < 2 && i = right(j)}"
        )
        r = parse_relation(text)
        assert r.in_arity == 4 and r.out_arity == 4
        assert r.uf_names() == {"left", "right"}

    def test_missing_arrow_is_parse_error(self):
        with pytest.raises(ParseError):
            parse_relation("{[i] [j]}")

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse_set("{[i] : i >= 0")

    def test_disequality_rejected(self):
        with pytest.raises(ParseError):
            parse_set("{[i] : i != 3}")

    def test_union_of_relations(self):
        r = parse_relation("{[i] -> [j] : j = i} union {[i] -> [j] : j = 0 - i}")
        outs = set(Environment().apply_relation(r, (4,)))
        assert outs == {(4,), (-4,)}


class TestParserRobustness:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_set("")

    def test_garbage_token(self):
        with pytest.raises(ParseError):
            parse_set("{[i] : i @ 3}")

    def test_missing_tuple(self):
        with pytest.raises(ParseError):
            parse_set("{: i >= 0}")

    def test_union_requires_full_pieces(self):
        with pytest.raises(ParseError):
            parse_set("{[i]} union")

    def test_exists_requires_colon(self):
        with pytest.raises(ParseError):
            parse_set("{[i] : exists(a, i = a)}")

    def test_nested_exists(self):
        s = parse_set(
            "{[i] : exists(a : a = i - 1 && exists(b : b = a - 1 && b >= 0))}"
        )
        env = Environment()
        assert env.set_contains(s, (2,))
        assert not env.set_contains(s, (1,))

    def test_whitespace_insensitive(self):
        a = parse_set("{[i]:0<=i<5}")
        b = parse_set("{ [ i ] :  0 <= i < 5 }")
        env = Environment()
        for x in range(-1, 7):
            assert env.set_contains(a, (x,)) == env.set_contains(b, (x,))

    def test_keyword_not_identifier_prefix(self):
        # 'union_size' must lex as one identifier, not 'union' + '_size'.
        s = parse_set("{[i] : 0 <= i < union_size}")
        assert s.free_symbols() == {"union_size"}

    def test_and_inside_identifier(self):
        s = parse_set("{[i] : 0 <= i < android}")
        assert s.free_symbols() == {"android"}
