"""Unit tests for constraint construction, solving, and triviality checks."""

import pytest

from repro.presburger.constraints import (
    Constraint,
    ConstraintKind,
    eq,
    geq,
    gt,
    leq,
    lt,
)
from repro.presburger.terms import AffineExpr, const, var


class TestConstructors:
    def test_eq_normalizes_to_difference(self):
        c = eq(var("i"), var("j"))
        assert c.kind is ConstraintKind.EQ
        assert c.expr == var("i") - var("j")

    def test_leq_flips(self):
        c = leq(var("i"), 5)
        assert c.kind is ConstraintKind.GEQ
        assert c.expr == const(5) - var("i")

    def test_lt_strictness_shift(self):
        c = lt(var("i"), var("n"))
        # i < n  over integers  <=>  n - i - 1 >= 0
        assert c.expr == var("n") - var("i") - 1

    def test_gt_strictness_shift(self):
        c = gt(var("i"), 0)
        assert c.expr == var("i") - 1

    def test_geq_accepts_ints(self):
        c = geq(3, 2)
        assert c.is_trivially_true()


class TestTriviality:
    def test_trivially_true_eq(self):
        assert eq(const(0), 0).is_trivially_true()

    def test_trivially_false_eq(self):
        assert eq(const(1), 0).is_trivially_false()

    def test_trivially_true_geq(self):
        assert geq(const(0), 0).is_trivially_true()
        assert geq(const(5), 0).is_trivially_true()

    def test_trivially_false_geq(self):
        assert geq(const(-1), 0).is_trivially_false()

    def test_nonconstant_is_neither(self):
        c = geq(var("i"), 0)
        assert not c.is_trivially_true()
        assert not c.is_trivially_false()


class TestSolveFor:
    def test_solve_simple(self):
        c = eq(var("i1"), AffineExpr.ufs("sigma", var("i")))
        assert c.solve_for("i1") == AffineExpr.ufs("sigma", var("i"))

    def test_solve_negative_coefficient(self):
        c = eq(var("j") - var("i1"), 0)
        assert c.solve_for("i1") == var("j")

    def test_solve_fails_on_geq(self):
        assert geq(var("i"), 0).solve_for("i") is None

    def test_solve_fails_on_coefficient_2(self):
        c = eq(var("i") * 2, var("j"))
        assert c.solve_for("i") is None

    def test_solve_fails_when_var_inside_uf(self):
        # i = sigma(i) does not define i by substitution.
        c = eq(var("i"), AffineExpr.ufs("sigma", var("i")))
        assert c.solve_for("i") is None

    def test_solve_for_absent_var(self):
        assert eq(var("i"), 0).solve_for("q") is None


class TestNegation:
    def test_negate_geq(self):
        c = geq(var("i"), 0).negated()
        # not(i >= 0)  <=>  -i - 1 >= 0  <=>  i <= -1
        assert c.expr == -var("i") - 1

    def test_negate_eq_raises(self):
        with pytest.raises(ValueError):
            eq(var("i"), 0).negated()


class TestRewriting:
    def test_substitute(self):
        c = eq(var("i1"), AffineExpr.ufs("sigma", var("i")))
        c2 = c.substitute({"i": var("k")})
        assert c2.expr == var("i1") - AffineExpr.ufs("sigma", var("k"))

    def test_rename(self):
        c = geq(var("i"), var("lo"))
        c2 = c.rename({"i": "x"})
        assert c2.free_vars() == {"x", "lo"}

    def test_hashable(self):
        assert len({eq(var("i"), 0), eq(var("i"), 0)}) == 1
