"""Unit tests for concrete evaluation (Environment)."""

import numpy as np
import pytest

from repro.presburger import Environment, parse_relation, parse_set
from repro.presburger.evaluate import EvaluationError
from repro.presburger.terms import AffineExpr, var


class TestExpressionEvaluation:
    def test_symbols_and_assignment(self):
        env = Environment(symbols={"n": 10})
        assert env.eval_expr(var("n") + var("i"), {"i": 5}) == 15

    def test_assignment_shadows_symbol(self):
        env = Environment(symbols={"i": 1})
        assert env.eval_expr(var("i"), {"i": 2}) == 2

    def test_unbound_variable_raises(self):
        env = Environment()
        with pytest.raises(EvaluationError):
            env.eval_expr(var("mystery"), {})

    def test_uf_via_callable(self):
        env = Environment(functions={"double": lambda x: 2 * x})
        e = AffineExpr.ufs("double", var("i"))
        assert env.eval_expr(e, {"i": 21}) == 42

    def test_uf_via_numpy_array(self):
        env = Environment()
        env.bind_array("left", np.array([5, 6, 7]))
        e = AffineExpr.ufs("left", var("j"))
        assert env.eval_expr(e, {"j": 2}) == 7

    def test_unbound_uf_raises(self):
        env = Environment()
        with pytest.raises(EvaluationError):
            env.eval_expr(AffineExpr.ufs("nope", var("i")), {"i": 0})

    def test_nested_uf_evaluation(self):
        env = Environment()
        env.bind_array("sigma", [2, 0, 1])
        env.bind_array("left", [1, 1, 0])
        e = AffineExpr.ufs("sigma", AffineExpr.ufs("left", var("j")))
        assert env.eval_expr(e, {"j": 0}) == 0  # sigma(left(0)) = sigma(1) = 0


class TestSetEvaluation:
    def test_contains_with_symbols(self):
        env = Environment(symbols={"n": 4})
        s = parse_set("{[i] : 0 <= i < n}")
        assert env.set_contains(s, (3,))
        assert not env.set_contains(s, (4,))

    def test_contains_with_ufs(self):
        env = Environment()
        env.bind_array("left", [0, 2, 1])
        s = parse_set("{[j] : left(j) = 2 && 0 <= j < 3}")
        assert env.set_contains(s, (1,))
        assert not env.set_contains(s, (0,))

    def test_enumerate_with_symbol_bounds(self):
        env = Environment(symbols={"n": 3})
        s = parse_set("{[i, j] : 0 <= i < n && i <= j < n}")
        pts = list(env.enumerate_set(s))
        assert pts == [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]

    def test_enumerate_empty(self):
        env = Environment()
        s = parse_set("{[i] : 0 <= i < 0}")
        assert list(env.enumerate_set(s)) == []

    def test_enumerate_unbounded_raises(self):
        env = Environment()
        s = parse_set("{[i] : i >= 0}")
        with pytest.raises(EvaluationError):
            list(env.enumerate_set(s))

    def test_contains_existential_via_propagation(self):
        env = Environment()
        s = parse_set("{[i] : exists(a : a = i - 1 && a >= 0)}")
        assert env.set_contains(s, (1,))
        assert not env.set_contains(s, (0,))

    def test_contains_existential_via_search(self):
        env = Environment()
        # a is not defined by an equality; needs the bounded search fallback.
        s = parse_set("{[i] : exists(a : 2*a <= i && 2*a >= i && 0 <= a <= 10)}")
        assert env.set_contains(s, (4,))
        assert not env.set_contains(s, (5,))

    def test_point_arity_check(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.set_contains(parse_set("{[i]}"), (1, 2))


class TestRelationEvaluation:
    def test_functional_apply(self):
        env = Environment()
        r = parse_relation("{[i] -> [j] : j = 3*i + 1}")
        assert env.apply_relation_single(r, (2,)) == (7,)

    def test_apply_multiple_images(self):
        env = Environment(symbols={"n": 10})
        r = parse_relation(
            "{[i] -> [j] : j = i} union {[i] -> [j] : j = i + 1}"
        )
        outs = env.apply_relation(r, (3,))
        assert sorted(outs) == [(3,), (4,)]

    def test_apply_single_raises_on_many(self):
        env = Environment()
        r = parse_relation(
            "{[i] -> [j] : j = i} union {[i] -> [j] : j = i + 1}"
        )
        with pytest.raises(EvaluationError):
            env.apply_relation_single(r, (0,))

    def test_apply_single_raises_on_none(self):
        env = Environment()
        r = parse_relation("{[i] -> [j] : j = i && i >= 5}")
        with pytest.raises(EvaluationError):
            env.apply_relation_single(r, (0,))

    def test_guard_filters_image(self):
        env = Environment()
        r = parse_relation("{[i] -> [j] : j = i && i >= 5}")
        assert env.apply_relation(r, (7,)) == [(7,)]
        assert env.apply_relation(r, (2,)) == []

    def test_enumerate_relation(self):
        env = Environment()
        r = parse_relation("{[i] -> [j] : j = i + 10 && 0 <= i < 2}")
        assert list(env.enumerate_relation(r)) == [
            ((0,), (10,)),
            ((1,), (11,)),
        ]

    def test_scan_based_apply_for_non_functional(self):
        env = Environment(symbols={"n": 4})
        # j is only bounded, not defined: needs the scanning fallback.
        r = parse_relation("{[i] -> [j] : i <= j < n}")
        outs = env.apply_relation(r, (2,))
        assert sorted(outs) == [(2,), (3,)]

    def test_uf_relation_with_arrays(self):
        env = Environment(symbols={"num_inter": 3})
        env.bind_array("left", [0, 1, 2])
        env.bind_array("right", [1, 2, 0])
        r = parse_relation(
            "{[j] -> [m] : m = left(j) && 0 <= j < num_inter}"
            " union "
            "{[j] -> [m] : m = right(j) && 0 <= j < num_inter}"
        )
        outs = env.apply_relation(r, (0,))
        assert sorted(outs) == [(0,), (1,)]


class TestSolveUnknowns:
    def test_propagation_chain(self):
        env = Environment()
        from repro.presburger.constraints import eq

        cons = [
            eq(var("b"), var("a") + 1),
            eq(var("c"), var("b") + 1),
        ]
        result = env.solve_unknowns(cons, {"a": 0}, ["b", "c"])
        assert result == {"a": 0, "b": 1, "c": 2}

    def test_violation_returns_none(self):
        env = Environment()
        from repro.presburger.constraints import eq, geq

        cons = [eq(var("b"), var("a")), geq(var("b"), 5)]
        assert env.solve_unknowns(cons, {"a": 1}, ["b"]) is None

    def test_stall_raises(self):
        env = Environment()
        from repro.presburger.constraints import geq

        cons = [geq(var("b"), var("a"))]
        with pytest.raises(EvaluationError):
            env.solve_unknowns(cons, {"a": 1}, ["b"])
