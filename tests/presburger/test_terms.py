"""Unit tests for affine expressions and UFS calls."""

import pytest

from repro.presburger.terms import AffineExpr, UFCall, const, var


class TestAffineArithmetic:
    def test_var_plus_const(self):
        e = var("i") + 3
        assert e.coeff("i") == 1
        assert e.const == 3

    def test_addition_merges_coefficients(self):
        e = var("i") + var("i") + var("j")
        assert e.coeff("i") == 2
        assert e.coeff("j") == 1

    def test_cancellation_removes_atom(self):
        e = var("i") - var("i")
        assert e.is_constant()
        assert e.const == 0

    def test_subtraction(self):
        e = (var("i") + 5) - (var("j") + 2)
        assert e.coeff("i") == 1
        assert e.coeff("j") == -1
        assert e.const == 3

    def test_scalar_multiplication(self):
        e = (var("i") + 1) * 4
        assert e.coeff("i") == 4
        assert e.const == 4

    def test_rmul(self):
        assert 3 * var("i") == var("i") * 3

    def test_negation(self):
        e = -(var("i") - 2)
        assert e.coeff("i") == -1
        assert e.const == 2

    def test_multiplying_by_non_int_raises(self):
        with pytest.raises(TypeError):
            var("i") * 1.5

    def test_rsub_with_int(self):
        e = 10 - var("i")
        assert e.const == 10
        assert e.coeff("i") == -1


class TestEqualityAndHashing:
    def test_structural_equality(self):
        assert var("i") + 1 == var("i") + 1
        assert var("i") != var("j")

    def test_hash_consistency(self):
        assert hash(var("i") + 1) == hash(var("i") + 1)

    def test_usable_in_sets(self):
        exprs = {var("i"), var("i"), var("j")}
        assert len(exprs) == 2

    def test_order_of_construction_irrelevant(self):
        a = var("i") + var("j")
        b = var("j") + var("i")
        assert a == b
        assert hash(a) == hash(b)


class TestUFCalls:
    def test_ufs_constructor(self):
        e = AffineExpr.ufs("left", var("j"))
        (atom,) = e.atoms()
        assert isinstance(atom, UFCall)
        assert atom.name == "left"
        assert atom.args == (var("j"),)

    def test_nested_calls(self):
        e = AffineExpr.ufs("sigma", AffineExpr.ufs("left", var("j")))
        assert e.uf_names() == {"sigma", "left"}

    def test_free_vars_include_uf_arguments(self):
        e = AffineExpr.ufs("left", var("j") + var("k"))
        assert e.free_vars() == {"j", "k"}

    def test_top_level_vars_exclude_uf_arguments(self):
        e = var("i") + AffineExpr.ufs("left", var("j"))
        assert e.top_level_vars() == {"i"}

    def test_var_only_inside_uf(self):
        e = var("i") + AffineExpr.ufs("left", var("j"))
        assert e.var_only_inside_uf("j")
        assert not e.var_only_inside_uf("i")
        assert not e.var_only_inside_uf("zzz")

    def test_ufcall_equality(self):
        a = UFCall("f", (var("x"),))
        b = UFCall("f", (var("x"),))
        assert a == b
        assert hash(a) == hash(b)
        assert a != UFCall("g", (var("x"),))

    def test_empty_args_rejected(self):
        with pytest.raises(ValueError):
            UFCall("f", ())

    def test_identical_calls_merge(self):
        e = AffineExpr.ufs("f", var("x")) + AffineExpr.ufs("f", var("x"))
        (atom,) = e.atoms()
        assert e.coeff(atom) == 2


class TestSubstitution:
    def test_simple_substitution(self):
        e = var("i") + 1
        assert e.substitute({"i": var("j") + 2}) == var("j") + 3

    def test_substitution_inside_uf_args(self):
        e = AffineExpr.ufs("left", var("j"))
        result = e.substitute({"j": var("j1") - 1})
        (atom,) = result.atoms()
        assert atom.args == (var("j1") - 1,)

    def test_substitution_missing_vars_untouched(self):
        e = var("i") + var("j")
        assert e.substitute({"i": const(0)}) == var("j")

    def test_rename(self):
        e = var("i") + AffineExpr.ufs("f", var("i"))
        renamed = e.rename({"i": "k"})
        assert renamed.free_vars() == {"k"}

    def test_substitution_scales_replacement(self):
        e = var("i") * 3
        assert e.substitute({"i": var("j") + 1}) == var("j") * 3 + 3


class TestRepr:
    def test_constant_repr(self):
        assert repr(const(7)) == "7"

    def test_combined_repr_roundtrip_visually(self):
        e = var("i") * 2 - var("j") + 5
        text = repr(e)
        assert "2i" in text and "-j" in text and "+5" in text

    def test_uf_repr(self):
        e = AffineExpr.ufs("left", var("j"))
        assert repr(e) == "left(j)"
