"""Tests for the ``python -m repro`` command-line interface."""

import pathlib

import pytest

from repro.__main__ import main

#: The shipped example plan specs (what the CI lint gate runs over).
PLANS = pathlib.Path(__file__).resolve().parent.parent / "examples" / "plans"


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "256"]) == 0
        out = capsys.readouterr().out
        assert "mol1" in out and "edges_per_node" in out

    def test_describe_prints_specs(self, capsys):
        assert main(["describe", "irreg"]) == 0
        out = capsys.readouterr().out
        assert "I0 for kernel 'irreg'" in out
        assert "M[x]" in out
        assert "left(" in out
        assert "reduction" in out

    def test_plan_reports_legality(self, capsys):
        assert main(["plan", "moldyn", "cpack", "lexgroup"]) == 0
        out = capsys.readouterr().out
        assert "CompositionPlan" in out
        assert "legal" in out

    def test_plan_fst_notes_discharge(self, capsys):
        assert main(["plan", "moldyn", "cpack", "lexgroup", "fst"]) == 0
        out = capsys.readouterr().out
        assert "inspector traverses dependences" in out

    def test_plan_unknown_step(self):
        with pytest.raises(SystemExit):
            main(["plan", "moldyn", "unroll-and-jam"])

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["describe", "spmv"])

    def test_figure_small_scale(self, capsys):
        assert main(["figure16", "--scale", "256"]) == 0
        out = capsys.readouterr().out
        assert "percent_reduction" in out

    def test_quickstart(self, capsys):
        assert main(["quickstart", "--scale", "256", "--dataset", "foil"]) == 0
        out = capsys.readouterr().out
        assert "normalized" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestTypedErrorHandling:
    """Typed errors exit nonzero with a one-line message, no traceback."""

    def test_unknown_dataset_exits_nonzero(self, capsys):
        assert main(["quickstart", "--dataset", "nope"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: BindError:")
        assert "unknown dataset" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_unknown_kernel_exits_nonzero(self, capsys):
        assert main(["quickstart", "--kernel", "spmv"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: BindError:")
        assert "unknown kernel" in err

    def test_doctor_unknown_dataset_exits_nonzero(self, capsys):
        assert main(["doctor", "--dataset", "nope"]) == 2
        err = capsys.readouterr().err
        assert "error: BindError:" in err and "hint" in err

    def test_malformed_composition_is_typed(self, capsys):
        # tilePack without a prior tiling step used to escape as a raw
        # ValueError traceback from the relation algebra.
        assert main(
            ["doctor", "--scale", "256", "cpack", "tilepack"]
        ) == 2
        err = capsys.readouterr().err
        assert "error: LegalityError:" in err
        assert "tilepack" in err


class TestLint:
    def test_clean_plan_exits_zero(self, capsys):
        assert main(["lint", "moldyn", "cpack", "lexgroup", "fst"]) == 0
        out = capsys.readouterr().out
        assert "AnalysisReport" in out
        assert "clean" in out

    def test_warning_exits_zero_unless_strict(self, capsys):
        argv = ["lint", str(PLANS / "fig16_remap_each.json")]
        assert main(argv) == 0
        assert "RRT001" in capsys.readouterr().out
        assert main(argv + ["--strict"]) == 1

    def test_inline_remap_flag(self, capsys):
        assert main(
            ["lint", "moldyn", "cpack", "lexgroup", "fst", "tilepack",
             "--remap", "each", "--strict"]
        ) == 1
        assert "RRT001" in capsys.readouterr().out

    def test_fix_discharges_the_warning(self, capsys):
        assert main(
            ["lint", str(PLANS / "fst_no_symmetry.json"), "--fix",
             "--strict"]
        ) == 0
        out = capsys.readouterr().out
        assert "applied 1 rewrite(s)" in out
        assert "use_symmetry=True" in out

    def test_json_output_is_machine_readable(self, capsys):
        import json

        assert main(
            ["lint", str(PLANS / "fig16_remap_each.json"), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["codes"] == ["RRT001"]
        assert payload["fixes_applied"] == []

    def test_json_output_records_fixes(self, capsys):
        import json

        assert main(
            ["lint", str(PLANS / "fig16_remap_each.json"), "--json",
             "--fix"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["codes"] == []
        assert [f["code"] for f in payload["fixes_applied"]] == ["RRT001"]

    def test_missing_spec_file_is_typed(self, capsys):
        assert main(["lint", "no_such_plan.json"]) == 2
        assert "error: BindError:" in capsys.readouterr().err

    def test_kernel_without_steps_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "moldyn"])


class TestDoctor:
    def test_doctor_passes_on_generated_dataset(self, capsys):
        rc = main(
            ["doctor", "--kernel", "irreg", "--dataset", "foil",
             "--scale", "256"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "PipelineReport" in out
        assert "validation of Dataset('foil')" in out
        assert "all checks passed" in out
        assert "verified bit-identical" in out

    def test_doctor_accepts_steps_and_policy(self, capsys):
        rc = main(
            ["doctor", "--dataset", "mol1", "--scale", "256", "--permissive",
             "--on-stage-failure", "identity", "cpack", "lexgroup"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "stage 0 [cpack]: ok" in out

    def test_doctor_reports_analysis_health(self, capsys):
        rc = main(["doctor", "--dataset", "mol1", "--scale", "256"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "AnalysisReport" in out
        assert "clean: 5 rule(s) found nothing" in out
        assert "analysis: 0 error(s), 0 warning(s)" in out

    def test_doctor_counts_lint_warnings_in_verdict(self, capsys):
        rc = main(
            ["doctor", "--dataset", "mol1", "--scale", "256",
             "cpack", "lexgroup", "lexsort"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "RRT002" in out
        assert "all checks passed (1 lint warning(s))" in out

    def test_quickstart_accepts_policy_flags(self, capsys):
        assert main(
            ["quickstart", "--scale", "256", "--dataset", "foil",
             "--permissive"]
        ) == 0
        assert "normalized" in capsys.readouterr().out


class TestLintIR:
    """The ``lint --ir`` bridge into the IR verifier, and stdin specs."""

    @pytest.fixture(autouse=True)
    def _isolated(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR_SANITIZE", raising=False)
        monkeypatch.setenv("REPRO_PLANCACHE_DIR", str(tmp_path / "cache"))

    def test_lint_ir_proves_example_plan(self, capsys):
        spec = str(PLANS / "cpack_lexgroup_fst.json")
        assert main(["lint", "--ir", spec]) == 0
        out = capsys.readouterr().out
        assert "irverify [untiled]: proven" in out
        assert "irverify [tiled]: proven" in out

    def test_lint_ir_json_payload(self, capsys):
        import json as _json

        spec = str(PLANS / "cpack_lexgroup_fst.json")
        assert main(["lint", "--ir", "--json", spec]) == 0
        payload = _json.loads(capsys.readouterr().out)
        assert set(payload["irverify"]) == {"untiled", "tiled"}
        for shape in payload["irverify"].values():
            assert shape["proven"] is True
            assert shape["version"] == "irverify-2"
        assert "IRV001" in payload["rules_run"]

    def test_lint_reads_spec_from_stdin(self, capsys, monkeypatch):
        import io

        spec_text = (PLANS / "cpack_lexgroup_fst.json").read_text()
        monkeypatch.setattr("sys.stdin", io.StringIO(spec_text))
        assert main(["lint", "-"]) == 0
        assert "AnalysisReport" in capsys.readouterr().out

    def test_lint_stdin_rejects_malformed_json(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("{ nope"))
        assert main(["lint", "-"]) == 2
        err = capsys.readouterr().err
        assert "ValidationError" in err and "not valid JSON" in err


class TestCacheGC:
    def test_cache_gc_reports_eviction(self, capsys, tmp_path):
        from repro.plancache.artifacts import ArtifactStore

        store = ArtifactStore(tmp_path)
        store.put_text("aa01", "c", "x" * 100)
        store.put_text("bb02", "c", "y" * 100)
        rc = main(
            ["cache", "gc", "--max-bytes", "150",
             "--cache-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "artifact gc: removed 1 file(s)" in out
        assert len(store.keys()) == 1

    def test_cache_gc_rejects_negative_budget(self, capsys, tmp_path):
        rc = main(
            ["cache", "gc", "--max-bytes=-5",
             "--cache-dir", str(tmp_path)]
        )
        assert rc == 2
        assert "CacheError" in capsys.readouterr().err
