"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "256"]) == 0
        out = capsys.readouterr().out
        assert "mol1" in out and "edges_per_node" in out

    def test_describe_prints_specs(self, capsys):
        assert main(["describe", "irreg"]) == 0
        out = capsys.readouterr().out
        assert "I0 for kernel 'irreg'" in out
        assert "M[x]" in out
        assert "left(" in out
        assert "reduction" in out

    def test_plan_reports_legality(self, capsys):
        assert main(["plan", "moldyn", "cpack", "lexgroup"]) == 0
        out = capsys.readouterr().out
        assert "CompositionPlan" in out
        assert "legal" in out

    def test_plan_fst_notes_discharge(self, capsys):
        assert main(["plan", "moldyn", "cpack", "lexgroup", "fst"]) == 0
        out = capsys.readouterr().out
        assert "inspector traverses dependences" in out

    def test_plan_unknown_step(self):
        with pytest.raises(SystemExit):
            main(["plan", "moldyn", "unroll-and-jam"])

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["describe", "spmv"])

    def test_figure_small_scale(self, capsys):
        assert main(["figure16", "--scale", "256"]) == 0
        out = capsys.readouterr().out
        assert "percent_reduction" in out

    def test_quickstart(self, capsys):
        assert main(["quickstart", "--scale", "256", "--dataset", "foil"]) == 0
        out = capsys.readouterr().out
        assert "normalized" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
