"""JSON plan specs: the declarative surface ``repro lint`` consumes."""

import json

import pytest

from repro.errors import BindError, ValidationError
from repro.runtime.planspec import (
    STEP_TYPES,
    load_plan_spec,
    make_step,
    plan_from_spec,
)


class TestMakeStep:
    def test_defaults_cover_required_parameters(self):
        for name in STEP_TYPES:
            step = make_step(name)
            assert step.name

    def test_parameters_pass_through(self):
        step = make_step("fst", seed_block_size=32, use_symmetry=False)
        assert step.seed_block_size == 32
        assert step.use_symmetry is False

    def test_unknown_type_is_a_typed_error(self):
        with pytest.raises(BindError, match="unknown step type"):
            make_step("unroll-and-jam")

    def test_unknown_parameter_is_a_typed_error(self):
        with pytest.raises(ValidationError, match="bad parameters"):
            make_step("cpack", block_size=8)


class TestPlanFromSpec:
    def test_full_spec_round_trip(self):
        plan = plan_from_spec(
            {
                "kernel": "moldyn",
                "name": "fig16",
                "remap": "each",
                "steps": [
                    "cpack",
                    {"type": "fst", "seed_block_size": 64},
                ],
            }
        )
        assert plan.name == "fig16"
        assert plan.remap == "each"
        assert [s.name for s in plan.steps] == ["cpack", "fst"]
        assert plan.steps[1].seed_block_size == 64

    def test_missing_kernel_rejected(self):
        with pytest.raises(ValidationError, match="missing 'kernel'"):
            plan_from_spec({"steps": ["cpack"]})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValidationError, match="unknown plan spec key"):
            plan_from_spec({"kernel": "moldyn", "remaps": "once"})

    def test_malformed_step_entry_rejected(self):
        with pytest.raises(ValidationError, match="step 0"):
            plan_from_spec({"kernel": "moldyn", "steps": [{"params": {}}]})


class TestLoadPlanSpec:
    def test_loads_and_lints_the_shipped_examples(self):
        import pathlib

        plans_dir = pathlib.Path(__file__).resolve().parents[2] / "examples" / "plans"
        specs = sorted(plans_dir.glob("*.json"))
        assert len(specs) >= 3
        for path in specs:
            plan = load_plan_spec(str(path))
            report = plan.analyze()
            # example plans must never carry errors (warnings are the
            # point of the dirty ones) — the CI lint gate relies on it.
            assert report.exit_code() == 0

    def test_missing_file_is_a_typed_error(self, tmp_path):
        with pytest.raises(BindError, match="not found"):
            load_plan_spec(str(tmp_path / "nope.json"))

    def test_invalid_json_is_a_typed_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_plan_spec(str(path))

    def test_spec_file_round_trips(self, tmp_path):
        spec = {
            "kernel": "moldyn",
            "remap": "each",
            "steps": ["cpack", "lexgroup", "fst", "tilepack"],
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(spec))
        plan = load_plan_spec(str(path))
        assert "RRT001" in {d.code for d in plan.analyze().diagnostics}
