"""The def/use dataflow graph underneath the lint rules."""

from repro.analysis import build_dataflow
from repro.analysis.dataflow import EXECUTOR_READS, WRITE_AFFECTS

from tests.analysis.conftest import plan_of


class TestStageNodes:
    def test_one_node_per_step_with_traits(self, clean_plan):
        graph = build_dataflow(clean_plan)
        assert [s.name for s in graph.stages] == ["cpack", "lg", "fst"]
        cpack, lg, fst = graph.stages
        assert "node_space" in cpack.writes
        assert set(lg.writes) == {"inter_order"}
        assert "dependences" in fst.reads and "tiling" in fst.writes

    def test_defines_are_the_stage_ufs_names(self, clean_plan):
        graph = build_dataflow(clean_plan)
        assert graph.defined_names() == {"cp0": 0, "lg1": 1, "theta2": 2}

    def test_data_remaps_count_data_reorderings(self, fig16_plan):
        graph = build_dataflow(fig16_plan)
        assert [s.data_remaps for s in graph.stages] == [1, 0, 0, 1]

    def test_unproven_reports_surface(self, unproven_plan):
        graph = build_dataflow(unproven_plan)
        assert graph.stages[1].unproven_reports
        assert graph.stages[1].obligations
        assert graph.summary()["unproven_stages"] == [1]


class TestEdges:
    def test_executor_is_the_final_consumer(self, clean_plan):
        graph = build_dataflow(clean_plan)
        for stage in graph.stages:
            assert graph.EXECUTOR in graph.consumers(stage.index)

    def test_cpack_feeds_dependence_inspecting_fst(self, clean_plan):
        graph = build_dataflow(clean_plan)
        # cpack relabels dependence endpoints; fst reads dependences.
        assert 2 in graph.consumers(0)

    def test_next_writer_and_readers_of(self):
        graph = build_dataflow(plan_of("lexgroup", "cpack", "lexsort"))
        assert graph.next_writer(0, "inter_order") == 2
        assert graph.readers_of("index_values", 0, 2) == [1]

    def test_write_affects_covers_all_executor_reads(self):
        affected = {r for rs in WRITE_AFFECTS.values() for r in rs}
        # every executor input can be produced by some write
        assert set(EXECUTOR_READS) - affected == set()


class TestPayloadMoves:
    def test_remap_each_moves_per_data_reordering(self, fig16_plan):
        assert build_dataflow(fig16_plan).payload_moves() == 2

    def test_remap_once_moves_once(self):
        plan = plan_of("cpack", "rcm", remap="once")
        assert build_dataflow(plan).payload_moves() == 1

    def test_no_data_reordering_moves_nothing(self):
        assert build_dataflow(plan_of("lexgroup")).payload_moves() == 0


class TestLazyPlanning:
    def test_builds_from_unplanned_plan(self):
        plan = plan_of("cpack", "lexgroup")
        assert plan._planned is None
        graph = build_dataflow(plan)
        assert len(graph.stages) == 2

    def test_describe_mentions_every_stage(self, clean_plan):
        text = build_dataflow(clean_plan).describe()
        assert "stage 0 [cpack]" in text
        assert "executor" in text
