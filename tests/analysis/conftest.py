"""Shared fixture plans for the static-analysis test suite."""

import pytest

from repro.kernels.specs import kernel_by_name
from repro.runtime import CompositionPlan, make_step
from repro.runtime.inspector import FullSparseTilingStep
from repro.transforms.base import tile_insert_relation
from repro.uniform.state import IterationReordering


class UninspectedTilingStep(FullSparseTilingStep):
    """A sparse-tiling step whose symbolic form does *not* claim
    dependence inspection.

    Its tile-insert relation carries the same legality obligations as
    real full sparse tiling, but nothing discharges them — the RRT003
    fixture: unproven obligations with no coverage.
    """

    name = "fst-uninspected"

    def symbolic(self, kernel, index):
        T = tile_insert_relation(f"theta{index}")
        return [
            IterationReordering(
                T,
                label=self.name,
                introduces=(f"theta{index}",),
                inspects_dependences=False,
            )
        ]


def plan_of(*step_names, kernel="moldyn", remap="once", **plan_kwargs):
    """A CompositionPlan over spec-style step names."""
    return CompositionPlan(
        kernel_by_name(kernel),
        [make_step(name) for name in step_names],
        remap=remap,
        **plan_kwargs,
    )


@pytest.fixture
def clean_plan():
    """The paper's baseline composition — lints clean."""
    return plan_of("cpack", "lexgroup", "fst")


@pytest.fixture
def fig16_plan():
    """Two data reorderings under remap='each' — the RRT001 fixture."""
    return CompositionPlan(
        kernel_by_name("moldyn"),
        [
            make_step("cpack"),
            make_step("lexgroup"),
            make_step("fst", seed_block_size=64),
            make_step("tilepack"),
        ],
        name="fig16-remap-each",
        remap="each",
    )


@pytest.fixture
def no_symmetry_plan():
    """FST traversing both symmetric edge sets — the RRT004 fixture."""
    return CompositionPlan(
        kernel_by_name("moldyn"),
        [
            make_step("cpack"),
            make_step("fst", seed_block_size=64, use_symmetry=False),
        ],
        name="fst-both-edge-sets",
    )


@pytest.fixture
def unproven_plan():
    """A tiling whose obligations nothing discharges — the RRT003 fixture."""
    return CompositionPlan(
        kernel_by_name("moldyn"),
        [make_step("cpack"), UninspectedTilingStep(64)],
        name="uninspected-tiling",
    )
