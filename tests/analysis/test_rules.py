"""Each lint rule: a fixture plan that fires it, and a clean negative."""

import pytest

from repro.analysis import RULES, analyze_plan
from repro.analysis.diagnostics import ERROR, INFO, WARNING
from repro.errors import ValidationError

from tests.analysis.conftest import plan_of


def codes(report):
    return {d.code for d in report.diagnostics}


class TestRRT001RedundantRemap:
    def test_fires_on_fig16_remap_each(self, fig16_plan):
        report = analyze_plan(fig16_plan)
        findings = report.by_code("RRT001")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.severity == WARNING
        assert finding.fixable
        assert finding.stage_index == 0  # the intermediate mover
        assert finding.related_stages == [3]  # the final mover
        assert "Figure 16" in finding.message

    def test_clean_under_remap_once(self):
        # same two data reorderings as fig16, composed into a single move
        once = plan_of("cpack", "lexgroup", "fst", "tilepack", remap="once")
        assert not analyze_plan(once).by_code("RRT001")

    def test_clean_with_single_data_reordering(self):
        plan = plan_of("cpack", "lexgroup", remap="each")
        assert not analyze_plan(plan).by_code("RRT001")


class TestRRT002DeadReordering:
    def test_fires_on_lexgroup_then_lexsort(self):
        report = analyze_plan(plan_of("lexgroup", "lexsort"))
        (finding,) = report.by_code("RRT002")
        assert finding.severity == WARNING
        assert finding.stage_index == 0
        assert finding.related_stages == [1]

    def test_clean_when_overwriter_is_order_sensitive(self):
        # lexgroup builds on the existing order — the first stage is live.
        assert not analyze_plan(plan_of("lexsort", "lexgroup")).by_code("RRT002")

    def test_clean_when_a_reader_intervenes(self):
        # cpack consumes the iteration order (first-touch traversal)
        # between the two permutations — the first one is live.
        plan = plan_of("lexgroup", "cpack", "lexsort")
        assert not analyze_plan(plan).by_code("RRT002")


class TestRRT003UnprovenObligations:
    def test_fires_as_error_without_verifier_coverage(self, unproven_plan):
        report = analyze_plan(unproven_plan)
        findings = report.by_code("RRT003")
        assert findings
        assert all(f.severity == ERROR for f in findings)
        assert report.exit_code() == 1
        assert {f.stage_index for f in findings} == {1}

    def test_demoted_to_warning_under_verifier_always(self, unproven_plan):
        report = analyze_plan(unproven_plan, verifier="always")
        findings = report.by_code("RRT003")
        assert findings
        assert all(f.severity == WARNING for f in findings)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_clean_when_inspector_discharges(self, clean_plan):
        # real fst claims inspects_dependences — obligations discharged.
        assert not analyze_plan(clean_plan).by_code("RRT003")


class TestRRT004SymmetricTraversal:
    def test_fires_on_use_symmetry_false(self, no_symmetry_plan):
        (finding,) = analyze_plan(no_symmetry_plan).by_code("RRT004")
        assert finding.severity == WARNING
        assert finding.fixable
        assert finding.stage_index == 1
        assert "Section 6" in finding.message

    def test_clean_with_symmetry_enabled(self, clean_plan):
        assert not analyze_plan(clean_plan).by_code("RRT004")

    def test_clean_on_single_node_loop_kernel(self):
        from repro.kernels.specs import kernel_by_name
        from repro.runtime import CompositionPlan, make_step
        from repro.runtime.inspector import node_loop_positions

        kernel = kernel_by_name("nbf")
        if len(node_loop_positions(kernel)) >= 2:
            pytest.skip("nbf grew a second node loop")
        plan = CompositionPlan(
            kernel,
            [make_step("fst", seed_block_size=64, use_symmetry=False)],
        )
        assert not analyze_plan(plan).by_code("RRT004")


class TestRRT005FusablePermutations:
    def test_fires_on_adjacent_data_permutations(self):
        (finding,) = analyze_plan(plan_of("cpack", "rcm")).by_code("RRT005")
        assert finding.severity == INFO
        assert finding.related_stages == [1]

    def test_does_not_double_report_the_dead_stage_case(self):
        report = analyze_plan(plan_of("lexgroup", "lexsort"))
        assert report.by_code("RRT002")
        assert not report.by_code("RRT005")

    def test_clean_on_mixed_spaces(self, clean_plan):
        assert not analyze_plan(clean_plan).by_code("RRT005")


class TestRuleSelection:
    def test_restricting_rules_runs_only_those(self, fig16_plan):
        report = analyze_plan(fig16_plan, rules=("RRT002",))
        assert report.rules_run == ["RRT002"]
        assert not report.diagnostics

    def test_unknown_rule_code_rejected(self, clean_plan):
        with pytest.raises(ValidationError):
            analyze_plan(clean_plan, rules=("RRT099",))

    def test_unknown_verifier_policy_rejected(self, clean_plan):
        with pytest.raises(ValidationError):
            analyze_plan(clean_plan, verifier="sometimes")

    def test_registry_is_the_stable_catalog(self):
        assert sorted(RULES) == [
            "RRT001", "RRT002", "RRT003", "RRT004", "RRT005",
        ]


class TestReportPlumbing:
    def test_clean_plan_reports_clean(self, clean_plan):
        report = analyze_plan(clean_plan)
        assert report.clean
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0
        assert "clean" in report.describe()

    def test_to_dict_round_trips_through_json(self, fig16_plan):
        import json

        payload = json.loads(analyze_plan(fig16_plan).to_json())
        assert payload["summary"]["warnings"] == 1
        assert payload["diagnostics"][0]["code"] == "RRT001"
        assert payload["dataflow"]["payload_moves"] == 2

    def test_analyze_summary_lands_in_pipeline_report(self, no_symmetry_plan):
        from repro.kernels.data import make_kernel_data
        from repro.kernels.datasets import generate_dataset

        no_symmetry_plan.analyze()
        data = make_kernel_data("moldyn", generate_dataset("mol1", scale=256))
        result = no_symmetry_plan.bind(data)
        assert result.report.analysis == {
            "errors": 0,
            "warnings": 1,
            "infos": 0,
            "fixable": 1,
            "codes": ["RRT004"],
        }
        assert "RRT004" in result.report.describe()
