"""The opt-in optimizer: safe fixes, proven bit-identical at run time."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import FIXABLE_CODES, analyze_plan, apply_fixes
from repro.kernels.data import make_kernel_data
from repro.kernels.datasets import generate_dataset
from repro.kernels.specs import kernel_by_name
from repro.plancache.fingerprint import plan_fingerprint
from repro.runtime import CompositionPlan, make_step, verify_numeric_equivalence

SCALE = 256  # small inputs: the property binds every example twice


class TestApplyFixes:
    def test_remap_once_rewrite(self, fig16_plan):
        result = apply_fixes(fig16_plan)
        assert result.changed
        assert [r.code for r in result.applied] == ["RRT001"]
        assert result.plan is not fig16_plan
        assert result.plan.remap == "once"
        assert fig16_plan.remap == "each"  # input never mutated
        assert not analyze_plan(result.plan).by_code("RRT001")

    def test_symmetry_rewrite(self, no_symmetry_plan):
        result = apply_fixes(no_symmetry_plan)
        assert [r.code for r in result.applied] == ["RRT004"]
        assert result.applied[0].stage_index == 1
        assert result.plan.steps[1].use_symmetry is True
        assert no_symmetry_plan.steps[1].use_symmetry is False
        assert not analyze_plan(result.plan).by_code("RRT004")

    def test_clean_plan_returned_unchanged(self, clean_plan):
        result = apply_fixes(clean_plan)
        assert not result.changed
        assert result.plan is clean_plan
        assert "no applicable rewrites" in result.describe()

    def test_codes_restrict_the_rewrites(self, fig16_plan):
        result = apply_fixes(fig16_plan, codes=("RRT004",))
        assert not result.changed

    def test_fixable_codes_match_rule_fixability(self, fig16_plan, no_symmetry_plan):
        for plan in (fig16_plan, no_symmetry_plan):
            for diagnostic in analyze_plan(plan).fixable:
                assert diagnostic.code in FIXABLE_CODES

    def test_optimized_is_the_plan_level_entry_point(self, fig16_plan):
        assert fig16_plan.optimized().remap == "once"


class TestFingerprints:
    """Rewrites must be visible to the content-addressed plan cache."""

    def test_remap_rewrite_changes_the_fingerprint(self, fig16_plan):
        fixed = apply_fixes(fig16_plan).plan
        assert plan_fingerprint(fixed) != plan_fingerprint(fig16_plan)

    def test_symmetry_rewrite_changes_the_fingerprint(self, no_symmetry_plan):
        fixed = apply_fixes(no_symmetry_plan).plan
        assert plan_fingerprint(fixed) != plan_fingerprint(no_symmetry_plan)

    def test_no_rewrite_keeps_the_fingerprint(self, clean_plan):
        assert plan_fingerprint(apply_fixes(clean_plan).plan) == plan_fingerprint(
            clean_plan
        )


def _bit_identical(dirty: CompositionPlan, fixed: CompositionPlan, data):
    dirty_result = dirty.bind(data.copy())
    fixed_result = fixed.bind(data.copy())
    assert np.array_equal(
        dirty_result.sigma_nodes.array, fixed_result.sigma_nodes.array
    )
    assert np.array_equal(
        dirty_result.transformed.left, fixed_result.transformed.left
    )
    assert np.array_equal(
        dirty_result.transformed.right, fixed_result.transformed.right
    )
    for name in dirty_result.transformed.arrays:
        assert np.array_equal(
            dirty_result.transformed.arrays[name],
            fixed_result.transformed.arrays[name],
        )
    # and both match the untransformed kernel under pullback
    assert verify_numeric_equivalence(data.copy(), fixed_result)


class TestRewritesAreBitIdentical:
    """The acceptance bar: ``--fix`` output is bit-identical under the
    runtime verifier, over a property-sampled space of dirty plans."""

    @settings(max_examples=6, deadline=None)
    @given(
        dataset=st.sampled_from(["mol1", "mol2"]),
        seed_block_size=st.sampled_from([32, 64, 128]),
        lexgroup=st.booleans(),
        use_symmetry=st.booleans(),
        tilepack=st.booleans(),
    )
    def test_fixed_plans_bind_bit_identically(
        self, dataset, seed_block_size, lexgroup, use_symmetry, tilepack
    ):
        steps = [make_step("cpack")]
        if lexgroup:
            steps.append(make_step("lexgroup"))
        steps.append(
            make_step(
                "fst",
                seed_block_size=seed_block_size,
                use_symmetry=use_symmetry,
            )
        )
        if tilepack:
            steps.append(make_step("tilepack"))
        dirty = CompositionPlan(
            kernel_by_name("moldyn"), steps, remap="each"
        )
        result = apply_fixes(dirty)
        assume(result.changed)
        data = make_kernel_data(
            "moldyn", generate_dataset(dataset, scale=SCALE)
        )
        _bit_identical(dirty, result.plan, data)
