"""The IR verifier: bounds proofs, race/commit checks, translation
validation, stable IRV codes, and the content-addressed proof cache.

Every kernel x executor shape must verify clean; every deliberately
broken fixture must be rejected with its rule's stable code; warm binds
must reuse the cached proof instead of re-running the verifier.
"""

import json

import pytest

from repro.analysis import irverify as iv
from repro.analysis.diagnostics import ERROR
from repro.errors import LegalityError
from repro.lowering.executor import (
    _rewritten,
    clear_executor_memo,
    compile_executor,
)
from repro.lowering.ir import Commit, GatherCommit, replace
from repro.lowering.passes import PassConfig

KERNELS = ("moldyn", "nbf", "irreg")


@pytest.fixture(autouse=True)
def _isolated_artifacts(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_EXECUTOR_SANITIZE", raising=False)
    monkeypatch.setenv("REPRO_PLANCACHE_DIR", str(tmp_path / "cache"))
    clear_executor_memo()
    yield
    clear_executor_memo()


class TestCleanPrograms:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("tiled", [False, True])
    def test_every_kernel_proves_clean(self, kernel, tiled):
        report = iv.verify_executor(kernel, tiled=tiled)
        assert report.proven, report.describe()
        assert not report.diagnostics
        summary = report.summary()
        assert summary["obligations"] > 0
        assert summary["discharged"] == summary["obligations"]
        # Every pipeline pass carries a validation proof (fission,
        # blocking, vectorize, parallelize, dynamic-schedule).
        assert len(report.pass_proofs) == 5
        assert all(p["equivalent"] for p in report.pass_proofs)

    def test_pass_records_carry_proof_artifacts(self):
        state = _rewritten("moldyn", True, PassConfig())
        iv.verify_state(state)
        for rec in state.log:
            assert rec.proof is not None
            assert rec.proof["equivalent"]
            assert rec.proof["version"] == iv.IRVERIFY_VERSION

    @pytest.mark.parametrize("tiled", [False, True])
    def test_ablated_configs_still_prove(self, tiled):
        for config in (
            PassConfig(vectorize=False),
            PassConfig(parallelize=False),
            PassConfig(fission=False, vectorize=False, parallelize=False),
        ):
            report = iv.verify_executor("moldyn", tiled=tiled, config=config)
            assert report.proven, report.describe()

    def test_assumed_facts_name_the_sanitizer_discharges(self):
        untiled = iv.verify_executor("moldyn", tiled=False)
        assert {f.name for f in untiled.assumed} == {"index-array-range"}
        tiled = iv.verify_executor("moldyn", tiled=True)
        assert {"tile-partition", "wave-cover", "schedule-legality"} <= {
            f.name for f in tiled.assumed
        }

    def test_report_serializes(self):
        report = iv.verify_executor("nbf", tiled=True)
        payload = json.loads(report.to_json())
        assert payload["proven"] is True
        assert payload["summary"]["obligations"] == len(report.obligations)


class TestBrokenFixtures:
    """One deliberately broken program per IRV rule, each rejected with
    its stable code."""

    def test_irv001_unprovable_bounds(self):
        # Iterate a node loop over the interaction extent: x[i] with
        # i < num_inter cannot be proven < num_nodes.
        state = _rewritten("moldyn", False, PassConfig())
        loops = list(state.program.loops)
        for pos, loop in enumerate(loops):
            if loop.domain == "nodes":
                loops[pos] = replace(loop, extent="num_inter")
                break
        state.program = replace(state.program, loops=tuple(loops))
        report = iv.verify_state(state)
        assert not report.proven
        assert report.by_code(iv.IRV_BOUNDS)
        assert any(not ob.discharged for ob in report.obligations)

    def test_irv002_scalar_interaction_loop_under_waves(self):
        state = _rewritten("moldyn", True, PassConfig())
        loops = tuple(
            replace(loop, fissioned=None, vector=False)
            if loop.domain == "inters"
            else loop
            for loop in state.program.loops
        )
        state.program = replace(state.program, loops=loops)
        report = iv.verify_state(state)
        assert not report.proven
        diag = report.by_code(iv.IRV_RACE)[0]
        assert diag.severity == ERROR
        assert "race" in diag.message

    def test_irv003_waves_without_schedule(self):
        state = _rewritten("moldyn", False, PassConfig())
        state.program = replace(state.program, wave_parallel=True)
        report = iv.verify_state(state)
        assert not report.proven
        assert report.by_code(iv.IRV_COMMIT_ORDER)

    def test_irv004_tampered_pass_output(self):
        # Flip every commit sign in the final program: the reduction
        # contributions change value, so translation validation fails.
        state = _rewritten("moldyn", False, PassConfig())
        loops = []
        for loop in state.program.loops:
            if loop.fissioned is not None:
                gc = loop.fissioned
                flipped = GatherCommit(
                    gc.payload,
                    tuple(
                        Commit(c.array, c.via, -c.sign, c.label)
                        for c in gc.commits
                    ),
                )
                loop = replace(loop, fissioned=flipped)
            loops.append(loop)
        state.program = replace(state.program, loops=tuple(loops))
        state.log[-1].after = state.program
        report = iv.verify_state(state)
        assert not report.proven
        assert report.by_code(iv.IRV_TRANSLATION)

    def test_irv005_unknown_array(self):
        state = _rewritten("moldyn", False, PassConfig())
        loops = list(state.program.loops)
        stmt = replace(loops[0].stmts[0], array="bogus")
        loops[0] = replace(loops[0], stmts=(stmt,) + loops[0].stmts[1:])
        state.program = replace(state.program, loops=tuple(loops))
        report = iv.verify_state(state)
        assert not report.proven
        assert report.by_code(iv.IRV_MALFORMED)
        # Translation validation is skipped on malformed IR (it cannot
        # interpret unknown arrays), never crashed.
        assert not report.by_code(iv.IRV_TRANSLATION)

    def test_unknown_kernel_is_irv005(self):
        state = _rewritten("moldyn", False, PassConfig())
        state.program = replace(state.program, kernel_name="nope")
        report = iv.verify_state(state)
        assert report.by_code(iv.IRV_MALFORMED)


class TestProofCache:
    def test_proof_key_salts(self):
        state = _rewritten("moldyn", False, PassConfig())
        base = iv.proof_key(state.program, state.config, False)
        assert base != iv.proof_key(state.program, state.config, True)
        assert base != iv.proof_key(
            state.program, PassConfig(vectorize=False), False
        )
        assert len(base) == 64

    def test_warm_bind_skips_verification(self, monkeypatch):
        cold = compile_executor("moldyn", backend="numpy", memo=False)
        assert cold.verified is True
        assert cold.proof_from_cache is False
        assert cold.proof_path is not None

        # Second bind: the proof artifact must satisfy the gate without
        # the verifier running at all.
        def boom(state):  # pragma: no cover - failing path
            raise AssertionError("verifier ran on a warm bind")

        monkeypatch.setattr(iv, "verify_state", boom)
        warm = compile_executor("moldyn", backend="numpy", memo=False)
        assert warm.verified is True
        assert warm.proof_from_cache is True
        assert warm.proof_path == cold.proof_path

    def test_corrupted_proof_is_a_safe_miss(self):
        from pathlib import Path

        cold = compile_executor("moldyn", backend="numpy", memo=False)
        Path(cold.proof_path).write_text("{ not json")
        again = compile_executor("moldyn", backend="numpy", memo=False)
        assert again.verified is True
        assert again.proof_from_cache is False  # re-verified and rewrote
        assert json.loads(Path(again.proof_path).read_text())["proven"]

    def test_library_backend_skips_verification(self):
        compiled = compile_executor("moldyn", backend="library", memo=False)
        assert compiled.verified is None
        assert compiled.proof_path is None

    def test_unproven_program_refused_without_sanitizer(self, monkeypatch):
        def unproven(state):
            report = iv.IRVerificationReport(
                kernel_name="moldyn",
                tiled=False,
                ir_digest="x",
                config_digest="y",
            )
            report.diagnostics.append(
                iv.Diagnostic(
                    code=iv.IRV_BOUNDS,
                    severity=ERROR,
                    message="synthetic unproven obligation",
                )
            )
            return report

        monkeypatch.setattr(iv, "verify_state", unproven)
        with pytest.raises(LegalityError, match="refusing unguarded"):
            compile_executor("moldyn", backend="numpy", memo=False)
        # The sanitizer unlocks the same bind with a guarded build.
        guarded = compile_executor(
            "moldyn", backend="numpy", memo=False, sanitize=True
        )
        assert guarded.sanitized
        assert guarded.verified is False


class TestDiagnosticsBridge:
    def test_verification_diagnostics_contract(self):
        codes, diagnostics, report = iv.verification_diagnostics(
            "moldyn", tiled=True
        )
        assert codes == list(iv.IRV_CODES)
        assert diagnostics == []
        assert report.proven
