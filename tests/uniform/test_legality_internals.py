"""Direct unit tests for the legality machinery internals."""

import pytest

from repro.presburger import Environment, parse_relation
from repro.uniform import (
    DataReordering,
    IterationReordering,
    ProgramState,
    check_data_reordering,
    check_iteration_reordering,
)
from repro.uniform.legality import LegalityReport, Obligation, _violation_relation
from repro.uniform.mappings import Dependence
from repro.uniform.kernel import AccessKind


def make_dep(text, name="dep"):
    return Dependence(
        array="x",
        src_stmt="A",
        dst_stmt="B",
        src_kind=AccessKind.UPDATE,
        dst_kind=AccessKind.READ,
        relation=parse_relation(text),
        is_reduction=False,
    )


class TestViolationRelation:
    def test_identity_never_violates_forward_dep(self):
        dep = make_dep("{[s,l,x,q] -> [s',l',x',q'] : s' = s + 1 && l' = l && x' = x && q' = q}")
        T = parse_relation("{[s,l,x,q] -> [s,l,x,q]}")
        violations = _violation_relation(dep, T)
        assert violations.is_empty_syntactically()

    def test_time_reversal_violates(self):
        dep = make_dep("{[s,l,x,q] -> [s',l',x',q'] : s' = s + 1 && l' = l && x' = x && q' = q}")
        # reverse time: s -> -s
        T = parse_relation("{[s,l,x,q] -> [s1,l,x,q] : s1 = 0 - s}")
        violations = _violation_relation(dep, T)
        assert not violations.is_empty_syntactically()
        # concrete witness: dep (0,..) -> (1,..) maps to (0,..) -> (-1,..)
        env = Environment()
        outs = env.apply_relation(violations, (0, 0, 0, 0))
        assert (-1, 0, 0, 0) in outs

    def test_collapsing_map_violates_via_equality(self):
        """Mapping source and destination to the same point is illegal."""
        dep = make_dep("{[s,l,x,q] -> [s',l',x',q'] : s' = s && l' = l && x' = x + 1 && q' = q && 0 <= x < 4}")
        T = parse_relation("{[s,l,x,q] -> [s,l,x1,q] : x1 = 0}")
        violations = _violation_relation(dep, T)
        env = Environment()
        outs = env.apply_relation(violations, (0, 0, 0, 0))
        assert (0, 0, 0, 0) in outs  # collapsed onto itself

    def test_permutation_ufs_defers_to_obligations(self):
        """With an uninterpreted sigma the order cannot be proven."""
        dep = make_dep(
            "{[s,l,x,q] -> [s',l',x',q'] : s' = s && l' = l && x' = x + 1 && q' = q && 0 <= x < 4}"
        )
        T = parse_relation("{[s,l,x,q] -> [s,l,x1,q] : x1 = sig(x)}")
        violations = _violation_relation(dep, T)
        assert not violations.is_empty_syntactically()


class TestReports:
    def test_report_bool(self):
        assert LegalityReport(proven=True)
        assert not LegalityReport(proven=False)

    def test_obligation_repr(self):
        dep = make_dep("{[s,l,x,q] -> [s',l',x',q'] : s' = s}")
        ob = Obligation(dep, dep.relation)
        assert "d(A->B:x)" in repr(ob)

    def test_data_reordering_report_notes_bijectivity(self, moldyn):
        state = ProgramState.initial(moldyn)
        report = check_data_reordering(state, DataReordering("cp", ("x",)))
        assert any("permutation" in n for n in report.notes)

    def test_skip_reductions_flag(self, moldyn):
        state = ProgramState.initial(moldyn)
        ident = parse_relation("{[s,l,x,q] -> [s,l,x,q]}")
        with_skip = check_iteration_reordering(
            state, IterationReordering(ident), skip_reductions=True
        )
        without = check_iteration_reordering(
            state, IterationReordering(ident), skip_reductions=False
        )
        # identity respects everything either way, but the reduction notes
        # only appear when skipping
        assert any("reduction" in n for n in with_skip.notes)
        assert with_skip.proven
        assert without.proven

    def test_notes_name_proven_dependences(self, moldyn):
        state = ProgramState.initial(moldyn)
        ident = parse_relation("{[s,l,x,q] -> [s,l,x,q]}")
        report = check_iteration_reordering(state, IterationReordering(ident))
        assert any("proven respected" in n for n in report.notes)
