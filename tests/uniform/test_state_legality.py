"""Unit tests for the transformation algebra and legality checks.

These tests walk the paper's Section 5 composition on the simplified moldyn
kernel: CPACK (data), lexGroup (iteration), second CPACK, sparse tiling
shaped relations — asserting the data mappings and dependences thread the
reordering functions the way the paper writes them out.
"""

import pytest

from repro.presburger import Environment, parse_relation
from repro.presburger.ordering import lex_lt
from repro.uniform import (
    DataReordering,
    IterationReordering,
    ProgramState,
    check_data_reordering,
    check_iteration_reordering,
)

SYMS = {"num_steps": 2, "num_nodes": 4, "num_inter": 3}


def make_env(**overrides):
    env = Environment(symbols={**SYMS, **overrides})
    env.bind_array("left", [0, 1, 2])
    env.bind_array("right", [1, 2, 3])
    return env


# The paper's T_{I0->I1}: permute i and k loops by cp, j loop by lg.
T_LEXGROUP = parse_relation(
    "{[s,l,x,q] -> [s,l,x1,q] : l = 0 && x1 = cp(x)}"
    " union {[s,l,x,q] -> [s,l,x1,q] : l = 1 && x1 = lg(x)}"
    " union {[s,l,x,q] -> [s,l,x1,q] : l = 2 && x1 = cp(x)}"
)


class TestInitialState:
    def test_initial_state_shapes(self, moldyn):
        st = ProgramState.initial(moldyn)
        assert st.tuple_arity == 4
        assert set(st.data_mappings) == {"x", "vx", "fx"}
        assert st.history == []

    def test_uf_names(self, moldyn):
        st = ProgramState.initial(moldyn)
        assert st.uf_names() == {"left", "right"}

    def test_non_reduction_dependences_subset(self, moldyn):
        st = ProgramState.initial(moldyn)
        non_red = st.non_reduction_dependences()
        assert 0 < len(non_red) < len(st.dependences)


class TestDataReorderingApplication:
    def test_mapping_composes_cp(self, moldyn):
        st = ProgramState.initial(moldyn).apply_data_reordering(
            DataReordering("cp", ("x", "vx", "fx"))
        )
        env = make_env()
        env.bind_array("cp", [2, 0, 3, 1])
        m = st.data_mappings["x"]
        # S1 at i=1 now touches x1[cp(1)] = x1[0].
        assert env.apply_relation(m, (0, 0, 1, 0)) == [(0,)]
        # S2 at j=0 touches cp(left(0))=cp(0)=2 and cp(right(0))=cp(1)=0.
        assert set(env.apply_relation(m, (0, 1, 0, 0))) == {(2,), (0,)}

    def test_unknown_array_rejected(self, moldyn):
        st = ProgramState.initial(moldyn)
        with pytest.raises(KeyError):
            st.apply_data_reordering(DataReordering("cp", ("nope",)))

    def test_dependences_untouched_by_data_reordering(self, moldyn):
        st0 = ProgramState.initial(moldyn)
        st1 = st0.apply_data_reordering(DataReordering("cp", ("x",)))
        assert [d.relation for d in st0.dependences] == [
            d.relation for d in st1.dependences
        ]

    def test_only_named_arrays_change(self, moldyn):
        st0 = ProgramState.initial(moldyn)
        st1 = st0.apply_data_reordering(DataReordering("cp", ("x",)))
        assert st1.data_mappings["vx"] == st0.data_mappings["vx"]
        assert st1.data_mappings["x"] != st0.data_mappings["x"]

    def test_history_records(self, moldyn):
        r = DataReordering("cp", ("x",))
        st = ProgramState.initial(moldyn).apply(r)
        assert st.history == [r]

    def test_always_legal(self, moldyn):
        st = ProgramState.initial(moldyn)
        report = check_data_reordering(st, DataReordering("cp", ("x",)))
        assert report.proven


class TestIterationReorderingApplication:
    def test_iteration_space_preserved_in_size(self, moldyn):
        st = ProgramState.initial(moldyn).apply_iteration_reordering(
            IterationReordering(T_LEXGROUP, introduces=("cp", "lg"))
        )
        env = make_env()
        env.bind_array("cp", [2, 0, 3, 1])
        env.bind_array("lg", [1, 0, 2])
        pts = list(env.enumerate_set(st.iteration_space))
        # Same cardinality as I0: permutations are bijections.
        assert len(pts) == 2 * (4 + 3 + 3 + 4)

    def test_data_mapping_after_t_names_new_iterations(self, moldyn):
        st = (
            ProgramState.initial(moldyn)
            .apply_data_reordering(DataReordering("cp", ("x", "vx", "fx")))
            .apply_iteration_reordering(
                IterationReordering(T_LEXGROUP, introduces=("cp", "lg"))
            )
        )
        env = make_env()
        env.bind_array("cp", [2, 0, 3, 1])
        env.bind_array("lg", [1, 0, 2])
        m = st.data_mappings["x"]
        # New iteration i1 of loop 0 touches x1[i1] (paper: [s,1,Ocp(i),1] -> [Ocp(i)]).
        for i1 in range(4):
            assert env.apply_relation(m, (0, 0, i1, 0)) == [(i1,)]

    def test_dependences_transformed_and_respected(self, moldyn):
        st = (
            ProgramState.initial(moldyn)
            .apply_data_reordering(DataReordering("cp", ("x", "vx", "fx")))
            .apply_iteration_reordering(
                IterationReordering(T_LEXGROUP, introduces=("cp", "lg"))
            )
        )
        env = make_env()
        env.bind_array("cp", [2, 0, 3, 1])
        env.bind_array("lg", [1, 0, 2])
        for dep in st.dependences:
            if dep.is_reduction:
                continue
            pairs = list(env.enumerate_relation(dep.relation))
            assert pairs, dep.name
            for src, dst in pairs:
                assert lex_lt(src, dst), (dep.name, src, dst)

    def test_arity_mismatch_rejected(self, moldyn):
        st = ProgramState.initial(moldyn)
        bad = parse_relation("{[a, b] -> [a, b1] : b1 = b}")
        with pytest.raises(ValueError):
            st.apply_iteration_reordering(IterationReordering(bad))

    def test_apply_dispatch_type_error(self, moldyn):
        with pytest.raises(TypeError):
            ProgramState.initial(moldyn).apply(42)


class TestLegality:
    def test_lexgroup_legal_on_moldyn(self, moldyn):
        """Only reduction deps are loop-carried within i/j/k: T legal (paper 5.2)."""
        st = ProgramState.initial(moldyn)
        report = check_iteration_reordering(
            st, IterationReordering(T_LEXGROUP, introduces=("cp", "lg"))
        )
        assert report.proven
        assert not report.obligations

    def test_loop_fusion_like_reordering_illegal(self, moldyn):
        """Swapping the i and j loops creates obligations (x flows S1->S2)."""
        swap = parse_relation(
            "{[s,l,x,q] -> [s,1,x,q] : l = 0}"
            " union {[s,l,x,q] -> [s,0,x,q] : l = 1}"
            " union {[s,l,x,q] -> [s,l,x,q] : l = 2}"
        )
        st = ProgramState.initial(moldyn)
        report = check_iteration_reordering(st, IterationReordering(swap))
        assert not report.proven
        assert report.obligations

    def test_inspector_discharges_obligations(self, moldyn):
        """Sparse-tiling-style transformations are legal by construction."""
        swap = parse_relation(
            "{[s,l,x,q] -> [s,1,x,q] : l = 0}"
            " union {[s,l,x,q] -> [s,0,x,q] : l = 1}"
            " union {[s,l,x,q] -> [s,l,x,q] : l = 2}"
        )
        st = ProgramState.initial(moldyn)
        report = check_iteration_reordering(
            st, IterationReordering(swap, inspects_dependences=True)
        )
        assert report.proven
        assert report.obligations  # still reported for the runtime verifier

    def test_identity_legal(self, moldyn):
        ident = parse_relation("{[s,l,x,q] -> [s,l,x,q]}")
        st = ProgramState.initial(moldyn)
        report = check_iteration_reordering(st, IterationReordering(ident))
        assert report.proven


class TestSparseTilingShapedRelations:
    def test_arity_extension(self, moldyn):
        """T_{I2->I3} inserts a tile dimension: 4-tuples -> 5-tuples."""
        tile = parse_relation(
            "{[s,l,x,q] -> [s,t,l,x,q] : t = theta(l, x)}"
        )
        st = ProgramState.initial(moldyn).apply_iteration_reordering(
            IterationReordering(tile, introduces=("theta",), inspects_dependences=True)
        )
        assert st.tuple_arity == 5
        env = make_env()
        env.bind_function("theta", lambda l, x: (l + x) % 2)
        pts = list(env.enumerate_set(st.iteration_space))
        assert len(pts) == 2 * (4 + 3 + 3 + 4)
        assert all(len(p) == 5 for p in pts)

    def test_mapping_survives_arity_extension(self, moldyn):
        tile = parse_relation("{[s,l,x,q] -> [s,t,l,x,q] : t = theta(l, x)}")
        st = ProgramState.initial(moldyn).apply_iteration_reordering(
            IterationReordering(tile, introduces=("theta",), inspects_dependences=True)
        )
        env = make_env()
        env.bind_function("theta", lambda l, x: (l + x) % 2)
        m = st.data_mappings["x"]
        # S1 at i=1, tile theta(0,1)=1: touches x[1].
        assert env.apply_relation(m, (0, 1, 0, 1, 0)) == [(1,)]
        # Wrong tile coordinate: no image.
        assert env.apply_relation(m, (0, 0, 0, 1, 0)) == []
