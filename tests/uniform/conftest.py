"""Shared fixtures: the paper's simplified moldyn kernel (Figure 1)."""

import pytest

from repro.presburger.terms import AffineExpr, var
from repro.uniform import (
    DataArraySpec,
    IndexArraySpec,
    Kernel,
    Loop,
    Statement,
    read,
    reduce_into,
)


def build_simple_moldyn() -> Kernel:
    """Figure 1 of the paper, 0-based::

        do s = 0, num_steps-1
          do i:  x[i] += vx[i] + fx[i]                       (S1)
          do j:  fx[left[j]]  += g(x[left[j]], x[right[j]])  (S2)
                 fx[right[j]] += g(x[left[j]], x[right[j]])  (S3)
          do k:  vx[k] += fx[k]                              (S4)
    """
    xl = AffineExpr.ufs("left", var("j"))
    xr = AffineExpr.ufs("right", var("j"))
    s1 = Statement("S1", [reduce_into("x", "i"), read("vx", "i"), read("fx", "i")])
    s2 = Statement("S2", [reduce_into("fx", xl), read("x", xl), read("x", xr)])
    s3 = Statement("S3", [reduce_into("fx", xr), read("x", xl), read("x", xr)])
    s4 = Statement("S4", [reduce_into("vx", "k"), read("fx", "k")])
    return Kernel(
        "moldyn_simple",
        loops=[
            Loop("Li", "i", "num_nodes", [s1]),
            Loop("Lj", "j", "num_inter", [s2, s3]),
            Loop("Lk", "k", "num_nodes", [s4]),
        ],
        data_arrays=[
            DataArraySpec("x", "num_nodes"),
            DataArraySpec("vx", "num_nodes"),
            DataArraySpec("fx", "num_nodes"),
        ],
        index_arrays=[
            IndexArraySpec("left", "num_inter", "num_nodes"),
            IndexArraySpec("right", "num_inter", "num_nodes"),
        ],
    )


@pytest.fixture
def moldyn():
    return build_simple_moldyn()
