"""Unit tests for the kernel IR and unified iteration space."""

import pytest

from repro.presburger import Environment
from repro.presburger.terms import AffineExpr, var
from repro.uniform import (
    AccessKind,
    DataArraySpec,
    IndexArraySpec,
    Kernel,
    Loop,
    Statement,
    UnifiedSpace,
    read,
    reduce_into,
    write,
)


class TestAccessConstructors:
    def test_read(self):
        acc = read("x", "i")
        assert acc.kind is AccessKind.READ
        assert acc.array == "x"
        assert not acc.kind.writes
        assert acc.kind.reads

    def test_write(self):
        acc = write("x", "i")
        assert acc.kind.writes
        assert not acc.kind.reads

    def test_update_reads_and_writes(self):
        acc = reduce_into("fx", AffineExpr.ufs("left", var("j")))
        assert acc.kind.writes and acc.kind.reads

    def test_index_coerced(self):
        acc = read("x", 0)
        assert acc.index == AffineExpr.constant(0)


class TestKernelValidation:
    def _loop(self, stmt):
        return Loop("L", "i", "n", [stmt])

    def test_unknown_data_array_rejected(self):
        with pytest.raises(ValueError, match="unknown data array"):
            Kernel("k", [self._loop(Statement("S", [read("ghost", "i")]))], [])

    def test_foreign_variable_in_subscript_rejected(self):
        with pytest.raises(ValueError, match="other than the loop index"):
            Kernel(
                "k",
                [self._loop(Statement("S", [read("x", var("z"))]))],
                [DataArraySpec("x", "n")],
            )

    def test_undeclared_index_array_rejected(self):
        with pytest.raises(ValueError, match="undeclared index arrays"):
            Kernel(
                "k",
                [self._loop(Statement("S", [read("x", AffineExpr.ufs("col", var("i")))]))],
                [DataArraySpec("x", "n")],
            )

    def test_duplicate_statement_labels_rejected(self):
        s = Statement("S", [read("x", "i")])
        with pytest.raises(ValueError, match="duplicate statement labels"):
            Kernel(
                "k",
                [Loop("L1", "i", "n", [s]), Loop("L2", "i", "n", [s])],
                [DataArraySpec("x", "n")],
            )

    def test_empty_loop_rejected(self):
        with pytest.raises(ValueError, match="no statements"):
            Loop("L", "i", "n", [])

    def test_no_loops_rejected(self):
        with pytest.raises(ValueError, match="at least one loop"):
            Kernel("k", [], [])

    def test_positions(self, moldyn):
        assert moldyn.loop_position("Lj") == 1
        assert moldyn.statement_position("S3") == (1, 1)
        assert moldyn.statement_position("S4") == (2, 0)
        with pytest.raises(KeyError):
            moldyn.statement_position("S9")

    def test_extent_symbols(self, moldyn):
        assert moldyn.extent_symbols() == {"num_steps", "num_nodes", "num_inter"}


class TestUnifiedSpace:
    def test_statement_count(self, moldyn):
        assert len(moldyn.all_statements()) == 4

    def test_iteration_space_membership(self, moldyn):
        env = Environment(symbols={"num_steps": 2, "num_nodes": 3, "num_inter": 4})
        space = UnifiedSpace(moldyn)
        I0 = space.iteration_space()
        # S1 instance [s=0, l=0, i=2, q=0]
        assert env.set_contains(I0, (0, 0, 2, 0))
        # S3 instance [s=1, l=1, j=3, q=1]
        assert env.set_contains(I0, (1, 1, 3, 1))
        # i out of bounds
        assert not env.set_contains(I0, (0, 0, 3, 0))
        # loop 0 has no second statement
        assert not env.set_contains(I0, (0, 0, 0, 1))
        # no loop 3
        assert not env.set_contains(I0, (0, 3, 0, 0))

    def test_iteration_space_volume(self, moldyn):
        env = Environment(symbols={"num_steps": 2, "num_nodes": 3, "num_inter": 4})
        I0 = UnifiedSpace(moldyn).iteration_space()
        pts = list(env.enumerate_set(I0))
        # per step: 3 (S1) + 4 (S2) + 4 (S3) + 3 (S4) = 14; two steps = 28
        assert len(pts) == 28

    def test_lexicographic_order_is_program_order(self, moldyn):
        env = Environment(symbols={"num_steps": 1, "num_nodes": 2, "num_inter": 2})
        I0 = UnifiedSpace(moldyn).iteration_space()
        pts = list(env.enumerate_set(I0))
        # All loop-0 iterations precede loop-1, which precede loop-2.
        loops = [p[1] for p in pts]
        assert loops == sorted(loops)
        # S2 of j comes before S3 of the same j.
        assert pts.index((0, 1, 0, 0)) < pts.index((0, 1, 0, 1))
        # S3 of j=0 comes before S2 of j=1.
        assert pts.index((0, 1, 0, 1)) < pts.index((0, 1, 1, 0))

    def test_statement_set(self, moldyn):
        env = Environment(symbols={"num_steps": 1, "num_nodes": 3, "num_inter": 2})
        s2 = UnifiedSpace(moldyn).statement_set("S2")
        pts = list(env.enumerate_set(s2))
        assert pts == [(0, 1, 0, 0), (0, 1, 1, 0)]

    def test_loop_set(self, moldyn):
        env = Environment(symbols={"num_steps": 1, "num_nodes": 3, "num_inter": 2})
        lj = UnifiedSpace(moldyn).loop_set("Lj")
        assert len(list(env.enumerate_set(lj))) == 4

    def test_tuple_for(self, moldyn):
        space = UnifiedSpace(moldyn)
        assert space.tuple_for("S4", x=5, s=2) == (2, 2, 5, 0)

    def test_kernel_without_outer_loop_pins_s(self):
        k = Kernel(
            "sweep",
            [Loop("L", "i", "n", [Statement("S", [write("y", "i")])])],
            [DataArraySpec("y", "n")],
            outer_var=None,
            outer_extent=None,
        )
        env = Environment(symbols={"n": 2})
        I0 = UnifiedSpace(k).iteration_space()
        assert list(env.enumerate_set(I0)) == [(0, 0, 0, 0), (0, 0, 1, 0)]

    def test_describe_mentions_all_statements(self, moldyn):
        text = UnifiedSpace(moldyn).describe()
        for label in ("S1", "S2", "S3", "S4"):
            assert label in text
