"""Unit tests for data mappings and dependence relations."""

import pytest

from repro.presburger import Environment
from repro.presburger.ordering import lex_lt
from repro.uniform import UnifiedSpace, build_data_mappings, build_dependences


SYMS = {"num_steps": 2, "num_nodes": 4, "num_inter": 3}


@pytest.fixture
def env():
    e = Environment(symbols=dict(SYMS))
    # left/right arrays: interaction j touches nodes left[j], right[j].
    e.bind_array("left", [0, 1, 2])
    e.bind_array("right", [1, 2, 3])
    return e


class TestDataMappings:
    def test_every_data_array_has_a_mapping(self, moldyn):
        mappings = build_data_mappings(moldyn)
        assert set(mappings) == {"x", "vx", "fx"}

    def test_x_mapping_from_i_loop(self, moldyn, env):
        m = build_data_mappings(moldyn)["x"]
        # S1 at i=2 touches x[2].
        assert env.apply_relation(m, (0, 0, 2, 0)) == [(2,)]

    def test_x_mapping_from_j_loop_both_endpoints(self, moldyn, env):
        m = build_data_mappings(moldyn)["x"]
        # S2 at j=1 reads x[left(1)] = x[1] and x[right(1)] = x[2].
        out = set(env.apply_relation(m, (0, 1, 1, 0)))
        assert out == {(1,), (2,)}

    def test_vx_not_touched_by_j_loop(self, moldyn, env):
        m = build_data_mappings(moldyn)["vx"]
        assert env.apply_relation(m, (0, 1, 1, 0)) == []

    def test_fx_mapping_statement_specific(self, moldyn, env):
        m = build_data_mappings(moldyn)["fx"]
        # S2 (q=0) updates fx[left(j)] only; S3 (q=1) updates fx[right(j)].
        assert env.apply_relation(m, (0, 1, 0, 0)) == [(0,)]
        assert env.apply_relation(m, (0, 1, 0, 1)) == [(1,)]

    def test_mapping_respects_loop_bounds(self, moldyn, env):
        m = build_data_mappings(moldyn)["x"]
        assert env.apply_relation(m, (0, 0, 99, 0)) == []

    def test_duplicate_accesses_deduped(self, moldyn):
        # S1 reads and updates x[i]; the mapping keeps one conjunction for it.
        m = build_data_mappings(moldyn)["x"]
        loop0_conjs = [
            c
            for c in m.conjunctions
            # l = 0 constraint present
            if any("l" in cons.free_vars() and cons.expr.const == 0
                   and cons.expr.coeff("l") in (1, -1) and len(cons.expr.coeffs) == 1
                   for cons in c.constraints)
        ]
        assert len(loop0_conjs) == 1


class TestDependences:
    def test_reduction_flags(self, moldyn):
        deps = build_dependences(moldyn)
        by_name = {d.name: d for d in deps}
        # S2 -> S3 via fx is UPDATE/UPDATE: reduction.
        assert by_name["d(S2->S3:fx)"].is_reduction
        # S1 -> S2 via x involves a read: not a reduction.
        assert not by_name["d(S1->S2:x)"].is_reduction

    def test_s1_to_s2_dependence_concrete(self, moldyn, env):
        deps = {d.name: d for d in build_dependences(moldyn)}
        rel = deps["d(S1->S2:x)"].relation
        # S1 writes x[1] at (0,0,1,0); S2/S3 read x[left(j)/right(j)].
        # left(1)=1, right(0)=1 so j=1 (q any) and j=0 (q any) depend on it.
        outs = set(env.apply_relation(rel, (0, 0, 1, 0)))
        same_step = {o for o in outs if o[0] == 0}
        assert (0, 1, 1, 0) in same_step  # j=1 via left
        assert (0, 1, 0, 0) in same_step  # j=0 via right
        assert (0, 1, 2, 0) not in same_step  # j=2 touches nodes 2,3

    def test_dependence_endpoints_ordered(self, moldyn, env):
        """Every concrete dependence pair respects program (lex) order."""
        deps = build_dependences(moldyn)
        for dep in deps[:6]:  # a sample is enough for runtime
            for src, dst in list(env.enumerate_relation(dep.relation))[:200]:
                assert lex_lt(src, dst), (dep.name, src, dst)

    def test_j_loop_to_k_loop_symmetry(self, moldyn):
        """d24/d34 mirror d12/d13 (the paper's symmetric-dependence point)."""
        deps = {d.name: d for d in build_dependences(moldyn)}
        assert "d(S2->S4:fx)" in deps
        assert "d(S3->S4:fx)" in deps
        assert "d(S1->S2:x)" in deps
        assert "d(S1->S3:x)" in deps

    def test_same_statement_cross_timestep_dep(self, moldyn, env):
        deps = {d.name: d for d in build_dependences(moldyn)}
        rel = deps["d(S1->S1:x)"].relation
        outs = set(env.apply_relation(rel, (0, 0, 1, 0)))
        assert outs == {(1, 0, 1, 0)}  # same i, next time step only

    def test_no_read_read_dependences_by_default(self, moldyn):
        deps = build_dependences(moldyn)
        for dep in deps:
            assert dep.src_kind.writes or dep.dst_kind.writes

    def test_input_deps_optional(self, moldyn):
        with_input = build_dependences(moldyn, include_input_deps=True)
        without = build_dependences(moldyn)
        assert len(with_input) > len(without)

    def test_all_20_dependences_found(self, moldyn):
        # x: S1->S1 (reduction via update/update? no: read+update pairs merge),
        # S1<->S2, S1<->S3; vx: S1<->S4, S4->S4; fx: S1<->S2/S3/S4, S2<->S3...
        deps = build_dependences(moldyn)
        assert len(deps) == 20
