"""Framework-level tests for the nbf and irreg kernel specs."""

import pytest

from repro.kernels.specs import irreg_kernel, nbf_kernel
from repro.presburger import Environment
from repro.presburger.ordering import lex_lt
from repro.uniform import ProgramState, UnifiedSpace


def env_for(kernel):
    env = Environment(
        symbols={"num_steps": 2, "num_nodes": 4, "num_inter": 3}
    )
    env.bind_array("left", [0, 1, 2])
    env.bind_array("right", [1, 2, 3])
    return env


@pytest.fixture(params=[nbf_kernel, irreg_kernel], ids=["nbf", "irreg"])
def two_loop_state(request):
    return ProgramState.initial(request.param())


class TestTwoLoopKernels:
    def test_interaction_loop_first(self, two_loop_state):
        kernel = two_loop_state.kernel
        assert kernel.loops[0].extent == "num_inter"
        assert kernel.loops[1].extent == "num_nodes"

    def test_iteration_space_volume(self, two_loop_state):
        env = env_for(two_loop_state.kernel)
        space = UnifiedSpace(two_loop_state.kernel).iteration_space()
        pts = list(env.enumerate_set(space))
        # per step: 2 statements x 3 interactions + 4 node iterations
        assert len(pts) == 2 * (2 * 3 + 4)

    def test_reductions_flagged(self, two_loop_state):
        names = {
            d.name: d.is_reduction for d in two_loop_state.dependences
        }
        # interaction loop self-updates are reductions
        reduction_count = sum(1 for v in names.values() if v)
        assert reduction_count >= 3

    def test_cross_loop_flow_dependence_exists(self, two_loop_state):
        kernel = two_loop_state.kernel
        result_array = "f" if kernel.name == "nbf" else "y"
        cross = [
            d
            for d in two_loop_state.dependences
            if d.array == result_array
            and d.src_stmt in ("S1", "S2")
            and d.dst_stmt == "S3"
        ]
        assert cross
        env = env_for(kernel)
        pairs = list(env.enumerate_relation(cross[0].relation))
        assert pairs
        for src, dst in pairs:
            assert lex_lt(src, dst)
            assert src[1] == 0 and dst[1] == 1  # loop 0 -> loop 1

    def test_mapping_totals(self, two_loop_state):
        env = env_for(two_loop_state.kernel)
        # every interaction iteration touches two x locations
        m = two_loop_state.data_mappings["x"]
        touched = env.apply_relation(m, (0, 0, 1, 0))
        assert set(touched) == {(1,), (2,)}  # left(1), right(1)

    def test_uf_names(self, two_loop_state):
        assert two_loop_state.uf_names() == {"left", "right"}
