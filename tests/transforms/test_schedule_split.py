"""Vectorized schedule construction: split-based groups and tiles.

``WavefrontSchedule.groups`` and ``TilingFunction.schedule`` now build
their per-wave / per-tile index lists with one stable sort plus
``np.split`` instead of one scan per group; these tests pin the
vectorized results to the obvious per-group definition, including the
empty-group edge cases the split construction must preserve.
"""

import numpy as np
import pytest

from repro.transforms.fst import TilingFunction
from repro.transforms.parallel import (
    CyclicDependenceError,
    WavefrontSchedule,
    wavefront_schedule,
)


def _reference_waves(num_iterations, src, dst):
    """One-node-at-a-time Kahn worklist (the pre-vectorization loop)."""
    indegree = np.zeros(num_iterations, dtype=np.int64)
    np.add.at(indegree, dst, 1)
    succ = [[] for _ in range(num_iterations)]
    for a, b in zip(src, dst):
        succ[int(a)].append(int(b))
    wave = np.zeros(num_iterations, dtype=np.int64)
    ready = [int(v) for v in np.flatnonzero(indegree == 0)]
    processed = 0
    while ready:
        v = ready.pop()
        processed += 1
        for w in succ[v]:
            wave[w] = max(wave[w], wave[v] + 1)
            indegree[w] -= 1
            if indegree[w] == 0:
                ready.append(w)
    assert processed == num_iterations
    return wave


def test_groups_match_per_wave_scan():
    rng = np.random.default_rng(5)
    wave = rng.integers(0, 9, size=200)
    sched = WavefrontSchedule(wave, 12)  # waves 9..11 are empty
    groups = sched.groups()
    assert len(groups) == 12
    for w, group in enumerate(groups):
        assert np.array_equal(group, np.flatnonzero(wave == w))
    assert sched.max_parallelism == max(len(g) for g in groups)
    assert groups[11].size == 0


def test_groups_empty_schedule():
    sched = WavefrontSchedule(np.empty(0, dtype=np.int64), 0)
    assert sched.groups() == []
    assert sched.max_parallelism == 0


@pytest.mark.parametrize("seed", range(6))
def test_frontier_loop_matches_worklist_reference(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 120))
    m = int(rng.integers(0, 4 * n))
    # Random DAG: edges only go low -> high iteration id.
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    got = wavefront_schedule(n, lo, hi)
    want = _reference_waves(n, lo, hi)
    assert np.array_equal(got.wave, want)
    assert got.num_waves == (int(want.max()) + 1 if n else 0)


def test_frontier_loop_counter_preserved():
    src = np.array([0, 1], dtype=np.int64)
    dst = np.array([1, 2], dtype=np.int64)
    counter = {}
    wavefront_schedule(3, src, dst, counter=counter)
    assert counter["touches"] == 2 * 2 + 2 * 3


def test_cycle_still_detected():
    src = np.array([0, 1, 2], dtype=np.int64)
    dst = np.array([1, 2, 0], dtype=np.int64)
    with pytest.raises(CyclicDependenceError, match="dependence cycles"):
        wavefront_schedule(3, src, dst)


def test_tiling_schedule_with_empty_tiles():
    """Regression: tiles with no iterations in some (or every) loop must
    come back as empty arrays, not be dropped or shifted."""
    tiles = [
        np.array([0, 3, 0, 3, 3], dtype=np.int64),  # tiles 1, 2 empty
        np.array([3, 3, 3], dtype=np.int64),  # only tile 3 populated
    ]
    fn = TilingFunction(tiles, num_tiles=5)  # tile 4 empty everywhere
    sched = fn.schedule()
    assert len(sched) == 5
    assert np.array_equal(sched[0][0], [0, 2])
    assert np.array_equal(sched[3][0], [1, 3, 4])
    for t in (1, 2, 4):
        assert sched[t][0].size == 0
    assert sched[0][1].size == 0 and np.array_equal(sched[3][1], [0, 1, 2])
    # Every loop iteration appears exactly once across tiles.
    for l, loop_tiles in enumerate(tiles):
        flat = np.concatenate([sched[t][l] for t in range(5)])
        assert np.array_equal(np.sort(flat), np.arange(len(loop_tiles)))


def test_tiling_schedule_zero_tiles():
    fn = TilingFunction([np.empty(0, dtype=np.int64)], num_tiles=0)
    assert fn.schedule() == []
