"""Unit tests for iteration reorderings and sparse tilings."""

import numpy as np
import pytest

from repro.transforms import (
    AccessMap,
    block_partition,
    bucket_tiling,
    cache_block_tiling,
    cpack_from_access_map,
    full_sparse_tiling,
    lexgroup,
    lexsort,
    tilepack,
)
from repro.transforms.block_partition import num_partitions
from repro.transforms.fst import TilingFunction, verify_tiling


def ring_edges(n):
    left = np.arange(n)
    right = (np.arange(n) + 1) % n
    return left, right


class TestLexGroup:
    def test_groups_by_first_location(self):
        am = AccessMap.from_rows([[2, 0], [0, 1], [1, 2]], 3)
        delta = lexgroup(am)
        # first locations: 2, 0, 1 -> new order: iter1, iter2, iter0
        assert list(delta.array) == [2, 0, 1]

    def test_stable_for_ties(self):
        am = AccessMap.from_rows([[1], [0], [1], [0]], 2)
        delta = lexgroup(am)
        # order: iter1, iter3 (loc 0), iter0, iter2 (loc 1)
        assert list(delta.array) == [2, 0, 3, 1]

    def test_empty_rows_sort_last(self):
        am = AccessMap.from_rows([[], [0]], 2)
        delta = lexgroup(am)
        assert list(delta.array) == [1, 0]

    def test_after_cpack_consecutive_iterations_touch_consecutive_data(self):
        """The paper's Figure 4 effect: CPACK then lexGroup localizes."""
        rng = np.random.default_rng(5)
        n = 64
        scramble = rng.permutation(n)
        left = scramble[np.arange(n)]
        right = scramble[(np.arange(n) + 1) % n]
        am = AccessMap.from_columns([left, right], n)
        sigma = cpack_from_access_map(am)
        am2 = am.with_data_reordered(sigma)
        delta = lexgroup(am2)
        am3 = am2.with_iterations_reordered(delta)
        firsts = np.array([am3.row(i)[0] for i in range(n)])
        assert (np.diff(firsts) >= 0).all()  # sorted by first location

    def test_lexsort_full_key(self):
        am = AccessMap.from_rows([[1, 2], [1, 0], [0, 9]], 10)
        delta = lexsort(am)
        # sorted rows: [0,9], [1,0], [1,2]
        assert list(delta.array) == [2, 1, 0]

    def test_lexsort_ragged_prefix_first(self):
        am = AccessMap.from_rows([[1, 0], [1]], 3)
        delta = lexsort(am)
        # [1] pads to [1, 3]; [1,0] sorts before it.
        assert list(delta.array) == [0, 1]


class TestBucketTiling:
    def test_bucket_grouping(self):
        am = AccessMap.from_rows([[5], [0], [9], [4]], 10)
        delta = bucket_tiling(am, bucket_size=5)
        # buckets: 1, 0, 1, 0 -> order iter1, iter3, iter0, iter2
        assert list(delta.array) == [2, 0, 3, 1]

    def test_invalid_bucket_size(self):
        with pytest.raises(ValueError):
            bucket_tiling(AccessMap.from_rows([[0]], 1), 0)

    def test_single_bucket_is_identity(self):
        am = AccessMap.from_rows([[3], [1], [2]], 4)
        delta = bucket_tiling(am, bucket_size=100)
        assert list(delta.array) == [0, 1, 2]


class TestBlockPartition:
    def test_blocks(self):
        assert list(block_partition(7, 3)) == [0, 0, 0, 1, 1, 1, 2]

    def test_num_partitions(self):
        assert num_partitions(7, 3) == 3
        assert num_partitions(6, 3) == 2
        assert num_partitions(0, 3) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_partition(5, 0)


class TestFullSparseTiling:
    def _moldyn_edges(self, n):
        left, right = ring_edges(n)
        j = np.arange(n)
        ij = (np.concatenate([left, right]), np.concatenate([j, j]))
        jk = (ij[1], ij[0])
        return ij, jk

    def test_tiles_respect_dependences(self):
        n = 32
        ij, jk = self._moldyn_edges(n)
        seed = block_partition(n, 8)
        tf = full_sparse_tiling([n, n, n], 1, seed, {(0, 1): ij, (1, 2): jk})
        assert verify_tiling(tf, {(0, 1): ij, (1, 2): jk})

    def test_symmetric_with_reuses_edges(self):
        """Section 6: traversing one of two symmetric dependence sets."""
        n = 32
        ij, jk = self._moldyn_edges(n)
        seed = block_partition(n, 8)
        explicit = full_sparse_tiling(
            [n, n, n], 1, seed, {(0, 1): ij, (1, 2): jk}
        )
        shared = full_sparse_tiling(
            [n, n, n], 1, seed, {(0, 1): ij}, symmetric_with={(1, 2): (0, 1)}
        )
        assert [list(a) for a in explicit.tiles] == [
            list(a) for a in shared.tiles
        ]

    def test_symmetric_with_costs_less(self):
        n = 32
        ij, jk = self._moldyn_edges(n)
        seed = block_partition(n, 8)
        c_full, c_shared = {}, {}
        full_sparse_tiling(
            [n, n, n], 1, seed, {(0, 1): ij, (1, 2): jk}, counter=c_full
        )
        full_sparse_tiling(
            [n, n, n],
            1,
            seed,
            {(0, 1): ij},
            symmetric_with={(1, 2): (0, 1)},
            counter=c_shared,
        )
        # Same tiles (asserted above); the counter reflects that both hops
        # still traverse edges -- the saving is in *loading* the second
        # dependence set, which the runtime inspector accounts for.
        assert c_shared["touches"] <= c_full["touches"]

    def test_missing_symmetric_target(self):
        with pytest.raises(KeyError):
            full_sparse_tiling(
                [2, 2], 0, np.zeros(2, dtype=int), {}, symmetric_with={(0, 1): (9, 9)}
            )

    def test_seed_size_mismatch(self):
        with pytest.raises(ValueError):
            full_sparse_tiling([4, 4], 0, np.zeros(3, dtype=int), {})

    def test_backward_growth_takes_min(self):
        # Loop 0 iteration 0 feeds seed iterations in tiles 0 and 1.
        edges = {(0, 1): (np.array([0, 0]), np.array([0, 1]))}
        seed = np.array([0, 1])
        tf = full_sparse_tiling([1, 2], 1, seed, edges)
        assert tf.tiles[0][0] == 0

    def test_forward_growth_takes_max(self):
        edges = {(0, 1): (np.array([0, 1]), np.array([0, 0]))}
        seed = np.array([0, 1])
        tf = full_sparse_tiling([2, 1], 0, seed, edges)
        assert tf.tiles[1][0] == 1

    def test_unconstrained_iterations_get_valid_tiles(self):
        edges = {(0, 1): (np.array([0]), np.array([0]))}
        tf = full_sparse_tiling([3, 3], 1, np.array([0, 0, 1]), edges)
        assert all(0 <= t < tf.num_tiles for t in tf.tiles[0])

    def test_schedule_partitions_every_loop(self):
        n = 16
        ij, jk = self._moldyn_edges(n)
        seed = block_partition(n, 4)
        tf = full_sparse_tiling([n, n, n], 1, seed, {(0, 1): ij, (1, 2): jk})
        sched = tf.schedule()
        for l in range(3):
            together = np.concatenate([sched[t][l] for t in range(tf.num_tiles)])
            assert sorted(together.tolist()) == list(range(n))

    def test_tile_sizes_sum(self):
        n = 16
        ij, jk = self._moldyn_edges(n)
        tf = full_sparse_tiling(
            [n, n, n], 1, block_partition(n, 4), {(0, 1): ij, (1, 2): jk}
        )
        assert tf.tile_sizes().sum() == 3 * n


class TestCacheBlocking:
    def test_respects_dependences(self):
        n = 32
        left, right = ring_edges(n)
        j = np.arange(n)
        e01 = (np.concatenate([left, right]), np.concatenate([j, j]))
        e12 = (e01[1], e01[0])
        seed = block_partition(n, 8)
        tf = cache_block_tiling([n, n, n], seed, {(0, 1): e01, (1, 2): e12})
        assert verify_tiling(tf, {(0, 1): e01, (1, 2): e12})

    def test_remainder_tile_collects_conflicts(self):
        # Iteration 0 of loop 1 has predecessors in tiles 0 and 1.
        edges = {(0, 1): (np.array([0, 1]), np.array([0, 0]))}
        tf = cache_block_tiling([2, 1], np.array([0, 1]), edges)
        assert tf.tiles[1][0] == 2  # the remainder tile
        assert tf.num_tiles == 3

    def test_shrinking_keeps_agreeing_iterations(self):
        edges = {(0, 1): (np.array([0, 1]), np.array([0, 1]))}
        tf = cache_block_tiling([2, 2], np.array([0, 1]), edges)
        assert list(tf.tiles[1]) == [0, 1]

    def test_remainder_propagates(self):
        e01 = {(0, 1): (np.array([0, 1]), np.array([0, 0])),
               (1, 2): (np.array([0]), np.array([0]))}
        tf = cache_block_tiling([2, 1, 1], np.array([0, 1]), e01)
        assert tf.tiles[2][0] == 2  # remainder pred forces remainder


class TestTilePack:
    def test_packs_by_tile_order(self):
        tiling = TilingFunction([np.array([1, 0, 1, 0])], 2)
        sigma = tilepack(tiling, data_loop=0, num_locations=4)
        # visit order: tile0 -> 1, 3; tile1 -> 0, 2.
        assert list(sigma.array) == [2, 0, 3, 1]

    def test_size_mismatch(self):
        tiling = TilingFunction([np.array([0, 0])], 1)
        with pytest.raises(ValueError):
            tilepack(tiling, 0, 3)

    def test_reordered_tiling_function(self):
        tiling = TilingFunction([np.array([1, 0])], 2)
        sigma = tilepack(tiling, 0, 2)
        updated = tiling.with_iterations_reordered(0, sigma.array)
        # new iteration 0 is old 1 (tile 0), new 1 is old 0 (tile 1)
        assert list(updated.tiles[0]) == [0, 1]
