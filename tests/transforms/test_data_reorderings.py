"""Unit tests for the data reordering inspectors (CPACK, GPART, RCM)."""

import numpy as np
import pytest

from repro.transforms import (
    AccessMap,
    cpack,
    cpack_from_access_map,
    cuthill_mckee,
    gpart,
    reverse_cuthill_mckee,
)


def ring_access_map(n):
    """Interactions around a ring: j touches nodes j and (j+1) mod n."""
    left = np.arange(n)
    right = (np.arange(n) + 1) % n
    return AccessMap.from_columns([left, right], n)


class TestCPACK:
    def test_first_touch_order(self):
        # traversal 3,1,3,0 packs 3->0, 1->1, 0->2; untouched 2 goes last.
        sigma = cpack(np.array([3, 1, 3, 0]), 4)
        assert list(sigma.array) == [2, 1, 3, 0]
        assert sigma.is_permutation()

    def test_paper_figure3_example(self):
        """Figure 2->3 of the paper: packing by interaction traversal.

        Interactions touch (in order) pairs (0,4), (4,2), (2,0), (1,3).
        First-touch order of the data: 0,4,2,1,3.
        """
        accesses = np.array([0, 4, 4, 2, 2, 0, 1, 3])
        sigma = cpack(accesses, 5)
        # new position of 0 is 0, of 4 is 1, of 2 is 2, of 1 is 3, of 3 is 4
        assert list(sigma.array) == [0, 3, 2, 4, 1]

    def test_untouched_locations_keep_relative_order(self):
        sigma = cpack(np.array([5]), 7)
        assert list(sigma.array) == [1, 2, 3, 4, 5, 0, 6]

    def test_empty_traversal(self):
        sigma = cpack(np.empty(0, dtype=np.int64), 3)
        assert list(sigma.array) == [0, 1, 2]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            cpack(np.array([4]), 3)

    def test_from_access_map_matches_flat(self):
        am = ring_access_map(6)
        a = cpack_from_access_map(am)
        b = cpack(am.flat_locations(), 6)
        assert a == b

    def test_counter_accounts_touches(self):
        counter = {}
        cpack(np.array([0, 1, 0]), 3, counter=counter)
        assert counter["touches"] == 2 * 3 + 3

    def test_idempotent_on_packed_data(self):
        """CPACK of an already consecutively packed traversal is identity."""
        am = ring_access_map(8)
        sigma = cpack_from_access_map(am)
        repacked = cpack_from_access_map(am.with_data_reordered(sigma))
        assert list(repacked.array) == list(range(8))

    def test_random_traversals_always_permutations(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            n = int(rng.integers(1, 40))
            acc = rng.integers(0, n, size=int(rng.integers(0, 100)))
            assert cpack(acc, n).is_permutation()


class TestGPART:
    def test_partitions_are_contiguous_ranges(self):
        am = ring_access_map(12)
        sigma = gpart(am, partition_size=4)
        assert sigma.is_permutation()
        # Neighbors on the ring should mostly stay within one partition:
        # count cross-partition interactions; a ring of 12 cut into 3+
        # partitions has about num_partitions cut edges.
        part_of = sigma.array // 4
        cuts = sum(
            1 for j in range(12) if part_of[j] != part_of[(j + 1) % 12]
        )
        assert cuts <= 4

    def test_partition_size_one(self):
        am = ring_access_map(5)
        sigma = gpart(am, partition_size=1)
        assert sigma.is_permutation()

    def test_invalid_partition_size(self):
        with pytest.raises(ValueError):
            gpart(ring_access_map(4), 0)

    def test_improves_over_random_ordering(self):
        """GPART recovers locality destroyed by a random renumbering."""
        rng = np.random.default_rng(3)
        n = 64
        scramble = rng.permutation(n)
        left = scramble[np.arange(n)]
        right = scramble[(np.arange(n) + 1) % n]
        am = AccessMap.from_columns([left, right], n)
        sigma = gpart(am, partition_size=8)
        # After reordering, the average |left-right| distance should be
        # far below the random baseline (~n/3).
        new_left = sigma.array[left]
        new_right = sigma.array[right]
        avg_dist = np.abs(new_left - new_right).mean()
        base_dist = np.abs(left - right).mean()
        assert avg_dist < base_dist / 2

    def test_counter(self):
        counter = {}
        gpart(ring_access_map(6), 3, counter=counter)
        assert counter["touches"] > 0

    def test_handles_isolated_nodes(self):
        am = AccessMap.from_rows([[0, 1]], num_locations=5)
        sigma = gpart(am, 2)
        assert sigma.is_permutation()

    def test_self_loop_rows_ignored(self):
        am = AccessMap.from_rows([[1, 1], [0, 2]], num_locations=3)
        sigma = gpart(am, 2)
        assert sigma.is_permutation()


class TestRCM:
    def test_cm_is_permutation(self):
        assert cuthill_mckee(ring_access_map(9)).is_permutation()

    def test_rcm_reverses_cm(self):
        am = ring_access_map(9)
        cm = cuthill_mckee(am)
        rcm = reverse_cuthill_mckee(am)
        assert list(rcm.array) == [8 - v for v in cm.array]

    def test_rcm_reduces_bandwidth(self):
        """RCM on a scrambled path graph restores near-band structure."""
        rng = np.random.default_rng(11)
        n = 40
        scramble = rng.permutation(n)
        left = scramble[np.arange(n - 1)]
        right = scramble[np.arange(1, n)]
        am = AccessMap.from_columns([left, right], n)
        sigma = reverse_cuthill_mckee(am)
        bw = np.abs(sigma.array[left] - sigma.array[right]).max()
        assert bw <= 2  # a path relabels to bandwidth 1 (2 allows ties)

    def test_disconnected_components(self):
        am = AccessMap.from_rows([[0, 1], [3, 4]], num_locations=6)
        assert cuthill_mckee(am).is_permutation()
