"""Tests for sparse tiling across an outer loop (Gauss--Seidel FST)."""

import numpy as np
import pytest

from repro.transforms import block_partition
from repro.transforms.fst_sweeps import (
    CSRGraph,
    SweepTiling,
    full_sparse_tiling_sweeps,
    verify_sweep_tiling,
)


def ring_graph(n):
    left = np.arange(n)
    right = (np.arange(n) + 1) % n
    return CSRGraph.from_edges(n, left, right)


def random_graph(n, m, seed=0):
    rng = np.random.default_rng(seed)
    return CSRGraph.from_edges(
        n, rng.integers(0, n, m), rng.integers(0, n, m)
    )


class TestCSRGraph:
    def test_from_edges_symmetric(self):
        g = CSRGraph.from_edges(4, np.array([0, 1]), np.array([1, 2]))
        assert set(g.row(1)) == {0, 2}
        assert set(g.row(0)) == {1}
        assert g.num_edges == 2

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(3, np.array([0, 1]), np.array([0, 2]))
        assert list(g.row(0)) == []
        assert set(g.row(1)) == {2}

    def test_num_nodes(self):
        assert ring_graph(7).num_nodes == 7


class TestSweepTilingGrowth:
    def test_seed_sweep_keeps_partition(self):
        g = ring_graph(12)
        seed = block_partition(12, 4)
        tiling = full_sparse_tiling_sweeps(g, 3, seed, seed_sweep=1)
        assert np.array_equal(tiling.tiles[1], seed)

    def test_default_seed_is_middle(self):
        g = ring_graph(8)
        tiling = full_sparse_tiling_sweeps(g, 5, block_partition(8, 4))
        assert np.array_equal(tiling.tiles[2], block_partition(8, 4))

    def test_backward_growth_shrinks_or_keeps(self):
        g = ring_graph(16)
        tiling = full_sparse_tiling_sweeps(g, 2, block_partition(16, 4), seed_sweep=1)
        assert (tiling.tiles[0] <= tiling.tiles[1]).all()

    def test_forward_growth_grows_or_keeps(self):
        g = ring_graph(16)
        tiling = full_sparse_tiling_sweeps(g, 2, block_partition(16, 4), seed_sweep=0)
        assert (tiling.tiles[1] >= tiling.tiles[0]).all()

    def test_single_sweep(self):
        g = ring_graph(8)
        tiling = full_sparse_tiling_sweeps(g, 1, block_partition(8, 4))
        assert tiling.num_sweeps == 1
        assert verify_sweep_tiling(tiling, g)

    def test_invalid_args(self):
        g = ring_graph(4)
        with pytest.raises(ValueError):
            full_sparse_tiling_sweeps(g, 0, block_partition(4, 2))
        with pytest.raises(ValueError):
            full_sparse_tiling_sweeps(g, 2, block_partition(3, 2))
        with pytest.raises(ValueError):
            full_sparse_tiling_sweeps(g, 2, block_partition(4, 2), seed_sweep=5)

    @pytest.mark.parametrize("num_sweeps", [2, 3, 5])
    @pytest.mark.parametrize("block", [3, 8, 50])
    def test_always_legal_on_random_graphs(self, num_sweeps, block):
        for seed in range(3):
            g = random_graph(40, 120, seed=seed)
            tiling = full_sparse_tiling_sweeps(
                g, num_sweeps, block_partition(40, block)
            )
            assert verify_sweep_tiling(tiling, g), (num_sweeps, block, seed)

    def test_schedule_partitions_each_sweep(self):
        g = random_graph(30, 90)
        tiling = full_sparse_tiling_sweeps(g, 3, block_partition(30, 10))
        sched = tiling.schedule()
        for s in range(3):
            nodes = np.concatenate([sched[t][s] for t in range(tiling.num_tiles)])
            assert sorted(nodes.tolist()) == list(range(30))

    def test_counter_accounts_growth(self):
        g = ring_graph(20)
        counter = {}
        full_sparse_tiling_sweeps(g, 4, block_partition(20, 5), counter=counter)
        assert counter["touches"] > 0


class TestVerifier:
    def test_detects_within_sweep_violation(self):
        g = ring_graph(6)
        bad = SweepTiling([np.array([1, 0, 0, 0, 0, 0])], 2)
        # node 0 -> node 1 dependence (adjacent, 0 < 1): tile 1 > tile 0.
        assert not verify_sweep_tiling(bad, g)

    def test_detects_cross_sweep_violation(self):
        g = ring_graph(4)
        good = np.zeros(4, dtype=np.int64)
        bad = SweepTiling([good + 1, good], 2)  # sweep 0 after sweep 1
        assert not verify_sweep_tiling(bad, g)

    def test_accepts_single_tile(self):
        g = random_graph(20, 60)
        one = SweepTiling([np.zeros(20, dtype=np.int64)] * 3, 1)
        assert verify_sweep_tiling(one, g)
