"""Tests for the space-filling-curve data reorderings."""

import numpy as np
import pytest

from repro.transforms.spacefill import (
    hilbert_index_2d,
    morton_index,
    space_filling_order,
)


def full_grid(order):
    n = 1 << order
    xs, ys = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)


class TestHilbert:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_bijective_on_full_grid(self, order):
        coords = full_grid(order)
        idx = hilbert_index_2d(coords, order=order)
        assert sorted(idx.tolist()) == list(range(len(coords)))

    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_consecutive_indices_are_grid_adjacent(self, order):
        """The defining Hilbert property (Morton does NOT have it)."""
        coords = full_grid(order)
        idx = hilbert_index_2d(coords, order=order)
        pts = coords[np.argsort(idx)]
        steps = np.abs(np.diff(pts, axis=0)).sum(axis=1)
        assert (steps == 1).all()

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            hilbert_index_2d(np.zeros((4, 3)))


class TestMorton:
    def test_bijective_on_full_grid(self):
        coords = full_grid(3)
        idx = morton_index(coords, order=3)
        assert sorted(idx.tolist()) == list(range(64))

    def test_works_in_3d(self):
        n = 4
        g = np.stack(
            np.meshgrid(*([np.arange(n)] * 3), indexing="ij"), axis=-1
        ).reshape(-1, 3).astype(float)
        idx = morton_index(g, order=2)
        assert sorted(idx.tolist()) == list(range(64))

    def test_morton_has_long_jumps(self):
        """Contrast with Hilbert: Z-order takes non-adjacent steps."""
        coords = full_grid(3)
        idx = morton_index(coords, order=3)
        pts = coords[np.argsort(idx)]
        steps = np.abs(np.diff(pts, axis=0)).sum(axis=1)
        assert steps.max() > 1


class TestSpaceFillingOrder:
    def test_permutation(self):
        rng = np.random.default_rng(0)
        coords = rng.random((100, 2))
        for curve in ("hilbert", "morton"):
            assert space_filling_order(coords, curve).is_permutation()

    def test_unknown_curve(self):
        with pytest.raises(ValueError):
            space_filling_order(np.zeros((3, 2)), "peano")

    def test_hilbert_needs_2d(self):
        with pytest.raises(ValueError):
            space_filling_order(np.zeros((3, 3)), "hilbert")

    def test_counter(self):
        counter = {}
        space_filling_order(np.zeros((5, 2)), "morton", counter=counter)
        assert counter["touches"] > 0

    def test_nearby_points_nearby_positions(self):
        """Locality: the average new-index distance of spatial neighbors is
        far below random."""
        rng = np.random.default_rng(4)
        n = 400
        coords = rng.random((n, 2))
        sigma = space_filling_order(coords, "hilbert")
        # pair each point with its nearest neighbor (brute force)
        d2 = ((coords[:, None, :] - coords[None, :, :]) ** 2).sum(axis=2)
        np.fill_diagonal(d2, np.inf)
        nearest = d2.argmin(axis=1)
        gap = np.abs(sigma.array - sigma.array[nearest]).mean()
        assert gap < n / 6  # random ordering would average ~n/3

    def test_degenerate_identical_points(self):
        coords = np.zeros((7, 2))
        sigma = space_filling_order(coords, "hilbert")
        assert sigma.is_permutation()


class TestSpaceFillingStep:
    def test_composes_with_other_steps(self):
        from repro.kernels import generate_dataset, make_kernel_data
        from repro.kernels.specs import kernel_by_name
        from repro.runtime import CompositionPlan, SpaceFillingStep
        from repro.runtime.inspector import CPackStep, LexGroupStep
        from repro.runtime.verify import verify_numeric_equivalence

        ds = generate_dataset("foil", scale=256)
        data = make_kernel_data("irreg", ds)
        plan = CompositionPlan(
            kernel_by_name("irreg"),
            [SpaceFillingStep(ds.coords), LexGroupStep(), CPackStep()],
        )
        plan.plan()
        res = plan.build_inspector().run(data)
        assert verify_numeric_equivalence(data, res)

    def test_coords_size_mismatch(self):
        import numpy as np

        from repro.kernels import generate_dataset, make_kernel_data
        from repro.runtime import SpaceFillingStep
        from repro.runtime.inspector import ComposedInspector

        data = make_kernel_data("irreg", generate_dataset("foil", scale=256))
        step = SpaceFillingStep(np.zeros((3, 2)))
        with pytest.raises(ValueError, match="every node"):
            ComposedInspector([step]).run(data)

    def test_coords_follow_prior_reorderings(self):
        """SFC after CPACK must see coordinates in the current numbering."""
        import numpy as np

        from repro.kernels import generate_dataset, make_kernel_data
        from repro.runtime import SpaceFillingStep
        from repro.runtime.inspector import ComposedInspector, CPackStep

        ds = generate_dataset("foil", scale=256)
        data = make_kernel_data("irreg", ds)
        res = ComposedInspector(
            [CPackStep(), SpaceFillingStep(ds.coords)]
        ).run(data)
        # after the composition, position p holds the node whose original
        # id is sigma^-1(p); consecutive positions must be spatially close
        inv = res.sigma_nodes.inverse_array
        pts = ds.coords[inv]
        gaps = np.sqrt(((pts[1:] - pts[:-1]) ** 2).sum(axis=1))
        assert np.median(gaps) < 0.1  # unit square; random would be ~0.5
