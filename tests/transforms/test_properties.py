"""Property-based tests for transform invariants."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.transforms import (
    AccessMap,
    ReorderingFunction,
    block_partition,
    bucket_tiling,
    cpack,
    full_sparse_tiling,
    gpart,
    lexgroup,
    lexsort,
    permutation_from_order,
    reverse_cuthill_mckee,
    tilepack,
)
from repro.transforms.fst import verify_tiling


@st.composite
def access_maps(draw, max_n=24, max_width=3):
    n = draw(st.integers(2, max_n))
    n_iters = draw(st.integers(1, max_n))
    width = draw(st.integers(1, max_width))
    cols = [
        np.array(draw(st.lists(st.integers(0, n - 1), min_size=n_iters, max_size=n_iters)))
        for _ in range(width)
    ]
    return AccessMap.from_columns(cols, n)


@st.composite
def permutations(draw, max_n=30):
    n = draw(st.integers(1, max_n))
    return permutation_from_order("p", draw(st.permutations(list(range(n)))))


class TestPermutationLaws:
    @given(permutations())
    @settings(max_examples=60)
    def test_inverse_roundtrip(self, p):
        n = len(p)
        assert list(p.compose(p.inverse()).array) == list(range(n))
        assert list(p.inverse().compose(p).array) == list(range(n))

    @given(permutations())
    @settings(max_examples=60)
    def test_apply_then_gather_is_identity(self, p):
        data = np.arange(len(p)) * 10.0
        moved = p.apply_to_data(data)
        recovered = moved[p.array]
        assert np.array_equal(recovered, data)

    @given(permutations(), permutations())
    @settings(max_examples=40)
    def test_composition_is_permutation(self, p, q):
        if len(p) == len(q):
            assert p.compose(q).is_permutation()


class TestInspectorOutputsArePermutations:
    @given(access_maps())
    @settings(max_examples=50, deadline=None)
    def test_cpack(self, am):
        assert cpack(am.flat_locations(), am.num_locations).is_permutation()

    @given(access_maps(), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_gpart(self, am, psize):
        assert gpart(am, psize).is_permutation()

    @given(access_maps())
    @settings(max_examples=40, deadline=None)
    def test_rcm(self, am):
        assert reverse_cuthill_mckee(am).is_permutation()

    @given(access_maps())
    @settings(max_examples=40, deadline=None)
    def test_lexgroup_and_lexsort(self, am):
        assert lexgroup(am).is_permutation()
        assert lexsort(am).is_permutation()

    @given(access_maps(), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_bucket_tiling(self, am, bsize):
        assert bucket_tiling(am, bsize).is_permutation()


class TestDataIterationConsistency:
    @given(access_maps())
    @settings(max_examples=40, deadline=None)
    def test_reordering_preserves_multiset_of_rows(self, am):
        """Iteration reordering permutes rows without changing them."""
        delta = lexgroup(am)
        reordered = am.with_iterations_reordered(delta)
        original_rows = sorted(tuple(am.row(i)) for i in range(am.num_iterations))
        new_rows = sorted(
            tuple(reordered.row(i)) for i in range(reordered.num_iterations)
        )
        assert original_rows == new_rows

    @given(access_maps())
    @settings(max_examples=40, deadline=None)
    def test_data_reordering_relabels_consistently(self, am):
        sigma = cpack(am.flat_locations(), am.num_locations)
        remapped = am.with_data_reordered(sigma)
        inv = sigma.inverse_array
        assert np.array_equal(
            inv[remapped.flat_locations()], am.flat_locations()
        )


@st.composite
def moldyn_like_edges(draw, max_n=20):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(1, 3 * max_n))
    left = np.array(draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)))
    right = np.array(draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)))
    return n, m, left, right


class TestSparseTilingLegality:
    @given(moldyn_like_edges(), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_fst_always_legal(self, shape, block):
        n, m, left, right = shape
        j = np.arange(m)
        e01 = (np.concatenate([left, right]), np.concatenate([j, j]))
        e12 = (e01[1], e01[0])
        seed = block_partition(m, block)
        tf = full_sparse_tiling([n, m, n], 1, seed, {(0, 1): e01, (1, 2): e12})
        assert verify_tiling(tf, {(0, 1): e01, (1, 2): e12})
        # every iteration tiled within range
        for tiles in tf.tiles:
            assert tiles.min() >= 0 and tiles.max() < tf.num_tiles

    @given(moldyn_like_edges(), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_tilepack_is_permutation(self, shape, block):
        n, m, left, right = shape
        j = np.arange(m)
        e01 = (np.concatenate([left, right]), np.concatenate([j, j]))
        e12 = (e01[1], e01[0])
        tf = full_sparse_tiling(
            [n, m, n], 1, block_partition(m, block), {(0, 1): e01, (1, 2): e12}
        )
        assert tilepack(tf, 0, n).is_permutation()
