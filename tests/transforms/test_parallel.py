"""Tests for the run-time parallelization inspectors."""

import numpy as np
import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.transforms import block_partition, full_sparse_tiling
from repro.transforms.parallel import (
    CyclicDependenceError,
    WavefrontSchedule,
    tile_wavefronts,
    wavefront_schedule,
)


class TestWavefrontSchedule:
    def test_chain_is_fully_serial(self):
        src = np.arange(4)
        dst = np.arange(1, 5)
        sched = wavefront_schedule(5, src, dst)
        assert list(sched.wave) == [0, 1, 2, 3, 4]
        assert sched.num_waves == 5
        assert sched.max_parallelism == 1

    def test_independent_iterations_one_wave(self):
        sched = wavefront_schedule(6, np.empty(0, int), np.empty(0, int))
        assert sched.num_waves == 1
        assert sched.max_parallelism == 6
        assert sched.average_parallelism == 6.0

    def test_diamond(self):
        # 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        sched = wavefront_schedule(
            4, np.array([0, 0, 1, 2]), np.array([1, 2, 3, 3])
        )
        assert list(sched.wave) == [0, 1, 1, 2]
        groups = sched.groups()
        assert set(groups[1].tolist()) == {1, 2}

    def test_longest_path_wins(self):
        # 0 -> 2 and 0 -> 1 -> 2: iteration 2 is at level 2, not 1.
        sched = wavefront_schedule(3, np.array([0, 0, 1]), np.array([2, 1, 2]))
        assert sched.wave[2] == 2

    def test_cycle_detected(self):
        with pytest.raises(CyclicDependenceError):
            wavefront_schedule(2, np.array([0, 1]), np.array([1, 0]))

    def test_self_loop_is_a_cycle(self):
        with pytest.raises(CyclicDependenceError):
            wavefront_schedule(1, np.array([0]), np.array([0]))

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError):
            wavefront_schedule(2, np.array([0]), np.array([0, 1]))

    def test_counter(self):
        counter = {}
        wavefront_schedule(3, np.array([0]), np.array([1]), counter=counter)
        assert counter["touches"] > 0

    def test_empty_schedule(self):
        sched = wavefront_schedule(0, np.empty(0, int), np.empty(0, int))
        assert sched.num_waves == 0
        assert sched.average_parallelism == 0.0

    @given(st.integers(2, 30), st.integers(0, 60), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_every_dependence_respected(self, n, m, seed):
        """Property: wave(src) < wave(dst) on random DAGs."""
        rng = np.random.default_rng(seed)
        a = rng.integers(0, n, m)
        b = rng.integers(0, n, m)
        # orient edges forward to guarantee acyclicity
        src = np.minimum(a, b)
        dst = np.maximum(a, b)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        sched = wavefront_schedule(n, src, dst)
        assert (sched.wave[src] < sched.wave[dst]).all()
        # and every iteration appears exactly once across the groups
        total = np.concatenate(sched.groups()) if sched.num_waves else []
        assert sorted(np.asarray(total).tolist()) == list(range(n))


class TestTileWavefronts:
    def _tiled_moldyn(self, n=32, block=4):
        left = np.arange(n)
        right = (np.arange(n) + 1) % n
        j = np.arange(n)
        e01 = (np.concatenate([left, right]), np.concatenate([j, j]))
        e12 = (e01[1], e01[0])
        edges = {(0, 1): e01, (1, 2): e12}
        tiling = full_sparse_tiling(
            [n, n, n], 1, block_partition(n, block), edges
        )
        return tiling, edges

    def test_tile_graph_respected(self):
        tiling, edges = self._tiled_moldyn()
        sched = tile_wavefronts(tiling, edges)
        for (la, lb), (src, dst) in edges.items():
            ts = tiling.tiles[la][src]
            td = tiling.tiles[lb][dst]
            strict = ts != td
            assert (sched.wave[ts[strict]] < sched.wave[td[strict]]).all()

    def test_independent_tiles_share_a_wave(self):
        # Two disconnected components -> their tiles can run concurrently.
        left = np.array([0, 1, 4, 5])
        right = np.array([1, 0, 5, 4])
        j = np.arange(4)
        e01 = (np.concatenate([left, right]), np.concatenate([j, j]))
        edges = {(0, 1): e01}
        tiling = full_sparse_tiling(
            [8, 4], 1, np.array([0, 0, 1, 1]), edges
        )
        sched = tile_wavefronts(tiling, edges)
        assert sched.max_parallelism >= 2

    def test_counter(self):
        tiling, edges = self._tiled_moldyn()
        counter = {}
        tile_wavefronts(tiling, edges, counter=counter)
        assert counter["touches"] > 0

    def test_groups_cover_all_tiles(self):
        tiling, edges = self._tiled_moldyn(n=40, block=5)
        sched = tile_wavefronts(tiling, edges)
        all_tiles = np.concatenate(sched.groups())
        assert sorted(all_tiles.tolist()) == list(range(tiling.num_tiles))
