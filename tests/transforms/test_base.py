"""Unit tests for ReorderingFunction, AccessMap, and relation builders."""

import numpy as np
import pytest

from repro.presburger import Environment
from repro.transforms import (
    AccessMap,
    ReorderingFunction,
    identity_reordering,
    permutation_from_order,
    permute_loops_relation,
    tile_insert_relation,
    tile_permute_relation,
)


class TestReorderingFunction:
    def test_identity(self):
        f = identity_reordering(5)
        assert f(3) == 3
        assert f.is_permutation()

    def test_permutation_check_rejects_duplicates(self):
        f = ReorderingFunction("bad", [0, 0, 2])
        assert not f.is_permutation()
        with pytest.raises(ValueError):
            f.require_permutation()

    def test_permutation_check_rejects_out_of_range(self):
        assert not ReorderingFunction("bad", [0, 5, 1]).is_permutation()
        assert not ReorderingFunction("bad", [-1, 0, 1]).is_permutation()

    def test_empty_is_permutation(self):
        assert ReorderingFunction("e", np.empty(0, dtype=np.int64)).is_permutation()

    def test_inverse(self):
        f = ReorderingFunction("f", [2, 0, 1])
        inv = f.inverse()
        assert list(inv.array) == [1, 2, 0]
        for i in range(3):
            assert inv(f(i)) == i

    def test_compose(self):
        f = ReorderingFunction("f", [1, 2, 0])
        g = ReorderingFunction("g", [2, 0, 1])
        h = f.compose(g)  # g after f
        for i in range(3):
            assert h(i) == g(f(i))

    def test_compose_length_mismatch(self):
        with pytest.raises(ValueError):
            ReorderingFunction("f", [0]).compose(ReorderingFunction("g", [0, 1]))

    def test_apply_to_data(self):
        sigma = ReorderingFunction("s", [2, 0, 1])
        data = np.array([10.0, 20.0, 30.0])
        out = sigma.apply_to_data(data)
        # element 0 moves to slot 2, 1 -> 0, 2 -> 1
        assert list(out) == [20.0, 30.0, 10.0]

    def test_remap_values(self):
        sigma = ReorderingFunction("s", [2, 0, 1])
        left = np.array([0, 1, 2, 0])
        assert list(sigma.remap_values(left)) == [2, 0, 1, 2]

    def test_remap_then_apply_consistency(self):
        """Adjusted index arrays address the same values in relocated data."""
        rng = np.random.default_rng(0)
        n = 50
        sigma = permutation_from_order("s", rng.permutation(n))
        data = rng.random(n)
        idx = rng.integers(0, n, size=120)
        moved = sigma.apply_to_data(data)
        adjusted = sigma.remap_values(idx)
        assert np.allclose(moved[adjusted], data[idx])

    def test_permutation_from_order(self):
        # visit order 2,0,1: old 2 becomes new 0.
        sigma = permutation_from_order("s", [2, 0, 1])
        assert list(sigma.array) == [1, 2, 0]

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            ReorderingFunction("b", np.zeros((2, 2)))

    def test_equality(self):
        assert ReorderingFunction("a", [0, 1]) == ReorderingFunction("b", [0, 1])
        assert ReorderingFunction("a", [0, 1]) != ReorderingFunction("a", [1, 0])


class TestAccessMap:
    def test_from_columns_interleaves(self):
        am = AccessMap.from_columns(
            [np.array([0, 1]), np.array([2, 3])], num_locations=4
        )
        assert list(am.row(0)) == [0, 2]
        assert list(am.row(1)) == [1, 3]
        assert list(am.flat_locations()) == [0, 2, 1, 3]

    def test_from_rows_ragged(self):
        am = AccessMap.from_rows([[0], [1, 2, 3], []], num_locations=4)
        assert am.num_iterations == 3
        assert list(am.row(1)) == [1, 2, 3]
        assert list(am.row(2)) == []

    def test_column_length_mismatch(self):
        with pytest.raises(ValueError):
            AccessMap.from_columns([np.array([0]), np.array([0, 1])], 2)

    def test_with_data_reordered(self):
        am = AccessMap.from_columns([np.array([0, 1])], 3)
        sigma = ReorderingFunction("s", [2, 0, 1])
        out = am.with_data_reordered(sigma)
        assert list(out.flat_locations()) == [2, 0]

    def test_with_iterations_reordered(self):
        am = AccessMap.from_rows([[0], [1], [2]], 3)
        delta = ReorderingFunction("d", [2, 0, 1])  # old 0 -> new pos 2
        out = am.with_iterations_reordered(delta)
        assert [list(out.row(i)) for i in range(3)] == [[1], [2], [0]]

    def test_iteration_reorder_length_check(self):
        am = AccessMap.from_rows([[0]], 1)
        with pytest.raises(ValueError):
            am.with_iterations_reordered(ReorderingFunction("d", [0, 1]))

    def test_bad_offsets_rejected(self):
        with pytest.raises(ValueError):
            AccessMap(np.array([1, 2]), np.array([0, 0]), 1)
        with pytest.raises(ValueError):
            AccessMap(np.array([0, 1]), np.array([0, 0]), 1)


class TestRelationBuilders:
    def test_permute_loops_relation(self):
        T = permute_loops_relation(2, {0: "cp", 1: "lg"})
        env = Environment()
        env.bind_array("cp", [1, 0])
        env.bind_array("lg", [0, 1])
        assert env.apply_relation_single(T, (3, 0, 0, 0)) == (3, 0, 1, 0)
        assert env.apply_relation_single(T, (3, 1, 1, 2)) == (3, 1, 1, 2)

    def test_permute_loops_identity_piece(self):
        T = permute_loops_relation(2, {0: "cp"})
        env = Environment()
        env.bind_array("cp", [1, 0])
        # loop 1 untouched
        assert env.apply_relation_single(T, (0, 1, 0, 0)) == (0, 1, 0, 0)

    def test_tile_insert_relation(self):
        T = tile_insert_relation("theta")
        env = Environment()
        env.bind_function("theta", lambda l, x: 7)
        assert env.apply_relation_single(T, (1, 2, 3, 0)) == (1, 7, 2, 3, 0)

    def test_tile_permute_relation(self):
        T = tile_permute_relation(3, {0: "tp", 2: "tp"})
        env = Environment()
        env.bind_array("tp", [1, 0])
        assert env.apply_relation_single(T, (0, 5, 0, 0, 0)) == (0, 5, 0, 1, 0)
        assert env.apply_relation_single(T, (0, 5, 1, 0, 0)) == (0, 5, 1, 0, 0)
        assert env.apply_relation_single(T, (0, 5, 2, 1, 0)) == (0, 5, 2, 0, 0)
