"""Backend binding: selection, artifact caching, and the no-toolchain path."""

import warnings

import numpy as np
import pytest

from repro import backends
from repro.backends import BackendFallbackWarning
from repro.kernels import generate_dataset, make_kernel_data
from repro.lowering import toolchain
from repro.lowering.executor import (
    artifact_key,
    clear_executor_memo,
    compile_executor,
    executor_backend_report,
    resolve_executor_backend,
)
from repro.lowering.ir import lower_kernel
from repro.lowering.passes import PassConfig
from repro.kernels.specs import kernel_by_name

pytestmark = pytest.mark.compiled

HAVE_CC = toolchain.have_toolchain()[0]


@pytest.fixture(autouse=True)
def _fresh(monkeypatch, tmp_path):
    backends.reset_fallback_announcements()
    clear_executor_memo()
    monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
    monkeypatch.setenv("REPRO_PLANCACHE_DIR", str(tmp_path / "cache"))
    yield
    backends.reset_fallback_announcements()
    clear_executor_memo()


def _data(kernel="moldyn", scale=64):
    return make_kernel_data(kernel, generate_dataset("mol1", scale=scale))


class TestResolution:
    def test_default_is_library(self):
        res = resolve_executor_backend()
        assert res.backend == "library" and res.source == "default"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_BACKEND", "numpy")
        assert resolve_executor_backend().backend == "numpy"
        assert resolve_executor_backend("library").backend == "library"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            resolve_executor_backend("fortran")

    def test_auto_prefers_c_with_a_toolchain(self):
        res = resolve_executor_backend("auto")
        assert res.backend == ("c" if HAVE_CC else "numpy")


class TestNoToolchainFallback:
    def test_c_degrades_to_numpy_with_single_warning(self, monkeypatch):
        monkeypatch.setattr(toolchain, "find_compiler", lambda: None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = resolve_executor_backend("c")
            again = resolve_executor_backend("c")
        assert first.backend == "numpy" and again.backend == "numpy"
        assert first.degraded
        fallback_warnings = [
            w for w in caught if issubclass(w.category, BackendFallbackWarning)
        ]
        assert len(fallback_warnings) == 1  # once per process, not per bind

    def test_compile_executor_under_fallback_still_runs(self, monkeypatch):
        monkeypatch.setattr(toolchain, "find_compiler", lambda: None)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", BackendFallbackWarning)
            ex = compile_executor("moldyn", backend="c")
        assert ex.backend == "numpy"
        d = _data()
        ex.run(d.arrays, d.left, d.right, num_steps=2)

    def test_auto_without_toolchain_is_numpy_and_silent(self, monkeypatch):
        monkeypatch.setattr(toolchain, "find_compiler", lambda: None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = resolve_executor_backend("auto")
        assert res.backend == "numpy" and not res.degraded
        assert not [
            w for w in caught if issubclass(w.category, BackendFallbackWarning)
        ]

    def test_doctor_report_reflects_missing_toolchain(self, monkeypatch):
        monkeypatch.setattr(toolchain, "find_compiler", lambda: None)
        report = executor_backend_report()
        assert report["toolchain"]["available"] is False
        assert report["toolchain"]["fingerprint"] == "none"
        assert report["backend"] == "library"  # default needs no toolchain


class TestArtifactCache:
    def test_numpy_artifact_round_trip(self, tmp_path):
        cold = compile_executor(
            "nbf", backend="numpy", cache_dir=tmp_path, memo=False
        )
        warm = compile_executor(
            "nbf", backend="numpy", cache_dir=tmp_path, memo=False
        )
        assert not cold.from_cache and warm.from_cache
        assert cold.artifact_path == warm.artifact_path

    @pytest.mark.skipif(not HAVE_CC, reason="no C toolchain")
    def test_c_artifact_round_trip(self, tmp_path):
        cold = compile_executor(
            "irreg", backend="c", cache_dir=tmp_path, memo=False
        )
        warm = compile_executor(
            "irreg", backend="c", cache_dir=tmp_path, memo=False
        )
        assert not cold.from_cache and warm.from_cache
        assert cold.artifact_path.endswith(".so")

    def test_memo_returns_the_same_bind(self, tmp_path):
        a = compile_executor("moldyn", backend="numpy", cache_dir=tmp_path)
        b = compile_executor("moldyn", backend="numpy", cache_dir=tmp_path)
        assert a is b

    def test_artifact_key_varies_by_config_and_emitter(self):
        program = lower_kernel(kernel_by_name("moldyn"))
        base = artifact_key(program, PassConfig(), "numpy-1")
        assert base != artifact_key(program, PassConfig(fission=False), "numpy-1")
        assert base != artifact_key(program, PassConfig(), "c-1")

    def test_pass_ablation_stays_numerically_close(self, tmp_path):
        """Disabling passes changes rounding, not math: results stay
        within reduction-reassociation tolerance of the library run."""
        from repro.runtime.executor import run_numeric

        base = _data(scale=48)
        ref = run_numeric(base.copy(), num_steps=2)
        for config in (
            PassConfig(fission=False, vectorize=False),
            PassConfig(vectorize=False),
        ):
            ex = compile_executor(
                "moldyn", backend="numpy", config=config, cache_dir=tmp_path
            )
            d = base.copy()
            ex.run(d.arrays, d.left, d.right, num_steps=2)
            for name in ref.arrays:
                np.testing.assert_allclose(
                    d.arrays[name], ref.arrays[name], rtol=1e-9, atol=1e-12
                )
