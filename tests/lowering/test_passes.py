"""The rewrite pipeline: pass order, legality gating, config toggles."""

import pytest

from repro.kernels.specs import STATEMENT_CODE, kernel_by_name
KERNELS = tuple(STATEMENT_CODE)
from repro.lowering.ir import (
    Commit,
    Index,
    Load,
    LoopIR,
    Neg,
    Update,
    lower_kernel,
)
from repro.lowering.passes import (
    LoweringRewriter,
    PassConfig,
    _fission_gather_commit,
)

pytestmark = pytest.mark.compiled


def _rewrite(name, tiled=False, config=None):
    return LoweringRewriter(config=config, tiled=tiled).run(
        lower_kernel(kernel_by_name(name))
    )


class TestPipeline:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_pass_order_is_fixed(self, name):
        state = _rewrite(name)
        assert [rec.name for rec in state.log] == [
            "loop_fission", "loop_blocking", "vectorize", "parallelize",
            "dynamic_schedule",
        ]

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_default_pipeline_fissions_and_vectorizes_everything(self, name):
        program = _rewrite(name).program
        for loop in program.loops:
            assert loop.vector, loop.label
            if loop.domain == "inters":
                assert loop.fissioned is not None

    def test_untiled_program_skips_blocking_and_parallelize(self):
        state = _rewrite("moldyn", tiled=False)
        by_name = {rec.name: rec for rec in state.log}
        assert not by_name["loop_blocking"].applied
        assert not by_name["parallelize"].applied
        assert not state.program.tiled

    def test_tiled_program_blocks_and_parallelizes(self):
        program = _rewrite("moldyn", tiled=True).program
        assert program.tiled and program.wave_parallel

    def test_disabling_fission_keeps_interaction_loops_scalar(self):
        config = PassConfig(fission=False)
        program = _rewrite("nbf", config=config).program
        inter = next(l for l in program.loops if l.domain == "inters")
        assert inter.fissioned is None
        assert not inter.vector  # vectorize needs the gather/commit split

    def test_disabling_vectorize_keeps_all_loops_scalar(self):
        config = PassConfig(vectorize=False)
        program = _rewrite("moldyn", config=config).program
        assert not any(loop.vector for loop in program.loops)

    def test_config_digest_distinguishes_configs(self):
        assert PassConfig().digest() != PassConfig(fission=False).digest()
        assert PassConfig().digest() == PassConfig().digest()


def _inter_loop(stmts):
    return LoopIR(
        label="Lj", index_var="j", domain="inters", extent="num_inter",
        stmts=tuple(stmts),
    )


class TestFissionLegality:
    def test_moldyn_signs(self):
        program = lower_kernel(kernel_by_name("moldyn"))
        inter = next(l for l in program.loops if l.domain == "inters")
        gc = _fission_gather_commit(inter)
        assert [c.sign for c in gc.commits] == [1, -1]
        assert [c.via for c in gc.commits] == ["left", "right"]

    def test_irreg_both_positive(self):
        program = lower_kernel(kernel_by_name("irreg"))
        inter = next(l for l in program.loops if l.domain == "inters")
        gc = _fission_gather_commit(inter)
        assert [c.sign for c in gc.commits] == [1, 1]

    def test_mismatched_payloads_refuse_fission(self):
        a = Update("S1", "f", Index("left"), Load("x", Index("left")))
        b = Update("S2", "f", Index("right"), Load("y", Index("left")))
        assert _fission_gather_commit(_inter_loop([a, b])) is None

    def test_payload_reading_committed_array_refuses_fission(self):
        # f[left[j]] += f[right[j]] — hoisting would read stale/fresh
        # values differently from the interleaved loop: illegal.
        a = Update("S1", "f", Index("left"), Load("f", Index("right")))
        b = Update("S2", "f", Index("right"), Load("f", Index("right")))
        assert _fission_gather_commit(_inter_loop([a, b])) is None

    def test_negated_payload_matches(self):
        payload = Load("x", Index("left"))
        a = Update("S1", "f", Index("left"), payload)
        b = Update("S2", "g", Index("right"), Neg(payload))
        gc = _fission_gather_commit(_inter_loop([a, b]))
        assert gc is not None
        assert gc.commits == (
            Commit("f", "left", 1, "S1"),
            Commit("g", "right", -1, "S2"),
        )

    def test_direct_statement_refuses_fission(self):
        a = Update("S1", "f", Index(None), Load("x", Index("left")))
        assert _fission_gather_commit(_inter_loop([a])) is None
