"""The lowering front end: STATEMENT_CODE -> loop-nest IR.

The IR must preserve the statement expression trees *exactly as
written* (grouping is floating-point semantics), recognize the update
form, and hash stably.
"""

import pytest

from repro.errors import ValidationError
from repro.kernels.specs import STATEMENT_CODE, kernel_by_name
KERNELS = tuple(STATEMENT_CODE)
from repro.lowering.ir import (
    BinOp,
    Const,
    Index,
    Load,
    Neg,
    expr_loads,
    ir_hash,
    lower_kernel,
    parse_statement,
)

pytestmark = pytest.mark.compiled

IDX = ("left", "right")


class TestParseStatement:
    def test_direct_update(self):
        upd = parse_statement("S", "x[i] = x[i] + 0.5 * v[i]", "i", IDX)
        assert upd.array == "x" and upd.index == Index(None)
        assert upd.increment == BinOp(
            "*", Const(0.5), Load("v", Index(None))
        )

    def test_left_spine_folds_left_associatively(self):
        upd = parse_statement(
            "S", "x[i] = x[i] + 0.01 * v[i] + 0.0005 * f[i]", "i", IDX
        )
        # (0.01*v) + (0.0005*f), exactly numpy's evaluation of the chain.
        assert upd.increment == BinOp(
            "+",
            BinOp("*", Const(0.01), Load("v", Index(None))),
            BinOp("*", Const(0.0005), Load("f", Index(None))),
        )

    def test_subtracted_term_becomes_neg_when_leading(self):
        upd = parse_statement(
            "S", "f[right[j]] = f[right[j]] - (x[left[j]] - x[right[j]])",
            "j", IDX,
        )
        assert isinstance(upd.increment, Neg)
        assert upd.index == Index("right")

    def test_right_operand_grouping_is_preserved(self):
        upd = parse_statement(
            "S", "y[left[j]] = y[left[j]] + 0.5 * (x[left[j]] + x[right[j]])",
            "j", IDX,
        )
        inc = upd.increment
        assert inc.op == "*" and inc.right.op == "+"

    def test_rejects_non_update_form(self):
        with pytest.raises(ValidationError, match="update form"):
            parse_statement("S", "x[i] = v[i] + x[i]", "i", IDX)

    def test_rejects_foreign_index_variable(self):
        with pytest.raises(ValidationError):
            parse_statement("S", "x[k] = x[k] + 1.0", "i", IDX)

    def test_rejects_empty_increment(self):
        with pytest.raises(ValidationError, match="empty increment"):
            parse_statement("S", "x[i] = x[i]", "i", IDX)


class TestLowerKernel:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_all_kernels_lower(self, name):
        program = lower_kernel(kernel_by_name(name))
        assert program.kernel_name == name
        assert len(program.loops) == len(kernel_by_name(name).loops)
        domains = {loop.domain for loop in program.loops}
        assert domains == {"nodes", "inters"}

    def test_interaction_loads_are_indirect(self):
        program = lower_kernel(kernel_by_name("moldyn"))
        inter = next(l for l in program.loops if l.domain == "inters")
        for stmt in inter.stmts:
            assert not stmt.index.direct
            assert all(
                not load.index.direct
                for load in expr_loads(stmt.increment)
            )

    def test_ir_hash_is_stable_and_discriminating(self):
        a = lower_kernel(kernel_by_name("moldyn"))
        b = lower_kernel(kernel_by_name("moldyn"))
        c = lower_kernel(kernel_by_name("nbf"))
        assert ir_hash(a) == ir_hash(b)
        assert ir_hash(a) != ir_hash(c)

    def test_annotations_change_the_hash(self):
        from repro.lowering.ir import replace

        program = lower_kernel(kernel_by_name("irreg"))
        assert ir_hash(program) != ir_hash(replace(program, tiled=True))
