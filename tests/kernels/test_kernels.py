"""Unit tests for benchmark specs, datasets, and kernel instances."""

import numpy as np
import pytest

from repro.kernels import (
    DATASETS,
    generate_dataset,
    kernel_by_name,
    make_kernel_data,
    mesh2d_interactions,
    random_geometric_interactions,
    scramble_labels,
)
from repro.kernels.datasets import Dataset, _PAPER_SIZES
from repro.kernels.executors import run_steps
from repro.kernels.specs import NODE_RECORD_BYTES
from repro.uniform import ProgramState


class TestSpecs:
    @pytest.mark.parametrize("name", ["moldyn", "nbf", "irreg"])
    def test_kernels_build_and_analyze(self, name):
        kernel = kernel_by_name(name)
        state = ProgramState.initial(kernel)
        assert state.dependences
        assert state.uf_names() == {"left", "right"}

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            kernel_by_name("spmv")

    def test_moldyn_has_three_loops(self):
        assert len(kernel_by_name("moldyn").loops) == 3

    def test_two_loop_kernels(self):
        assert len(kernel_by_name("nbf").loops) == 2
        assert len(kernel_by_name("irreg").loops) == 2

    def test_record_bytes_ordering(self):
        """moldyn carries the heaviest per-node payload (72 B)."""
        assert NODE_RECORD_BYTES["moldyn"] == 72
        assert (
            NODE_RECORD_BYTES["moldyn"]
            > NODE_RECORD_BYTES["nbf"]
            > NODE_RECORD_BYTES["irreg"]
        )

    def test_regrouped_payload_matches_spec_arrays(self):
        for name in ("moldyn", "nbf", "irreg"):
            kernel = kernel_by_name(name)
            total = sum(s.element_bytes for s in kernel.data_arrays.values())
            assert total == NODE_RECORD_BYTES[name]


class TestDatasetGenerators:
    def test_all_four_named_datasets(self):
        assert set(DATASETS) == {"mol1", "mol2", "foil", "auto"}

    @pytest.mark.parametrize("name", DATASETS)
    def test_scaled_sizes_and_ratio(self, name):
        ds = generate_dataset(name, scale=64)
        paper_nodes, paper_edges, _dim = _PAPER_SIZES[name]
        assert ds.num_nodes == max(16, paper_nodes // 64)
        # edge/node ratio within 30% of the paper's
        paper_ratio = paper_edges / paper_nodes
        assert ds.edges_per_node == pytest.approx(paper_ratio, rel=0.3)

    def test_endpoints_in_range(self):
        ds = generate_dataset("foil", scale=64)
        assert ds.left.min() >= 0 and ds.left.max() < ds.num_nodes
        assert ds.right.min() >= 0 and ds.right.max() < ds.num_nodes

    def test_deterministic(self):
        a = generate_dataset("mol1", scale=128)
        b = generate_dataset("mol1", scale=128)
        assert np.array_equal(a.left, b.left)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            generate_dataset("web-google")

    def test_geometric_graph_no_self_loops(self):
        left, right = random_geometric_interactions(200, 800, dim=3, seed=1)
        assert (left != right).all()

    def test_mesh2d_wrapper(self):
        left, right = mesh2d_interactions(200, 700, seed=2)
        assert len(left) == len(right) > 0

    def test_scramble_preserves_structure(self):
        left, right = random_geometric_interactions(100, 400, dim=2, seed=3)
        sl, sr = scramble_labels(100, left, right, seed=4)
        assert len(sl) == len(left)
        # degree multiset preserved
        deg = np.bincount(np.concatenate([left, right]), minlength=100)
        sdeg = np.bincount(np.concatenate([sl, sr]), minlength=100)
        assert sorted(deg) == sorted(sdeg)

    def test_scramble_destroys_locality(self):
        left, right = random_geometric_interactions(500, 2000, dim=2, seed=5)
        sl, sr = scramble_labels(500, left, right, seed=6)
        before = np.abs(left - right).mean()
        after = np.abs(sl - sr).mean()
        assert after > before  # random labels spread endpoints apart


class TestKernelData:
    def test_make_kernel_data(self):
        ds = generate_dataset("foil", scale=256)
        data = make_kernel_data("irreg", ds)
        assert data.num_nodes == ds.num_nodes
        assert set(data.arrays) == {"x", "y"}
        assert data.node_record_bytes == 16

    def test_loop_sizes(self):
        ds = generate_dataset("mol1", scale=256)
        data = make_kernel_data("moldyn", ds)
        assert data.loop_sizes() == [
            data.num_nodes,
            data.num_inter,
            data.num_nodes,
        ]

    def test_interaction_loop_position(self):
        ds = generate_dataset("mol1", scale=256)
        assert make_kernel_data("moldyn", ds).interaction_loop_position() == 1
        assert make_kernel_data("nbf", ds).interaction_loop_position() == 0

    def test_copy_is_deep(self):
        ds = generate_dataset("foil", scale=256)
        data = make_kernel_data("irreg", ds)
        clone = data.copy()
        clone.arrays["x"][0] = 123.0
        clone.left[0] = 0
        assert data.arrays["x"][0] != 123.0

    def test_symbols(self):
        ds = generate_dataset("foil", scale=256)
        data = make_kernel_data("irreg", ds)
        assert data.symbols() == {
            "num_nodes": data.num_nodes,
            "num_inter": data.num_inter,
        }

    def test_access_map_shape(self):
        ds = generate_dataset("foil", scale=256)
        data = make_kernel_data("irreg", ds)
        am = data.interaction_access_map()
        assert am.num_iterations == data.num_inter
        assert am.num_locations == data.num_nodes


class TestNumericKernels:
    @pytest.mark.parametrize("name", ["moldyn", "nbf", "irreg"])
    def test_steps_accumulate(self, name):
        ds = generate_dataset("foil", scale=256)
        data = make_kernel_data(name, ds)
        one = run_steps(data.copy(), 1)
        two = run_steps(data.copy(), 2)
        first_array = next(iter(data.arrays))
        assert not np.array_equal(
            one.arrays[first_array], two.arrays[first_array]
        )

    def test_moldyn_force_symmetry(self):
        """Equal and opposite contributions: sum of fx is conserved."""
        ds = generate_dataset("mol1", scale=256)
        data = make_kernel_data("moldyn", ds)
        before = data.arrays["fx"].sum()
        run_steps(data, 1)
        assert data.arrays["fx"].sum() == pytest.approx(before, abs=1e-6)
