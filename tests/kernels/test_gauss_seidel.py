"""Tests for the Gauss--Seidel kernel and its tiled execution.

The headline property: a legal sweep tiling preserves every dependence,
so tiled Gauss--Seidel is **bit-identical** to the sequential sweeps —
not merely close in floating point.
"""

import numpy as np
import pytest

from repro.cachesim import machine_by_name, simulate_cost
from repro.kernels.datasets import Dataset
from repro.kernels.gauss_seidel import (
    GaussSeidelData,
    emit_gs_trace,
    make_gauss_seidel_data,
    run_sweeps,
)
from repro.transforms import AccessMap, block_partition, reverse_cuthill_mckee
from repro.transforms.fst_sweeps import (
    CSRGraph,
    full_sparse_tiling_sweeps,
    verify_sweep_tiling,
)


def small_dataset(n=60, m=180, seed=3):
    rng = np.random.default_rng(seed)
    return Dataset(
        "gs-test",
        n,
        rng.integers(0, n, m).astype(np.int64),
        rng.integers(0, n, m).astype(np.int64),
    )


@pytest.fixture
def gs():
    return make_gauss_seidel_data(small_dataset())


class TestSequentialGS:
    def test_updates_use_new_values_within_sweep(self):
        # Path 0-1: after one sweep, x1 must read the already-updated x0.
        g = CSRGraph.from_edges(2, np.array([0]), np.array([1]))
        data = GaussSeidelData(g, np.array([0.0, 0.0]), np.array([2.0, 3.0]))
        run_sweeps(data, 1)
        x0 = (2.0 + 0.0) / 2
        x1 = (3.0 + x0) / 2
        assert data.x[0] == x0 and data.x[1] == x1

    def test_convergence_toward_fixed_point(self, gs):
        a = run_sweeps(gs.copy(), 5)
        b = run_sweeps(gs.copy(), 25)
        # residual of the fixed-point equation shrinks with more sweeps
        def residual(d):
            r = 0.0
            for v in range(d.num_nodes):
                row = d.graph.row(v)
                r = max(r, abs(d.x[v] * (1 + len(row)) - d.b[v] - d.x[row].sum()))
            return r
        assert residual(b) < residual(a)

    def test_isolated_node(self):
        g = CSRGraph.from_edges(2, np.array([0]), np.array([0]))  # self-loop dropped
        data = GaussSeidelData(g, np.array([1.0, 1.0]), np.array([4.0, 6.0]))
        run_sweeps(data, 1)
        assert data.x[0] == 4.0 and data.x[1] == 6.0


class TestTiledGS:
    @pytest.mark.parametrize("num_sweeps", [1, 2, 4])
    @pytest.mark.parametrize("block", [7, 20])
    def test_tiled_equals_sequential_bitwise(self, gs, num_sweeps, block):
        tiling = full_sparse_tiling_sweeps(
            gs.graph, num_sweeps, block_partition(gs.num_nodes, block)
        )
        assert verify_sweep_tiling(tiling, gs.graph)
        seq = run_sweeps(gs.copy(), num_sweeps)
        tiled = run_sweeps(gs.copy(), num_sweeps, tiling)
        assert np.array_equal(seq.x, tiled.x)  # exact, not allclose

    def test_sweep_count_mismatch_rejected(self, gs):
        tiling = full_sparse_tiling_sweeps(
            gs.graph, 2, block_partition(gs.num_nodes, 10)
        )
        with pytest.raises(ValueError):
            run_sweeps(gs.copy(), 3, tiling)

    def test_rcm_renumbering_then_tiling_still_exact(self, gs):
        ds = small_dataset()
        sigma = reverse_cuthill_mckee(
            AccessMap.from_columns([ds.left, ds.right], ds.num_nodes)
        )
        g2 = CSRGraph.from_edges(
            ds.num_nodes, sigma.array[ds.left], sigma.array[ds.right]
        )
        renumbered = GaussSeidelData(
            g2, sigma.apply_to_data(gs.x), sigma.apply_to_data(gs.b)
        )
        tiling = full_sparse_tiling_sweeps(
            g2, 3, block_partition(ds.num_nodes, 10)
        )
        seq = run_sweeps(renumbered.copy(), 3)
        tiled = run_sweeps(renumbered.copy(), 3, tiling)
        assert np.array_equal(seq.x, tiled.x)


class TestGSTrace:
    def test_trace_length(self, gs):
        trace = emit_gs_trace(gs, 2)
        per_sweep = 2 * gs.num_nodes + len(gs.graph.neighbors)
        assert len(trace) == 2 * per_sweep

    def test_update_interleaving(self, gs):
        trace = emit_gs_trace(gs, 1)
        rid_rhs = [r.name for r in trace.regions].index("rhs")
        # first update: rhs[0], x[0], then neighbors of 0
        assert trace.region_ids[0] == rid_rhs
        assert trace.elements[0] == 0
        assert trace.elements[1] == 0
        deg0 = len(gs.graph.row(0))
        assert set(trace.elements[2 : 2 + deg0]) == set(gs.graph.row(0))

    def test_tiled_trace_same_multiset(self, gs):
        tiling = full_sparse_tiling_sweeps(
            gs.graph, 2, block_partition(gs.num_nodes, 10)
        )
        a = emit_gs_trace(gs, 2)
        b = emit_gs_trace(gs, 2, tiling)
        assert len(a) == len(b)
        assert sorted(zip(a.region_ids, a.elements)) == sorted(
            zip(b.region_ids, b.elements)
        )

    def test_tiling_improves_locality_after_rcm(self):
        """The extension experiment's shape, at test scale.

        Needs a mesh-like graph (recoverable band structure): a scrambled
        band graph stands in for the paper's FEM meshes.  Random
        (expander-like) graphs have no band for RCM to recover and sparse
        tiles grow huge halos — which is a property of the input, not a
        bug, and is covered by the benchmark's geometric datasets.
        """
        rng = np.random.default_rng(9)
        n = 1200
        base = np.arange(n - 3)
        left = np.concatenate([base, base, base])
        right = np.concatenate([base + 1, base + 2, base + 3])
        scramble = rng.permutation(n)
        ds = Dataset(
            "gs-loc", n,
            scramble[left].astype(np.int64),
            scramble[right].astype(np.int64),
        )
        gs = make_gauss_seidel_data(ds)
        sigma = reverse_cuthill_mckee(
            AccessMap.from_columns([ds.left, ds.right], n)
        )
        g2 = CSRGraph.from_edges(n, sigma.array[ds.left], sigma.array[ds.right])
        renum = GaussSeidelData(g2, sigma.apply_to_data(gs.x), sigma.apply_to_data(gs.b))
        sweeps = 4
        tiling = full_sparse_tiling_sweeps(g2, sweeps, block_partition(n, 128))
        machine = machine_by_name("pentium4")
        rcm_cost = simulate_cost(emit_gs_trace(renum, sweeps), machine).cycles
        fst_cost = simulate_cost(emit_gs_trace(renum, sweeps, tiling), machine).cycles
        # cross-sweep reuse: the tile's band stays cache-resident through
        # all four sweeps instead of being re-streamed per sweep.
        assert fst_cost < rcm_cost
