"""Tests for the SpMV kernel and its symmetric relabelings."""

import numpy as np
import pytest

from repro.cachesim import machine_by_name, simulate_cost
from repro.kernels.datasets import Dataset, generate_dataset
from repro.kernels.spmv import (
    emit_spmv_trace,
    make_spmv_data,
    relabel_spmv,
    run_spmv_steps,
)
from repro.transforms import AccessMap, reverse_cuthill_mckee
from repro.transforms.base import ReorderingFunction, permutation_from_order


def small_dataset(n=40, m=120, seed=5):
    rng = np.random.default_rng(seed)
    return Dataset(
        "spmv-test", n,
        rng.integers(0, n, m).astype(np.int64),
        rng.integers(0, n, m).astype(np.int64),
    )


@pytest.fixture
def spmv():
    return make_spmv_data(small_dataset())


class TestConstruction:
    def test_csr_well_formed(self, spmv):
        assert spmv.rowptr[0] == 0
        assert spmv.rowptr[-1] == spmv.num_entries
        assert (np.diff(spmv.rowptr) >= 1).all()  # diagonal present

    def test_symmetric_pattern(self, spmv):
        n = spmv.num_rows
        dense = np.zeros((n, n))
        rows = np.repeat(np.arange(n), np.diff(spmv.rowptr))
        np.add.at(dense, (rows, spmv.col), spmv.val)
        assert np.allclose(dense, dense.T)

    def test_matches_scipy(self, spmv):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        n = spmv.num_rows
        A = scipy_sparse.csr_matrix(
            (spmv.val, spmv.col, spmv.rowptr), shape=(n, n)
        )
        expected = A @ spmv.x
        got = run_spmv_steps(spmv.copy(), 1).x
        norm = np.abs(expected).max()
        assert np.allclose(got, expected / norm)


class TestRelabeling:
    def test_relabel_preserves_semantics(self, spmv):
        rng = np.random.default_rng(1)
        sigma = permutation_from_order("p", rng.permutation(spmv.num_rows))
        renum = relabel_spmv(spmv, sigma)
        base = run_spmv_steps(spmv.copy(), 3).x
        moved = run_spmv_steps(renum, 3).x
        inv = sigma.inverse()
        assert np.allclose(inv.apply_to_data(moved), base)

    def test_relabel_requires_permutation(self, spmv):
        bad = ReorderingFunction("bad", np.zeros(spmv.num_rows, dtype=np.int64))
        with pytest.raises(ValueError):
            relabel_spmv(spmv, bad)

    def test_identity_relabel_is_noop(self, spmv):
        ident = ReorderingFunction(
            "id", np.arange(spmv.num_rows, dtype=np.int64)
        )
        renum = relabel_spmv(spmv, ident)
        assert np.array_equal(renum.col, spmv.col)
        assert np.array_equal(renum.rowptr, spmv.rowptr)


class TestTrace:
    def test_trace_length(self, spmv):
        trace = emit_spmv_trace(spmv, num_steps=1)
        assert len(trace) == spmv.num_rows + 2 * spmv.num_entries

    def test_row_interleaving(self, spmv):
        trace = emit_spmv_trace(spmv)
        names = [r.name for r in trace.regions]
        # first row: y[0], entry 0, x[col[0]], entry 1, ...
        assert names[trace.region_ids[0]] == "y"
        assert names[trace.region_ids[1]] == "entries"
        assert names[trace.region_ids[2]] == "x"
        assert trace.elements[2] == spmv.col[0]

    def test_multi_step(self, spmv):
        one = emit_spmv_trace(spmv, 1)
        three = emit_spmv_trace(spmv, 3)
        assert len(three) == 3 * len(one)

    def test_rcm_improves_locality_on_band_graph(self):
        """The framework's data reorderings pay off for SpMV too."""
        rng = np.random.default_rng(7)
        n = 3000
        base_idx = np.arange(n - 3)
        left = np.concatenate([base_idx, base_idx, base_idx])
        right = np.concatenate([base_idx + 1, base_idx + 2, base_idx + 3])
        scramble = rng.permutation(n)
        ds = Dataset(
            "band", n,
            scramble[left].astype(np.int64),
            scramble[right].astype(np.int64),
        )
        data = make_spmv_data(ds)
        sigma = reverse_cuthill_mckee(
            AccessMap.from_columns([ds.left, ds.right], n)
        )
        renum = relabel_spmv(data, sigma)
        machine = machine_by_name("pentium4")
        base_cost = simulate_cost(emit_spmv_trace(data), machine).cycles
        rcm_cost = simulate_cost(emit_spmv_trace(renum), machine).cycles
        assert rcm_cost < 0.8 * base_cost
