"""Telemetry primitives: counters, histograms, spans, snapshots."""

import json
import threading

import pytest

from repro.service import Counter, Histogram, JsonlSink, ListSink, Telemetry

pytestmark = pytest.mark.service


class TestCounter:
    def test_starts_at_zero_and_adds(self):
        c = Counter()
        assert c.value == 0
        assert c.add() == 1
        assert c.add(5) == 6
        assert c.add(-2) == 4

    def test_concurrent_increments_are_exact(self):
        c = Counter()
        per_thread, threads = 2000, 8

        def bump():
            for _ in range(per_thread):
                c.add()

        workers = [threading.Thread(target=bump) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert c.value == per_thread * threads


class TestHistogram:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            Histogram(capacity=0)

    def test_empty_summary_is_all_none(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        for key in ("mean_ms", "min_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert summary[key] is None

    def test_nearest_rank_percentiles(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100 ms
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(99) == 99.0
        summary = h.summary()
        assert summary["count"] == 100
        assert summary["min_ms"] == 1.0
        assert summary["max_ms"] == 100.0
        assert summary["mean_ms"] == pytest.approx(50.5)
        assert summary["p50_ms"] == 50.0

    def test_single_sample(self):
        h = Histogram()
        h.observe(7.0)
        assert h.percentile(50) == 7.0
        assert h.percentile(99) == 7.0

    def test_reservoir_is_sliding_window(self):
        h = Histogram(capacity=4)
        for v in (1.0, 2.0, 3.0, 4.0, 100.0):
            h.observe(v)
        # Streaming aggregates see everything; percentiles see the window.
        assert h.count == 5
        assert h.summary()["min_ms"] == 1.0
        assert h.percentile(1) == 2.0  # 1.0 slid out of the reservoir


class TestSpans:
    def test_emit_span_writes_one_json_line(self):
        sink = ListSink()
        t = Telemetry(sink=sink)
        t.emit_span("bind", "r1", 12.5, waiters=3)
        (record,) = sink.records()
        assert record["stage"] == "bind"
        assert record["request_id"] == "r1"
        assert record["elapsed_ms"] == 12.5
        assert record["waiters"] == 3
        assert "ts" in record

    def test_span_context_manager_times_and_tags_errors(self):
        sink = ListSink()
        t = Telemetry(sink=sink)
        with t.span("ok-stage", "r1"):
            pass
        with pytest.raises(RuntimeError):
            with t.span("bad-stage", "r2"):
                raise RuntimeError("boom")
        records = sink.records()
        assert [r["stage"] for r in records] == ["ok-stage", "bad-stage"]
        assert "error" not in records[0]
        assert records[1]["error"] == "RuntimeError"

    def test_no_sink_drops_spans_silently(self):
        Telemetry().emit_span("bind", "r1", 1.0)  # must not raise

    def test_jsonl_sink_appends_newline_terminated_lines(self):
        class Buffer:
            def __init__(self):
                self.chunks = []

            def write(self, chunk):
                self.chunks.append(chunk)

            def flush(self):
                pass

        buffer = Buffer()
        t = Telemetry(sink=JsonlSink(buffer))
        t.emit_span("bind", "r1", 1.0)
        t.emit_span("bind", "r2", 2.0)
        lines = "".join(buffer.chunks).splitlines()
        assert [json.loads(l)["request_id"] for l in lines] == ["r1", "r2"]


class TestSnapshot:
    def test_snapshot_is_json_able_and_sorted(self):
        t = Telemetry()
        t.counter("zeta").add(3)
        t.counter("alpha").add()
        t.histogram("lat").observe(5.0)
        snap = t.snapshot()
        assert list(snap["counters"]) == ["alpha", "zeta"]
        assert snap["counters"]["zeta"] == 3
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # must serialize

    def test_registries_return_the_same_instance(self):
        t = Telemetry()
        assert t.counter("x") is t.counter("x")
        assert t.histogram("y") is t.histogram("y")

    def test_describe_mentions_counters_and_percentiles(self):
        t = Telemetry()
        t.counter("submitted").add(4)
        t.histogram("total_ms").observe(3.0)
        text = t.describe()
        assert "submitted: 4" in text
        assert "p50=" in text
