"""Fixtures for the bind-service suite: tiny datasets, short queues.

Scale semantics are inverted (larger scale = smaller dataset), so the
suite runs everything at ``SCALE = 256`` — binds take milliseconds and
the coalescing/overload shapes come from concurrency, not data volume.
"""

import pytest

from repro.service import PlanService, ServiceConfig

#: Tiny-dataset scale for every service test.
SCALE = 256

#: A representative three-step plan spec (data + iteration reordering).
SPEC = {
    "kernel": "moldyn",
    "name": "svc-test",
    "steps": [
        {"type": "cpack"},
        {"type": "lexgroup"},
        {"type": "fst", "seed_block_size": 32},
    ],
}


def make_request(spec=None, **kwargs):
    from repro.service import BindRequest

    kwargs.setdefault("dataset", "mol1")
    kwargs.setdefault("scale", SCALE)
    return BindRequest(spec=dict(spec if spec is not None else SPEC), **kwargs)


def direct_digests(spec=None, dataset="mol1", scale=SCALE, **bind_kwargs):
    """Ground truth: digests of a direct ``CompositionPlan.bind()``."""
    from repro.kernels.data import make_kernel_data
    from repro.kernels.datasets import generate_dataset
    from repro.runtime.planspec import plan_from_spec
    from repro.service import result_digests

    plan = plan_from_spec(dict(spec if spec is not None else SPEC))
    data = make_kernel_data(
        plan.kernel.name, generate_dataset(dataset, scale=scale)
    )
    return result_digests(plan.bind(data, **bind_kwargs))


@pytest.fixture
def service():
    with PlanService(
        ServiceConfig(workers=2, queue_depth=16), cache=None
    ) as svc:
        yield svc
