"""Fleet core: routing, breakers, crash recovery, deadline inheritance.

Chaos here is deterministic (``ChaosPlan`` seeds chosen so the schedule
is known ahead of time), so every recovery path is exercised on purpose
rather than by luck — and each recovered response is checked
bit-identical to a direct ``CompositionPlan.bind()``.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (
    DeadlineExceededError,
    ServiceOverloadError,
    ValidationError,
)
from repro.service import (
    BindRequest,
    ChaosPlan,
    CircuitBreaker,
    FleetConfig,
    FleetService,
    HashRing,
    backoff_delay,
)

from tests.service.conftest import SCALE, SPEC, direct_digests, make_request

pytestmark = pytest.mark.service


def fleet_config(tmp_path, **overrides):
    overrides.setdefault("shards", 2)
    overrides.setdefault("cache_dir", str(tmp_path / "fleet-cache"))
    overrides.setdefault("attempt_timeout_s", 30.0)
    return FleetConfig(**overrides)


def invariant_holds(fleet):
    counters = fleet.stats()["counters"]
    return counters.get("submitted", 0) == (
        counters.get("accepted", 0)
        + counters.get("coalesced", 0)
        + counters.get("rejected", 0)
        + counters.get("shed", 0)
    )


class TestHashRing:
    def test_routing_is_deterministic(self):
        ring = HashRing(shards=4)
        assert ring.route("some-key") == ring.route("some-key")
        assert HashRing(shards=4).route("some-key") == ring.route("some-key")

    def test_exclusion_walks_to_a_survivor(self):
        ring = HashRing(shards=3)
        key = "a-fingerprint"
        primary = ring.route(key)
        fallback = ring.route(key, exclude={primary})
        assert fallback is not None and fallback != primary
        assert ring.route(key, exclude={0, 1, 2}) is None

    def test_keys_spread_across_shards(self):
        ring = HashRing(shards=4)
        owners = {ring.route(f"key-{i}") for i in range(256)}
        assert owners == {0, 1, 2, 3}

    def test_membership_change_moves_only_some_keys(self):
        small, large = HashRing(shards=3), HashRing(shards=4)
        keys = [f"key-{i}" for i in range(512)]
        moved = sum(1 for k in keys if small.route(k) != large.route(k))
        # Consistent hashing: adding one shard should move roughly 1/4
        # of the keys, not rehash everything.
        assert 0 < moved < len(keys) // 2


class TestBackoff:
    def test_deterministic_and_bounded(self):
        a = backoff_delay(0.02, 0.5, "r1", 1, seed=3)
        assert a == backoff_delay(0.02, 0.5, "r1", 1, seed=3)
        assert a != backoff_delay(0.02, 0.5, "r2", 1, seed=3)
        for attempt in range(12):
            d = backoff_delay(0.02, 0.5, "r1", attempt)
            assert 0 <= d <= 0.5

    def test_grows_exponentially_on_average(self):
        early = backoff_delay(0.02, 60.0, "r", 0)
        late = backoff_delay(0.02, 60.0, "r", 6)
        assert late > early


class TestCircuitBreaker:
    def test_state_machine_full_cycle(self):
        clock = {"t": 0.0}
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=2,
            cooldown_s=1.0,
            clock=lambda: clock["t"],
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # still cooling down
        clock["t"] = 1.5
        assert breaker.allow()  # the half-open probe slot
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()
        assert ("closed", "open") in transitions
        assert ("half-open", "closed") in transitions

    def test_failed_probe_reopens(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, clock=lambda: clock["t"]
        )
        breaker.record_failure()
        clock["t"] = 2.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"

    def test_force_open_latches(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(cooldown_s=0.1, clock=lambda: clock["t"])
        breaker.force_open()
        clock["t"] = 100.0
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "open" and not breaker.allow()


class TestFleetServing:
    def test_bind_is_bit_identical_to_direct(self, tmp_path):
        with FleetService(fleet_config(tmp_path)) as fleet:
            response = fleet.bind(make_request())
            assert response.status == "ok"
            assert response.fingerprints == direct_digests()
            assert invariant_holds(fleet)

    def test_second_bind_warm_starts_from_shared_disk(self, tmp_path):
        config = fleet_config(tmp_path)
        with FleetService(config) as fleet:
            first = fleet.bind(make_request())
        # A brand-new fleet (fresh workers) over the same cache dir.
        with FleetService(fleet_config(tmp_path)) as fleet:
            second = fleet.bind(make_request())
        assert first.cache == "stored"
        assert second.cache == "hit"
        assert first.fingerprints == second.fingerprints

    def test_identical_concurrent_requests_coalesce(self, tmp_path):
        with FleetService(fleet_config(tmp_path)) as fleet:
            barrier = threading.Barrier(6)
            responses = [None] * 6

            def client(i):
                barrier.wait()
                responses[i] = fleet.bind(make_request())

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            counters = fleet.stats()["counters"]
            assert all(r.status == "ok" for r in responses)
            assert counters["coalesced"] == sum(
                1 for r in responses if r.coalesced
            )
            assert invariant_holds(fleet)

    def test_bind_before_start_is_a_typed_rejection(self, tmp_path):
        fleet = FleetService(fleet_config(tmp_path))
        response = fleet.bind(make_request())
        assert response.status == "error"
        assert response.error["type"] == "ServiceOverloadError"

    def test_malformed_spec_rejected_not_retried(self, tmp_path):
        with FleetService(fleet_config(tmp_path)) as fleet:
            response = fleet.bind(
                make_request(spec={"kernel": "moldyn", "steps": ["nope"]})
            )
            counters = fleet.stats()["counters"]
            assert response.status == "error"
            assert counters.get("retries", 0) == 0
            assert invariant_holds(fleet)

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            FleetConfig(shards=0)
        with pytest.raises(ValidationError):
            FleetConfig(overload="shed-oldest")
        with pytest.raises(ValidationError):
            FleetConfig(fallback="nope")


class TestCrashRecovery:
    def test_kill_mid_bind_recovers_bit_identically(self, tmp_path):
        # seed=7 kills dispatch 0; the retry (dispatch 1) survives.
        plan = ChaosPlan(seed=7, kill_rate=0.5, kill_delay_s=0.0)
        assert plan.fires("kill", 0) and not plan.fires("kill", 1)
        config = fleet_config(tmp_path, chaos=plan, backoff_base_s=0.01)
        with FleetService(config) as fleet:
            response = fleet.bind(make_request())
            counters = fleet.stats()["counters"]
            assert response.status == "ok"
            assert response.fingerprints == direct_digests()
            assert counters["worker_crashes"] == 1
            assert counters["retries"] == 1
            assert invariant_holds(fleet)

    def test_all_shards_dark_degrades_to_in_process(self, tmp_path):
        plan = ChaosPlan(seed=3, kill_rate=1.0, kill_delay_s=0.0)
        config = fleet_config(
            tmp_path,
            chaos=plan,
            max_retries=8,
            failure_threshold=2,
            breaker_cooldown_s=60.0,  # stay open for the whole test
            backoff_base_s=0.005,
            attempt_timeout_s=5.0,
        )
        with FleetService(config) as fleet:
            response = fleet.bind(make_request())
            stats = fleet.stats()
            assert response.status == "ok"
            assert response.fingerprints == direct_digests()
            assert stats["counters"]["fallback_binds"] == 1
            assert all(s["breaker"] == "open" for s in stats["shards"])
            assert invariant_holds(fleet)

    def test_restart_budget_exhaustion_latches_shard_dark(self, tmp_path):
        plan = ChaosPlan(seed=3, kill_rate=1.0, kill_delay_s=0.0)
        config = fleet_config(
            tmp_path,
            shards=1,
            chaos=plan,
            max_retries=3,
            failure_threshold=2,
            breaker_cooldown_s=60.0,
            restart_budget=0,  # the first crash exhausts the budget
            supervisor_poll_s=0.02,
            backoff_base_s=0.005,
            attempt_timeout_s=5.0,
        )
        with FleetService(config) as fleet:
            response = fleet.bind(make_request())
            assert response.status == "ok"  # served by the fallback
            deadline = fleet.telemetry.now() + 5.0
            while fleet.telemetry.now() < deadline:
                if any(s["dark"] for s in fleet.supervisor.stats()):
                    break
                threading.Event().wait(0.05)
            stats = fleet.stats()
            assert any(s["dark"] for s in stats["shards"])
            assert stats["counters"].get("shards_dark", 0) >= 1


class TestDeadlineInheritance:
    def test_retries_inherit_budget_one_deadline_error(self, tmp_path):
        """Regression: a request retried past its deadline raises
        DeadlineExceededError exactly once in the stats — retries run on
        the *remaining* budget, never a fresh one."""
        plan = ChaosPlan(seed=3, kill_rate=1.0, kill_delay_s=0.0)
        config = fleet_config(
            tmp_path,
            chaos=plan,
            max_retries=50,
            failure_threshold=1000,  # breakers never open: pure retry loop
            backoff_base_s=0.05,
            attempt_timeout_s=5.0,
        )
        with FleetService(config) as fleet:
            response = fleet.bind(make_request(deadline_s=0.2))
            counters = fleet.stats()["counters"]
            assert response.status == "error"
            assert response.error["type"] == "DeadlineExceededError"
            assert counters["deadline_raised"] == 1
            assert counters["failed"] == 1
            # The loop gave up well before exhausting its 50 retries.
            assert counters.get("retries", 0) < 50
            assert invariant_holds(fleet)

    def test_deadline_not_charged_on_success(self, tmp_path):
        with FleetService(fleet_config(tmp_path)) as fleet:
            response = fleet.bind(make_request(deadline_s=30.0))
            counters = fleet.stats()["counters"]
            assert response.status == "ok"
            assert counters.get("deadline_raised", 0) == 0


class TestDrainFleet:
    def test_drain_rejects_new_submissions(self, tmp_path):
        with FleetService(fleet_config(tmp_path)) as fleet:
            fleet.bind(make_request())
            outcome = fleet.drain(deadline_s=5.0)
            assert outcome == {"drained": True, "abandoned_flights": 0}
            late = fleet.bind(make_request())
            assert late.status == "error"
            assert late.error["type"] == "ServiceOverloadError"
            assert invariant_holds(fleet)

    def test_health_reflects_draining(self, tmp_path):
        fleet = FleetService(fleet_config(tmp_path)).start()
        assert fleet.health()["ok"]
        fleet.drain(deadline_s=2.0)
        assert not fleet.health()["ok"]


class TestAccountingInvariantProperty:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        clients=st.integers(min_value=1, max_value=4),
        requests=st.integers(min_value=1, max_value=10),
        kill_seed=st.integers(min_value=0, max_value=1000),
        kill_rate=st.sampled_from([0.0, 0.4]),
        queue_depth=st.integers(min_value=1, max_value=4),
    )
    def test_invariant_under_crashes_and_rejection(
        self, tmp_path_factory, clients, requests, kill_seed, kill_rate,
        queue_depth,
    ):
        """accepted + coalesced + rejected + shed == submitted, under
        concurrent writers, mid-flight worker crashes, and a reject
        admission policy — every submission lands in exactly one
        bucket no matter how the fleet fails."""
        tmp_path = tmp_path_factory.mktemp("fleet-prop")
        chaos = (
            ChaosPlan(seed=kill_seed, kill_rate=kill_rate, kill_delay_s=0.0)
            if kill_rate > 0
            else None
        )
        config = fleet_config(
            tmp_path,
            chaos=chaos,
            queue_depth=queue_depth,
            overload="reject",
            backoff_base_s=0.005,
            max_retries=4,
            attempt_timeout_s=10.0,
        )
        with FleetService(config) as fleet:
            workload = [
                make_request(
                    spec={
                        "kernel": "moldyn",
                        "steps": [
                            {"type": "cpack"},
                            {"type": "fst", "seed_block_size": 16 * (i % 3 + 1)},
                        ],
                    }
                )
                for i in range(requests)
            ]
            threads = []
            for i in range(clients):
                chunk = workload[i::clients]

                def run(chunk=chunk):
                    for request in chunk:
                        fleet.bind(request)

                threads.append(threading.Thread(target=run))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            counters = fleet.stats()["counters"]
            assert counters["submitted"] == requests
            assert invariant_holds(fleet)
            # Every submission also resolved: completed + failed
            # covers the admitted + coalesced + rejected population.
            resolved = counters.get("completed", 0) + counters.get("failed", 0)
            assert resolved == requests
