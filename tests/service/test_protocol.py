"""Wire protocol: JSON codec, typed-error mapping, stdio loop."""

import io
import json

import pytest

from repro.errors import ServiceOverloadError, ValidationError
from repro.service import BindResponse, PlanService, ServiceConfig
from repro.service.protocol import (
    DEFAULT_ERROR_STATUS,
    HTTP_STATUS_BY_ERROR,
    decode_request,
    encode_response,
    error_response,
    handle_line,
    http_status_for,
    serve_stdio,
)

from tests.service.conftest import SCALE, SPEC, direct_digests

pytestmark = pytest.mark.service


def request_line(**overrides):
    payload = {"spec": dict(SPEC), "dataset": "mol1", "scale": SCALE}
    payload.update(overrides)
    return json.dumps(payload)


class TestCodec:
    def test_decode_request_round_trips(self):
        request = decode_request(request_line(num_steps=3, verify=True))
        assert request.dataset == "mol1"
        assert request.num_steps == 3
        assert request.verify is True
        assert decode_request(json.dumps(request.to_dict())).spec == request.spec

    def test_decode_rejects_non_json(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            decode_request("{nope")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ValidationError, match="JSON object"):
            decode_request("[1, 2]")

    def test_encode_response_is_one_sorted_json_line(self):
        response = BindResponse(request_id="r1", status="ok")
        line = encode_response(response)
        assert "\n" not in line
        decoded = json.loads(line)
        assert decoded["request_id"] == "r1"
        assert BindResponse.from_dict(decoded).status == "ok"


class TestErrorMapping:
    def test_ok_maps_to_200(self):
        assert http_status_for(BindResponse(request_id="r", status="ok")) == 200

    @pytest.mark.parametrize(
        "error_type,status", sorted(HTTP_STATUS_BY_ERROR.items())
    )
    def test_typed_errors_map_to_contracted_statuses(self, error_type, status):
        response = BindResponse(
            request_id="r", status="error", error={"type": error_type}
        )
        assert http_status_for(response) == status

    def test_unknown_typed_error_gets_default_status(self):
        response = BindResponse(
            request_id="r", status="error", error={"type": "KernelError"}
        )
        assert http_status_for(response) == DEFAULT_ERROR_STATUS

    def test_error_response_preserves_shed_flag(self):
        exc = ServiceOverloadError("shed", shed=True, stage="service")
        response = error_response(exc, request_id="r9")
        assert response.error["shed"] is True
        assert response.request_id == "r9"
        assert http_status_for(response) == 503


class TestStdio:
    @pytest.fixture
    def service(self):
        with PlanService(
            ServiceConfig(workers=2, queue_depth=8), cache=None
        ) as svc:
            yield svc

    def test_handle_line_skips_blanks(self, service):
        assert handle_line(service, "") is None
        assert handle_line(service, "   \n") is None

    def test_handle_line_serves_one_request(self, service):
        encoded = handle_line(service, request_line())
        response = BindResponse.from_dict(json.loads(encoded))
        assert response.status == "ok"
        assert response.fingerprints == direct_digests()

    def test_serve_stdio_closed_loop(self, service):
        stdin = io.StringIO(
            "\n".join([request_line(), "", "not json", request_line()]) + "\n"
        )
        stdout = io.StringIO()
        served = serve_stdio(service, stdin, stdout)
        lines = stdout.getvalue().splitlines()
        assert served == 3  # the blank line is skipped
        statuses = [json.loads(line)["status"] for line in lines]
        assert statuses == ["ok", "error", "ok"]
        error = json.loads(lines[1])["error"]
        assert error["type"] == "ValidationError"
