"""PlanService core: coalescing, admission control, deadlines, stats.

Overload shapes are made deterministic by stalling the bind stage on an
event (the worker parks inside ``_bind_flight``), filling the admission
queue with *distinct* specs (identical ones would coalesce instead of
queueing), and only then releasing the stall.
"""

import threading

import pytest

from repro.errors import (
    DeadlineExceededError,
    ServiceOverloadError,
    ValidationError,
)
from repro.plancache import PlanCache
from repro.service import (
    BindRequest,
    PlanService,
    ServiceConfig,
    service_self_check,
)

from tests.service.conftest import SCALE, SPEC, direct_digests, make_request

pytestmark = pytest.mark.service


def distinct_spec(index):
    spec = dict(SPEC)
    spec["steps"] = [
        {"type": "cpack"},
        {"type": "fst", "seed_block_size": 16 * (index + 1)},
    ]
    return spec


def stall_binds(service):
    """Park every bind on an event; returns the release event."""
    release = threading.Event()
    original = service._bind_flight

    def stalled(flight):
        release.wait()
        return original(flight)

    service._bind_flight = stalled
    return release


def invariant_holds(service):
    counters = service.stats()["counters"]
    return counters.get("submitted", 0) == (
        counters.get("accepted", 0)
        + counters.get("coalesced", 0)
        + counters.get("rejected", 0)
        + counters.get("shed", 0)
    )


class TestCoalescing:
    def test_identical_concurrent_requests_cost_one_bind(self, service):
        release = stall_binds(service)
        responses = [None] * 8

        def client(i):
            responses[i] = service.bind(make_request())

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        # Wait until every request has attached to the stalled flight.
        deadline = threading.Event()
        for _ in range(200):
            if service.stats()["counters"].get("coalesced", 0) == 7:
                break
            deadline.wait(0.01)
        release.set()
        for t in threads:
            t.join()

        counters = service.stats()["counters"]
        assert counters["binds_executed"] == 1
        assert counters["accepted"] == 1
        assert counters["coalesced"] == 7
        assert invariant_holds(service)
        expected = direct_digests()
        leads = [r for r in responses if not r.coalesced]
        assert len(leads) == 1
        for r in responses:
            assert r.status == "ok"
            assert r.fingerprints == expected

    def test_distinct_specs_do_not_coalesce(self, service):
        release = stall_binds(service)
        tickets = [
            service.submit(make_request(distinct_spec(0))),
            service.submit(make_request(distinct_spec(1))),
        ]
        # Two concurrent but *distinct* specs: two flights, no sharing.
        assert tickets[0].flight is not tickets[1].flight
        assert service.stats()["counters"].get("coalesced", 0) == 0
        release.set()
        assert all(service.wait(t).status == "ok" for t in tickets)
        assert service.stats()["counters"]["binds_executed"] == 2

    def test_coalescing_can_be_disabled(self):
        with PlanService(
            ServiceConfig(workers=2, queue_depth=32, coalesce=False),
            cache=None,
        ) as service:
            release = stall_binds(service)
            threads = [
                threading.Thread(
                    target=service.bind, args=(make_request(),)
                )
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for _ in range(200):
                if service.stats()["counters"].get("accepted", 0) == 4:
                    break
                threading.Event().wait(0.01)
            release.set()
            for t in threads:
                t.join()
            counters = service.stats()["counters"]
            assert counters["accepted"] == 4
            assert counters.get("coalesced", 0) == 0
            assert counters["binds_executed"] == 4

    def test_sequential_identical_requests_rebind(self, service):
        first = service.bind(make_request())
        second = service.bind(make_request())
        # No flight in progress the second time: nothing to coalesce.
        assert not first.coalesced and not second.coalesced
        assert first.fingerprints == second.fingerprints
        assert service.stats()["counters"]["binds_executed"] == 2


class TestBitIdentity:
    def test_response_digests_match_direct_bind(self, service):
        for index in range(3):
            spec = distinct_spec(index)
            response = service.bind(make_request(spec))
            assert response.status == "ok"
            assert response.fingerprints == direct_digests(spec)

    def test_verify_and_num_steps_are_part_of_the_flight_key(self, service):
        release = stall_binds(service)
        tickets = [
            service.submit(make_request(verify=True)),
            service.submit(make_request(verify=False)),
            service.submit(make_request(num_steps=3)),
        ]
        assert service.stats()["counters"].get("coalesced", 0) == 0
        release.set()
        for ticket in tickets:
            assert service.wait(ticket).status == "ok"

    def test_bind_result_returns_live_arrays(self, service):
        result = service.bind_result(make_request())
        from repro.service import result_digests

        assert result_digests(result) == direct_digests()


class TestAdmissionControl:
    def overloaded_service(self, overload, queue_depth=2):
        service = PlanService(
            ServiceConfig(
                workers=1, queue_depth=queue_depth, overload=overload
            ),
            cache=None,
        ).start()
        release = stall_binds(service)
        # One flight running (dequeued), queue_depth more parked in queue.
        running = service.submit(make_request(distinct_spec(0)))
        for _ in range(200):
            if service.stats()["queue_len"] == 0:
                break
            threading.Event().wait(0.01)
        queued = [
            service.submit(make_request(distinct_spec(i + 1)))
            for i in range(queue_depth)
        ]
        return service, release, [running] + queued

    def test_reject_policy_raises_typed_overload(self):
        service, release, tickets = self.overloaded_service("reject")
        try:
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(make_request(distinct_spec(9)))
            assert not excinfo.value.shed
            # bind() wraps the same failure as a typed error response.
            response = service.bind(make_request(distinct_spec(8)))
            assert response.status == "error"
            assert response.error["type"] == "ServiceOverloadError"
            release.set()
            for ticket in tickets:
                assert service.wait(ticket).status == "ok"
            assert service.stats()["counters"]["rejected"] == 2
            assert invariant_holds(service)
        finally:
            release.set()
            service.stop()

    def test_shed_oldest_reclassifies_the_victim(self):
        service, release, tickets = self.overloaded_service("shed-oldest")
        try:
            newest = service.submit(make_request(distinct_spec(9)))
            release.set()
            responses = [service.wait(t) for t in tickets]
            # The oldest *queued* flight was shed; the running one and
            # the newcomer completed.
            shed = [r for r in responses if r.status == "error"]
            assert len(shed) == 1
            assert shed[0].error["type"] == "ServiceOverloadError"
            assert shed[0].error["shed"] is True
            assert service.wait(newest).status == "ok"
            counters = service.stats()["counters"]
            assert counters["shed"] == 1
            assert invariant_holds(service)
        finally:
            release.set()
            service.stop()

    def test_block_policy_times_out_with_typed_error(self):
        service = PlanService(
            ServiceConfig(
                workers=1,
                queue_depth=1,
                overload="block",
                admission_timeout_s=0.05,
            ),
            cache=None,
        ).start()
        release = stall_binds(service)
        try:
            running = service.submit(make_request(distinct_spec(0)))
            for _ in range(200):
                if service.stats()["queue_len"] == 0:
                    break
                threading.Event().wait(0.01)
            queued = service.submit(make_request(distinct_spec(1)))
            with pytest.raises(ServiceOverloadError, match="blocked longer"):
                service.submit(make_request(distinct_spec(2)))
            release.set()
            assert service.wait(running).status == "ok"
            assert service.wait(queued).status == "ok"
            assert invariant_holds(service)
        finally:
            release.set()
            service.stop()

    def test_block_policy_admits_once_capacity_frees(self):
        with PlanService(
            ServiceConfig(workers=2, queue_depth=1, overload="block"),
            cache=None,
        ) as service:
            responses = [
                service.bind(make_request(distinct_spec(i))) for i in range(4)
            ]
            assert all(r.status == "ok" for r in responses)
            assert invariant_holds(service)

    def test_malformed_spec_counts_as_rejected(self, service):
        response = service.bind(
            make_request({"kernel": "no-such-kernel", "steps": ["cpack"]})
        )
        assert response.status == "error"
        assert response.error["type"] == "BindError"
        assert service.stats()["counters"]["rejected"] == 1
        assert invariant_holds(service)

    def test_unknown_dataset_is_typed(self, service):
        response = service.bind(make_request(dataset="no-such-dataset"))
        assert response.status == "error"
        assert invariant_holds(service)

    def test_submit_without_start_is_overload(self):
        service = PlanService(ServiceConfig(workers=1), cache=None)
        with pytest.raises(ServiceOverloadError, match="not running"):
            service.submit(make_request())


class TestDeadlines:
    def test_zero_deadline_raise_policy_is_deterministic(self, service):
        response = service.bind(
            make_request(deadline_s=0.0, on_deadline="raise")
        )
        assert response.status == "error"
        assert response.error["type"] == "DeadlineExceededError"

    def test_zero_deadline_degrade_serves_late_and_marks(self, service):
        response = service.bind(
            make_request(deadline_s=0.0, on_deadline="degrade")
        )
        assert response.status == "ok"
        assert response.deadline_missed is True
        assert response.fingerprints == direct_digests()

    def test_generous_deadline_is_met(self, service):
        response = service.bind(
            make_request(deadline_s=60.0, on_deadline="raise")
        )
        assert response.status == "ok"
        assert response.deadline_missed is False

    def test_unknown_deadline_policy_rejected_at_request_build(self):
        with pytest.raises(ValidationError):
            BindRequest(spec=dict(SPEC), dataset="mol1", on_deadline="panic")

    def test_deadline_error_type_is_catchable_as_timeout(self):
        assert issubclass(DeadlineExceededError, TimeoutError)


class TestPlanCacheIntegration:
    def test_second_round_hits_the_cache(self):
        cache = PlanCache(use_disk=False)
        with PlanService(
            ServiceConfig(workers=2, queue_depth=16), cache=cache
        ) as service:
            cold = service.bind(make_request())
            warm = service.bind(make_request())
        assert cold.cache == "stored"
        assert warm.cache == "hit"
        assert cold.fingerprints == warm.fingerprints

    def test_cacheless_service_reports_no_provenance(self, service):
        assert service.bind(make_request()).cache is None


class TestStatsAndSelfCheck:
    def test_stats_shape(self, service):
        service.bind(make_request())
        stats = service.stats()
        assert stats["accounting_ok"] is True
        assert stats["config"]["workers"] == 2
        assert stats["queue_len"] == 0
        assert stats["inflight"] == 0
        assert stats["histograms"]["total_ms"]["count"] == 1
        assert "p95_ms" in stats["histograms"]["total_ms"]

    def test_describe_mentions_the_invariant(self, service):
        service.bind(make_request())
        assert "service stats:" in service.describe()

    def test_self_check_passes(self):
        check = service_self_check(scale=SCALE)
        assert check["ok"] is True
        assert check["accounting_ok"] is True
        assert check["bit_identical"] is True
        assert check["coalesced"] > 0

    def test_stop_drains_queued_work(self):
        service = PlanService(
            ServiceConfig(workers=1, queue_depth=8), cache=None
        ).start()
        tickets = [
            service.submit(make_request(distinct_spec(i))) for i in range(3)
        ]
        service.stop(drain=True)
        for ticket in tickets:
            assert service.wait(ticket).status == "ok"

    def test_stopped_service_rejects_new_work(self):
        service = PlanService(ServiceConfig(workers=1), cache=None).start()
        service.stop()
        with pytest.raises(ServiceOverloadError):
            service.submit(make_request())
