"""Streaming epoch semantics of the bind service: single-flight epoch
publication, pinned and stale-within-tolerance reads, the server-side
delta-bind path, and cross-shard invalidation fan-out on the fleet."""

import pytest

from repro.errors import ValidationError
from repro.plancache import PlanCache
from repro.runtime.faults import make_drift_delta
from repro.service import BindRequest, PlanService, ServiceConfig

from tests.service.conftest import SCALE, SPEC, direct_digests, make_request

pytestmark = pytest.mark.service


def _epoch_truths(epochs, seed=0, dataset="mol1", scale=SCALE):
    """Ground-truth digests per epoch plus the deltas that produced them."""
    from repro.kernels.data import make_kernel_data
    from repro.kernels.datasets import generate_dataset
    from repro.runtime.planspec import plan_from_spec
    from repro.service import result_digests

    plan = plan_from_spec(dict(SPEC))
    data = make_kernel_data(
        plan.kernel.name, generate_dataset(dataset, scale=scale)
    )
    digests = [result_digests(plan_from_spec(dict(SPEC)).bind(data))]
    deltas = []
    for epoch in range(1, epochs + 1):
        delta = make_drift_delta(
            data, edge_rate=0.02, move_rate=0.02, seed=seed * 1_000 + epoch
        )
        deltas.append(delta)
        data = delta.apply(data)
        digests.append(result_digests(plan_from_spec(dict(SPEC)).bind(data)))
    return digests, deltas


@pytest.fixture
def epoch_service():
    cache = PlanCache(use_disk=False, memory_budget_bytes=1 << 31)
    with PlanService(
        ServiceConfig(workers=2, queue_depth=16), cache=cache
    ) as svc:
        svc.preload_handle("moldyn", "mol1", SCALE)
        yield svc, cache


class TestRequestFields:
    def test_negative_epoch_rejected(self):
        with pytest.raises(ValidationError, match="epoch"):
            make_request(epoch=-1)

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValidationError, match="max_staleness"):
            make_request(max_staleness=-1)

    def test_wire_roundtrip_carries_epoch(self):
        request = make_request(epoch=3, max_staleness=2)
        payload = request.to_dict()
        assert payload["epoch"] == 3 and payload["max_staleness"] == 2
        again = BindRequest.from_dict(payload)
        assert again.epoch == 3 and again.max_staleness == 2

    def test_default_requests_omit_epoch_keys(self):
        payload = make_request().to_dict()
        assert "epoch" not in payload and "max_staleness" not in payload


class TestServiceEpochs:
    def test_advance_then_fresh_bind_is_bit_identical(self, epoch_service):
        svc, cache = epoch_service
        digests, deltas = _epoch_truths(2)
        assert svc.bind(make_request(epoch=0)).fingerprints == digests[0]
        for epoch, delta in enumerate(deltas, start=1):
            assert svc.advance_epoch("moldyn", "mol1", SCALE, delta) == epoch
            response = svc.bind(make_request(epoch=epoch))
            assert response.status == "ok", response.error
            assert response.epoch == epoch and response.stale is False
            assert response.fingerprints == digests[epoch]
        assert svc.current_epoch("moldyn", "mol1", SCALE) == 2
        # The epoch'd binds went through the incremental engine.
        assert cache.stats.delta_patched + cache.stats.delta_fallbacks == 2

    def test_stale_within_tolerance_served_and_counted(self, epoch_service):
        svc, _ = epoch_service
        digests, _ = _epoch_truths(0)
        response = svc.bind(make_request(epoch=1, max_staleness=1))
        assert response.status == "ok", response.error
        assert response.stale is True and response.epoch == 0
        # Stale answers are exact, just old.
        assert response.fingerprints == digests[0]
        assert svc.stats()["counters"].get("stale_served", 0) == 1

    def test_past_tolerance_rejected(self, epoch_service):
        svc, _ = epoch_service
        response = svc.bind(make_request(epoch=3, max_staleness=1))
        assert response.status == "error"
        assert "max_staleness" in response.error["message"]
        assert svc.stats()["counters"].get("rejected", 0) == 1
        assert svc.stats()["accounting_ok"]

    def test_pinned_read_of_retained_epoch(self, epoch_service):
        svc, _ = epoch_service
        digests, deltas = _epoch_truths(1)
        svc.bind(make_request(epoch=0))
        svc.advance_epoch("moldyn", "mol1", SCALE, deltas[0])
        pinned = svc.bind(make_request(epoch=0))
        assert pinned.status == "ok" and pinned.epoch == 0
        assert pinned.stale is False
        assert pinned.fingerprints == digests[0]
        current = svc.bind(make_request())  # no pin: newest epoch
        assert current.epoch == 1 and current.fingerprints == digests[1]

    def test_unpublished_pinned_epoch_rejected(self, epoch_service):
        svc, _ = epoch_service
        svc.advance_epoch(
            "moldyn", "mol1", SCALE, _epoch_truths(1)[1][0]
        )
        response = svc.bind(make_request(epoch=2, max_staleness=0))
        assert response.status == "error"


class TestFleetEpochs:
    def test_fanout_then_bind_and_stale_probe(self, tmp_path):
        from repro.service.fleet import FleetConfig, FleetService

        digests, deltas = _epoch_truths(1)
        config = FleetConfig(
            shards=2, queue_depth=16, cache_dir=str(tmp_path / "fleet"),
        )
        with FleetService(config) as fleet:
            fleet.preload_handle("moldyn", "mol1", SCALE)
            base = fleet.bind(make_request())
            assert base.status == "ok" and base.epoch == 0
            assert base.fingerprints == digests[0]

            assert fleet.advance_epoch("moldyn", "mol1", SCALE, deltas[0]) == 1
            assert fleet.current_epoch("moldyn", "mol1", SCALE) == 1

            fresh = fleet.bind(make_request(epoch=1))
            assert fresh.status == "ok", fresh.error
            assert fresh.epoch == 1 and fresh.stale is False
            assert fresh.fingerprints == digests[1]

            # Probe ahead of publication: stale-but-within-tolerance.
            probe = fleet.bind(make_request(epoch=2, max_staleness=1))
            assert probe.status == "ok", probe.error
            assert probe.stale is True and probe.epoch == 1
            assert probe.fingerprints == digests[1]

            # Past the tolerance: typed rejection, accounting intact.
            rejected = fleet.bind(make_request(epoch=9, max_staleness=1))
            assert rejected.status == "error"
            stats = fleet.stats()
        assert stats["counters"].get("epochs_advanced", 0) == 1
        assert stats["counters"].get("stale_served", 0) == 1
        assert stats["accounting_ok"]
