"""HTTP front end + the CI service smoke gate.

``test_fifty_mixed_requests_smoke`` is the gate the workflow runs: 50
concurrent mixed requests with heavy duplication through the full HTTP
stack; it requires coalescing to engage, every response to be
bit-identical to a direct ``CompositionPlan.bind()``, and the admission
counters to account for every request.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import PlanService, ServiceConfig
from repro.service.httpd import endpoint, serve_http

from tests.service.conftest import SCALE, SPEC, direct_digests

pytestmark = pytest.mark.service


@pytest.fixture
def server():
    service = PlanService(
        ServiceConfig(workers=2, queue_depth=64), cache=None
    ).start()
    httpd = serve_http(service, port=0, background=True)
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    service.stop()


def post_bind(base, payload):
    request = urllib.request.Request(
        base + "/bind",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=60) as reply:
        return reply.status, json.loads(reply.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = get(endpoint(server), "/healthz")
        assert status == 200
        assert payload == {"ok": True}

    def test_bind_round_trip(self, server):
        status, payload = post_bind(
            endpoint(server),
            {"spec": dict(SPEC), "dataset": "mol1", "scale": SCALE},
        )
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["fingerprints"] == direct_digests()

    def test_malformed_body_is_400(self, server):
        request = urllib.request.Request(
            endpoint(server) + "/bind", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=60)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["type"] == (
            "ValidationError"
        )

    def test_unknown_request_key_is_400(self, server):
        status, payload = post_bind(
            endpoint(server),
            {"spec": dict(SPEC), "dataset": "mol1", "bogus": 1},
        )
        assert status == 400

    def test_deadline_error_is_504(self, server):
        status, payload = post_bind(
            endpoint(server),
            {
                "spec": dict(SPEC),
                "dataset": "mol1",
                "scale": SCALE,
                "deadline_s": 0.0,
                "on_deadline": "raise",
            },
        )
        assert status == 504
        assert payload["error"]["type"] == "DeadlineExceededError"

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(endpoint(server) + "/nope", timeout=60)
        assert excinfo.value.code == 404

    def test_stats_reports_accounting(self, server):
        base = endpoint(server)
        post_bind(base, {"spec": dict(SPEC), "dataset": "mol1", "scale": SCALE})
        status, stats = get(base, "/stats")
        assert status == 200
        assert stats["accounting_ok"] is True
        assert stats["counters"]["submitted"] >= 1


class TestSmokeGate:
    def test_fifty_mixed_requests_smoke(self, server):
        base = endpoint(server)
        specs = [dict(SPEC)]
        alt = dict(SPEC)
        alt["steps"] = [{"type": "cpack"}, {"type": "lexgroup"}]
        specs.append(alt)
        expected = [direct_digests(spec) for spec in specs]

        total = 50
        results = [None] * total

        def client(index):
            spec = specs[index % len(specs)]
            results[index] = post_bind(
                base,
                {"spec": dict(spec), "dataset": "mol1", "scale": SCALE},
            )

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(total)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        coalesced = 0
        for index, (status, payload) in enumerate(results):
            assert status == 200, payload
            assert payload["status"] == "ok"
            # Bit-identity with a direct bind, for every single response.
            assert payload["fingerprints"] == expected[index % len(specs)]
            coalesced += bool(payload["coalesced"])

        # Duplicate-heavy concurrent load must engage single-flight.
        assert coalesced > 0

        _, stats = get(base, "/stats")
        counters = stats["counters"]
        assert stats["accounting_ok"] is True
        assert counters["submitted"] == total
        assert counters["coalesced"] == coalesced
        assert counters["binds_executed"] < total
