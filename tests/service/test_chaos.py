"""Chaos campaigns: deterministic process-level faults, invisible recovery.

Every test pins a ``ChaosPlan`` seed and asserts against the *known*
fault schedule (``plan.schedule`` is a pure function), so these are
repeatable regression tests, not flaky roulette.  The bar throughout:
a recovered request's SHA-256 digests must be bit-identical to the
no-fault run.
"""

import time

import pytest

from repro.errors import ValidationError
from repro.plancache.store import QUARANTINE_DIR
from repro.service import ChaosPlan, FleetConfig, FleetService
from repro.service.chaos import CacheCorruptor, WorkerChaos

from tests.service.conftest import direct_digests, make_request

pytestmark = [pytest.mark.service, pytest.mark.chaos]


def fleet_config(tmp_path, **overrides):
    overrides.setdefault("shards", 2)
    overrides.setdefault("cache_dir", str(tmp_path / "fleet-cache"))
    overrides.setdefault("backoff_base_s", 0.01)
    overrides.setdefault("attempt_timeout_s", 30.0)
    return FleetConfig(**overrides)


class TestChaosPlanDeterminism:
    def test_fires_is_a_pure_function(self):
        plan = ChaosPlan(seed=11, kill_rate=0.3)
        first = [plan.fires("kill", seq) for seq in range(64)]
        second = [plan.fires("kill", seq) for seq in range(64)]
        assert first == second
        assert ChaosPlan(seed=11, kill_rate=0.3).schedule(
            "kill", 0, 64
        ) == plan.schedule("kill", 0, 64)

    def test_different_seeds_differ(self):
        a = ChaosPlan(seed=1, kill_rate=0.3).schedule("kill", 0, 128)
        b = ChaosPlan(seed=2, kill_rate=0.3).schedule("kill", 0, 128)
        assert a != b

    def test_rate_meaning(self):
        assert ChaosPlan(seed=5).schedule("kill", 0, 100) == []
        everything = ChaosPlan(seed=5, kill_rate=1.0).schedule("kill", 0, 100)
        assert everything == list(range(100))
        some = ChaosPlan(seed=5, kill_rate=0.25).schedule("kill", 0, 400)
        assert 40 < len(some) < 160  # loose band around 100

    def test_env_round_trip(self):
        plan = ChaosPlan(seed=9, kill_rate=0.1, stall_rate=0.2, slow_s=0.5)
        assert ChaosPlan.from_env(plan.to_env()) == plan
        assert ChaosPlan.from_env("") is None
        # An all-zero plan is "no chaos", not a campaign.
        assert ChaosPlan.from_env(ChaosPlan(seed=3).to_env()) is None

    def test_validation(self):
        with pytest.raises(ValidationError):
            ChaosPlan(kill_rate=1.5)
        with pytest.raises(ValidationError):
            ChaosPlan(slow_s=-1.0)
        with pytest.raises(ValidationError):
            ChaosPlan().fires("meteor", 0)
        with pytest.raises(ValidationError):
            ChaosPlan.from_dict({"seed": 0, "meteor_rate": 1.0})


class TestInjectors:
    def test_slow_injects_latency(self):
        chaos = WorkerChaos(ChaosPlan(seed=0, slow_rate=1.0, slow_s=0.05))
        start = time.monotonic()
        chaos.before_bind(0)
        assert time.monotonic() - start >= 0.05

    def test_stall_gates_the_heartbeat(self):
        chaos = WorkerChaos(ChaosPlan(seed=0, stall_rate=1.0, stall_s=0.08))
        chaos.before_bind(0)
        start = time.monotonic()
        chaos.heartbeat_gate()
        assert time.monotonic() - start >= 0.05

    def test_corruptor_attacks_only_live_artifacts(self, tmp_path):
        import numpy as np

        from repro.plancache import CacheEntry, DiskStore

        store = DiskStore(tmp_path / "cache")
        path = store.put(
            "ab" + "0" * 62,
            CacheEntry(meta={}, arrays={"a": np.arange(4)}),
        )
        quarantined = store.quarantine_dir / "old.npz"
        quarantined.parent.mkdir(parents=True, exist_ok=True)
        quarantined.write_bytes(b"junk")
        corruptor = CacheCorruptor(
            ChaosPlan(seed=0, corrupt_rate=1.0), tmp_path / "cache"
        )
        target = corruptor.maybe_corrupt(0)
        assert target == path
        assert corruptor.corrupted == 1
        assert quarantined.read_bytes() == b"junk"


class TestKillRecovery:
    def test_sigkill_mid_bind_bit_identical_to_no_fault_run(self, tmp_path):
        expected = direct_digests()
        # seed=7 kills dispatches 0, 4, 5, 7 — so request 1 (dispatch 0)
        # is attacked and its retry (dispatch 1) survives; requests on
        # dispatches 2 and 3 run clean.
        plan = ChaosPlan(seed=7, kill_rate=0.5, kill_delay_s=0.0)
        assert plan.schedule("kill", 0, 4) == [0]
        config = fleet_config(tmp_path, chaos=plan)
        with FleetService(config) as fleet:
            responses = [fleet.bind(make_request()) for _ in range(3)]
            counters = fleet.stats()["counters"]
        assert [r.status for r in responses] == ["ok"] * 3
        assert all(r.fingerprints == expected for r in responses)
        assert counters["worker_crashes"] == 1
        assert counters["worker_restarts"] >= 1

    def test_two_campaign_runs_inject_identically(self, tmp_path):
        plan = ChaosPlan(seed=13, kill_rate=0.4, kill_delay_s=0.0)

        def run(directory):
            with FleetService(
                fleet_config(directory, chaos=plan)
            ) as fleet:
                statuses = [
                    fleet.bind(make_request()).status for _ in range(3)
                ]
                counters = fleet.stats()["counters"]
            return statuses, counters.get("worker_crashes", 0)

        first = run(tmp_path / "a")
        second = run(tmp_path / "b")
        assert first == second


class TestStallRecovery:
    def test_wedged_worker_is_killed_and_restarted(self, tmp_path):
        # Stall fires on dispatch 0: the worker serves the bind fine but
        # its heartbeat freezes past the liveness deadline — the
        # supervisor must kill-restart it without losing any request.
        plan = ChaosPlan(seed=0, stall_rate=0.4, stall_s=3.0)
        assert plan.fires("stall", 0)
        config = fleet_config(
            tmp_path,
            chaos=plan,
            liveness_deadline_s=0.3,
            supervisor_poll_s=0.05,
        )
        with FleetService(config) as fleet:
            first = fleet.bind(make_request())
            assert first.status == "ok"
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                counters = fleet.stats()["counters"]
                if counters.get("workers_wedged", 0) >= 1:
                    break
                time.sleep(0.05)
            counters = fleet.stats()["counters"]
            assert counters.get("workers_wedged", 0) >= 1
            assert counters.get("worker_restarts", 0) >= 1
            # The fleet keeps serving after the restart, bit-identically.
            again = fleet.bind(make_request())
            assert again.status == "ok"
            assert again.fingerprints == direct_digests()


class TestCorruptionRecovery:
    def test_corrupted_artifact_quarantined_then_recomputed(self, tmp_path):
        cache_dir = tmp_path / "shared-cache"
        # Warm the shared L2 with a clean artifact.
        with FleetService(
            fleet_config(tmp_path, cache_dir=str(cache_dir))
        ) as fleet:
            warm = fleet.bind(make_request())
        assert warm.status == "ok"
        assert list(cache_dir.glob("*/*.npz"))

        # Corruption fires on dispatch 0 of the next campaign; the fresh
        # fleet's workers (cold memory tier) must hit the torn artifact,
        # quarantine it, and recompute bit-identically.
        plan = ChaosPlan(seed=2, corrupt_rate=0.3)
        assert plan.fires("corrupt", 0)
        with FleetService(
            fleet_config(tmp_path, cache_dir=str(cache_dir), chaos=plan)
        ) as fleet:
            response = fleet.bind(make_request())
            assert fleet.corruptor is not None
            assert fleet.corruptor.corrupted == 1
        assert response.status == "ok"
        assert response.fingerprints == warm.fingerprints
        assert response.fingerprints == direct_digests()
        quarantine = cache_dir / QUARANTINE_DIR
        assert list(quarantine.glob("*.npz"))
