"""Graceful shutdown: drain finishes in-flight work, rejects new work.

The stall idiom from ``test_server`` makes the shapes deterministic:
binds park on an event, so "in-flight during drain" is a controlled
state, not a race.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import PlanService, ServiceConfig

from tests.service.conftest import make_request
from tests.service.test_server import (
    distinct_spec,
    invariant_holds,
    stall_binds,
)

pytestmark = pytest.mark.service


class TestPlanServiceDrain:
    def test_drain_finishes_inflight_then_rejects(self):
        with PlanService(
            ServiceConfig(workers=1, queue_depth=8), cache=None
        ) as service:
            release = stall_binds(service)
            ticket = service.submit(make_request())
            outcome = {}

            def drainer():
                outcome.update(service.drain(deadline_s=10.0))

            thread = threading.Thread(target=drainer)
            thread.start()
            # Draining: new submissions bounce immediately with a typed
            # rejection, while the stalled flight is still in flight.
            late = service.bind(make_request(spec=distinct_spec(1)))
            assert late.status == "error"
            assert late.error["type"] == "ServiceOverloadError"
            release.set()
            thread.join(timeout=10.0)
            assert outcome == {"drained": True, "abandoned_flights": 0}
            response = service.wait(ticket)
            assert response.status == "ok"
            assert invariant_holds(service)

    def test_drain_deadline_sheds_whats_left(self):
        service = PlanService(
            ServiceConfig(workers=1, queue_depth=8), cache=None
        ).start()
        release = stall_binds(service)
        running = service.submit(make_request())
        queued = service.submit(make_request(spec=distinct_spec(1)))
        # Release the stall *after* the drain deadline has passed, so
        # drain gives up with both flights pending.
        timer = threading.Timer(0.5, release.set)
        timer.start()
        outcome = service.drain(deadline_s=0.05)
        assert outcome["drained"] is False
        assert outcome["abandoned_flights"] >= 1
        # The queued flight was shed with exact accounting; the running
        # one finished once the stall released (stop joins the workers).
        assert service.wait(running).status == "ok"
        assert service.wait(queued).status == "error"
        assert invariant_holds(service)
        timer.cancel()

    def test_drain_idempotent_on_stopped_service(self):
        service = PlanService(ServiceConfig(workers=1), cache=None)
        assert service.drain(deadline_s=1.0) == {
            "drained": True,
            "abandoned_flights": 0,
        }

    def test_drain_flushes_telemetry_sink(self):
        class FlushableSink:
            def __init__(self):
                self.flushed = False

            def __call__(self, line):
                pass

            def flush(self):
                self.flushed = True

        sink = FlushableSink()
        from repro.service import Telemetry

        service = PlanService(
            ServiceConfig(workers=1), cache=None,
            telemetry=Telemetry(sink=sink),
        ).start()
        service.bind(make_request())
        service.drain(deadline_s=5.0)
        assert sink.flushed


class TestHttpHealthWhileDraining:
    def test_healthz_degrades_to_503_when_fleet_drains(self, tmp_path):
        from repro.service import FleetConfig, FleetService
        from repro.service.httpd import serve_http

        fleet = FleetService(
            FleetConfig(shards=1, cache_dir=str(tmp_path / "cache"))
        ).start()
        server = serve_http(fleet, port=0, background=True)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            health = json.loads(
                urllib.request.urlopen(base + "/healthz").read()
            )
            assert health["ok"] and health["shards"] == 1
            fleet.drain(deadline_s=2.0)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/healthz")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["draining"] is True
        finally:
            server.shutdown()
            server.server_close()
            fleet.stop()
