"""Corrupt-artifact quarantine: preserved for autopsy, never re-served.

A torn/corrupt ``.npz`` used to be unlinked on read; now it is moved to
a ``quarantine/`` sibling with a reason file so operators can inspect
what went wrong, while the cache still degrades it to an observable safe
miss and subsequent operations (eviction, health, clear) ignore the
quarantined bytes entirely.
"""

import numpy as np
import pytest

from repro.plancache import CacheEntry, DiskStore, PlanCache
from repro.plancache.store import QUARANTINE_DIR

pytestmark = pytest.mark.plancache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def seeded_store(tmp_path):
    store = DiskStore(tmp_path / "cache")
    path = store.put(
        KEY,
        CacheEntry(meta={"n": 1}, arrays={"a": np.arange(8, dtype=np.int64)}),
    )
    return store, path


def corrupt(path):
    data = path.read_bytes()
    path.write_bytes(data[: max(1, len(data) // 3)])


class TestQuarantine:
    def test_corrupt_read_quarantines_with_reason(self, tmp_path):
        store, path = seeded_store(tmp_path)
        corrupt(path)
        assert store.get(KEY) is None  # safe miss, no exception
        assert not path.exists()
        assert store.quarantined() == [path.stem]
        qdir = store.quarantine_dir
        assert (qdir / path.name).exists()
        reason = (qdir / f"{path.stem}.reason.txt").read_text()
        assert KEY in reason and "error:" in reason
        assert store.stats.corrupt == 1
        assert store.stats.corrupt_quarantined == 1

    def test_quarantined_artifact_is_invisible_to_store_ops(self, tmp_path):
        store, path = seeded_store(tmp_path)
        corrupt(path)
        store.get(KEY)
        # keys/total_bytes/health must not count the quarantined bytes.
        assert store.keys() == []
        assert store.total_bytes() == 0
        health = store.health()
        assert health["entries"] == 0
        assert health["quarantined"] == 1
        # clear() wipes live artifacts but leaves the quarantine corpus.
        store.put(OTHER, CacheEntry(meta={}, arrays={"b": np.zeros(4)}))
        assert store.clear() == 1
        assert store.quarantined() == [path.stem]

    def test_rebind_after_quarantine_is_bit_identical(self, tmp_path):
        from tests.plancache.conftest import tiny_data
        from repro.runtime.planspec import plan_from_spec
        from repro.service.request import result_digests

        spec = {"kernel": "moldyn", "steps": [{"type": "cpack"}]}
        data = tiny_data()
        plan = plan_from_spec(spec)

        cache = PlanCache(directory=tmp_path / "cache")
        first = plan.bind(data, cache=cache)
        artifacts = list((tmp_path / "cache").glob("*/*.npz"))
        assert artifacts and artifacts[0].parent.name != QUARANTINE_DIR
        corrupt(artifacts[0])

        # A fresh process (fresh memory tier) over the same directory:
        # corrupt artifact -> quarantine -> recompute, bit-identical.
        rebound = PlanCache(directory=tmp_path / "cache")
        second = plan.bind(data, cache=rebound)
        assert result_digests(first) == result_digests(second)
        assert rebound.stats.corrupt_quarantined == 1
        assert rebound.disk.quarantined()

    def test_stats_describe_mentions_quarantined(self, tmp_path):
        store, path = seeded_store(tmp_path)
        corrupt(path)
        store.get(KEY)
        assert "1 quarantined" in store.stats.describe()
