"""Two-tier store mechanics: LRU budget, atomic artifacts, safe misses."""

import shutil

import numpy as np
import pytest

from repro.errors import CacheError
from repro.plancache import (
    CACHE_DIR_ENV,
    CacheEntry,
    DiskStore,
    MemoryLRU,
    PlanCache,
    resolve_cache_dir,
)

pytestmark = pytest.mark.plancache


def entry_of(nbytes, tag="x"):
    """An entry whose array payload is roughly ``nbytes`` bytes."""
    return CacheEntry(
        meta={"tag": tag},
        arrays={"a": np.zeros(max(1, nbytes // 8), dtype=np.int64)},
    )


class TestMemoryLRU:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(CacheError):
            MemoryLRU(0)

    def test_evicts_least_recently_used_within_budget(self):
        lru = MemoryLRU(budget_bytes=4096)
        lru.put("a", entry_of(1500))
        lru.put("b", entry_of(1500))
        assert len(lru) == 2
        lru.get("a")  # touch: "b" is now the LRU victim
        lru.put("c", entry_of(1500))
        assert lru.get("b") is None
        assert lru.get("a") is not None and lru.get("c") is not None
        assert lru.stats.evictions == 1
        assert lru.total_bytes <= lru.budget_bytes

    def test_oversized_entry_is_not_admitted(self):
        lru = MemoryLRU(budget_bytes=1024)
        lru.put("big", entry_of(64 * 1024))
        assert len(lru) == 0 and lru.get("big") is None
        assert lru.stats.evictions == 0

    def test_reput_replaces_without_double_counting(self):
        lru = MemoryLRU(budget_bytes=8192)
        lru.put("a", entry_of(1000))
        before = lru.total_bytes
        lru.put("a", entry_of(1000))
        assert lru.total_bytes == before and len(lru) == 1

    def test_clear(self):
        lru = MemoryLRU(budget_bytes=8192)
        lru.put("a", entry_of(100))
        lru.put("b", entry_of(100))
        assert lru.clear() == 2
        assert len(lru) == 0 and lru.total_bytes == 0


class TestDiskStore:
    KEY = "ab" + "0" * 62  # fan-out prefix "ab"

    def test_round_trip_and_atomicity(self, tmp_path):
        store = DiskStore(tmp_path / "cache")
        entry = CacheEntry(
            meta={"note": "hello"},
            arrays={"sigma": np.arange(10, dtype=np.int64)},
        )
        path = store.put(self.KEY, entry)
        assert path.exists() and path.parent.name == "ab"
        # Atomic rename leaves no temp files behind.
        leftovers = [
            p for p in (tmp_path / "cache").rglob("*") if p.suffix == ".tmp"
        ]
        assert leftovers == []
        loaded = store.get(self.KEY)
        assert loaded is not None
        assert loaded.meta["note"] == "hello"
        assert np.array_equal(loaded.arrays["sigma"], entry.arrays["sigma"])
        assert store.keys() == [self.KEY]
        assert store.total_bytes() > 0

    def test_truncated_artifact_is_safe_miss_and_removed(self, tmp_path):
        store = DiskStore(tmp_path / "cache")
        path = store.put(self.KEY, entry_of(256))
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.get(self.KEY) is None
        assert store.stats.corrupt == 1
        assert not path.exists()  # healed: the slot is free again

    def test_artifact_under_wrong_key_is_safe_miss(self, tmp_path):
        """An artifact copied to another key's slot must never be served."""
        store = DiskStore(tmp_path / "cache")
        src = store.put(self.KEY, entry_of(256, tag="original"))
        wrong = "cd" + "0" * 62
        dst = store._path(wrong)
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(src, dst)
        assert store.get(wrong) is None  # embedded key mismatch
        assert store.stats.corrupt == 1
        assert store.get(self.KEY) is not None  # the real slot is intact

    def test_format_version_mismatch_is_safe_miss(self, tmp_path, monkeypatch):
        from repro.plancache import store as store_mod

        store = DiskStore(tmp_path / "cache")
        store.put(self.KEY, entry_of(256))
        monkeypatch.setattr(store_mod, "FORMAT_VERSION", 2)
        assert store.get(self.KEY) is None
        assert store.stats.corrupt == 1

    def test_clear_and_health(self, tmp_path):
        store = DiskStore(tmp_path / "cache")
        path = store.put(self.KEY, entry_of(256))
        path.write_bytes(b"not an npz")
        health = store.health()
        assert health["exists"] and health["writable"]
        assert health["entries"] == 1 and health["unreadable"] == 1
        assert store.clear() == 1
        assert store.keys() == []

    def test_unwritable_directory_raises_cache_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go\n")
        store = DiskStore(blocker / "cache")
        with pytest.raises(CacheError):
            store.put(self.KEY, entry_of(64))


class TestResolveCacheDir:
    def test_explicit_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "arg") == tmp_path / "arg"

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir() == tmp_path / "env"

    def test_default_is_user_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        resolved = str(resolve_cache_dir())
        assert resolved.endswith("repro/plancache")


class TestPlanCache:
    def test_disk_hit_is_promoted_to_memory(self, tmp_path):
        key = "ef" + "0" * 62
        writer = PlanCache(directory=tmp_path / "cache")
        writer.put(key, entry_of(256))
        # A fresh facade over the same directory: cold memory tier.
        reader = PlanCache(directory=tmp_path / "cache")
        first = reader.get(key)
        assert first is not None and first.meta["tier"] == "disk"
        second = reader.get(key)
        assert second is not None and second.meta["tier"] == "memory"

    def test_memory_only_mode(self):
        cache = PlanCache(use_disk=False)
        key = "aa" + "0" * 62
        cache.put(key, entry_of(128))
        assert cache.get(key) is not None
        assert cache.disk is None
        assert cache.clear() == 0
        assert cache.get(key) is None

    def test_describe_mentions_both_tiers(self, tmp_path):
        cache = PlanCache(directory=tmp_path / "cache")
        text = cache.describe()
        assert "memory tier" in text and "disk tier" in text
