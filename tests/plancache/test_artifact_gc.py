"""Artifact-store disk budgeting: LRU eviction by key group.

``gc`` must evict whole key groups (a build's ``.c`` + ``.so`` +
``.proof`` live or die together), oldest first by the group's newest
mtime, and stop as soon as the store fits the budget.  Content
addressing makes eviction always safe — a re-bind rebuilds — so the
only contract worth testing is *which* files go and *when*.
"""

import os

import pytest

from repro.errors import CacheError
from repro.plancache.artifacts import ArtifactStore


def _populate(store, keys, body=1000, proof=500):
    """One .c + one .proof per key, with strictly increasing mtimes."""
    for step, key in enumerate(keys):
        c_path = store.put_text(key, "c", "x" * body)
        p_path = store.put_text(key, "proof", "y" * proof)
        stamp = 1_000_000 + step * 100
        os.utime(c_path, (stamp, stamp))
        os.utime(p_path, (stamp + 1, stamp + 1))


KEYS = ["aa01", "bb02", "cc03", "dd04", "ee05"]


def test_gc_evicts_oldest_key_groups_first(tmp_path):
    store = ArtifactStore(tmp_path)
    _populate(store, KEYS)
    assert store.total_bytes() == 5 * 1500

    summary = store.gc(max_bytes=4000)
    assert summary["removed_files"] == 6  # three groups x two files
    assert summary["removed_bytes"] == 4500
    assert summary["remaining_bytes"] == 3000
    assert summary["remaining_keys"] == 2
    # The two youngest keys survive, with both of their files.
    assert set(store.keys()) == {"dd04", "ee05"}
    assert store.get("ee05", "c") and store.get("ee05", "proof")
    assert store.get("aa01", "c") is None


def test_gc_groups_are_atomic(tmp_path):
    """A key's files share one fate even when only one of them is old:
    the group ages by its *newest* file."""
    store = ArtifactStore(tmp_path)
    _populate(store, ["aa01", "bb02"])
    # Touch aa01's proof to be the newest file overall: the whole aa01
    # group is now younger than bb02.
    os.utime(store.path("aa01", "proof"), (2_000_000, 2_000_000))
    summary = store.gc(max_bytes=1500)
    assert set(store.keys()) == {"aa01"}
    assert summary["remaining_keys"] == 1


def test_gc_noop_under_budget(tmp_path):
    store = ArtifactStore(tmp_path)
    _populate(store, KEYS)
    summary = store.gc(max_bytes=10**9)
    assert summary["removed_files"] == 0
    assert summary["remaining_keys"] == 5


def test_gc_zero_budget_clears_everything(tmp_path):
    store = ArtifactStore(tmp_path)
    _populate(store, KEYS)
    summary = store.gc(max_bytes=0)
    assert summary["remaining_bytes"] == 0
    assert store.keys() == []
    # Emptied shard directories are pruned too.
    assert not any(store.root.iterdir()) or not store.root.exists()


def test_gc_negative_budget_rejected(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(CacheError, match="budget"):
        store.gc(max_bytes=-1)


def test_gc_on_empty_store(tmp_path):
    store = ArtifactStore(tmp_path)
    summary = store.gc(max_bytes=100)
    assert summary["removed_files"] == 0
    assert summary["remaining_bytes"] == 0


def test_health_reports_by_suffix(tmp_path):
    store = ArtifactStore(tmp_path)
    _populate(store, ["aa01", "bb02"])
    health = store.health()
    assert health["artifacts"] == 2
    assert health["total_bytes"] == 2 * 1500
    assert health["by_suffix"]["c"] == {"files": 2, "bytes": 2000}
    assert health["by_suffix"]["proof"] == {"files": 2, "bytes": 1000}
