"""End-to-end cache correctness: warm binds are bit-identical, stale
entries are safe misses — never wrong reuse."""

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernels.specs import kernel_by_name
from repro.plancache import PlanCache
from repro.plancache import fingerprint as fp
from repro.runtime import (
    ComposedInspector,
    CompositionPlan,
    CPackStep,
    FullSparseTilingStep,
    GPartStep,
    LexGroupStep,
    TilePackStep,
    run_numeric,
)

from tests.plancache.conftest import tiny_data

pytestmark = pytest.mark.plancache

#: Step lists must be rebuilt per plan (steps are stateless but plans
#: own their list), so recipes are factories.
STEP_RECIPES = {
    "cpack": lambda: [CPackStep()],
    "cpack+lg": lambda: [CPackStep(), LexGroupStep()],
    "gpart+lg+fst": lambda: [
        GPartStep(8),
        LexGroupStep(),
        FullSparseTilingStep(16),
    ],
}


def make_plan(recipe="cpack", **kwargs):
    return CompositionPlan(
        kernel_by_name("moldyn"), STEP_RECIPES[recipe](), **kwargs
    )


def assert_bit_identical(cold, warm, num_steps=2):
    """Cold and warm binds agree on every executor-visible artifact."""
    assert np.array_equal(cold.transformed.left, warm.transformed.left)
    assert np.array_equal(cold.transformed.right, warm.transformed.right)
    assert np.array_equal(cold.sigma_nodes.array, warm.sigma_nodes.array)
    for name in cold.transformed.arrays:
        assert np.array_equal(
            cold.transformed.arrays[name], warm.transformed.arrays[name]
        )
    assert sorted(cold.delta_loops) == sorted(warm.delta_loops)
    for pos in cold.delta_loops:
        assert np.array_equal(
            cold.delta_loops[pos].array, warm.delta_loops[pos].array
        )
    assert (cold.tiling is None) == (warm.tiling is None)
    if cold.tiling is not None:
        assert cold.tiling.num_tiles == warm.tiling.num_tiles
        for a, b in zip(cold.tiling.tiles, warm.tiling.tiles):
            assert np.array_equal(a, b)
    cold_run = run_numeric(cold.transformed.copy(), num_steps)
    warm_run = run_numeric(warm.transformed.copy(), num_steps)
    for name in cold_run.arrays:
        assert np.array_equal(cold_run.arrays[name], warm_run.arrays[name])


_DIR_IDS = itertools.count()


@settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    recipe=st.sampled_from(sorted(STEP_RECIPES)),
)
def test_warm_bind_bit_identical_property(tmp_path, seed, recipe):
    """The satellite property: across seeded datasets and compositions, a
    cache-hit bind produces a bit-identical executor result to a cold
    bind (tmp_path is function-scoped; a counter keeps examples apart)."""
    data = tiny_data("moldyn", seed=seed)
    cache = PlanCache(directory=tmp_path / f"case-{next(_DIR_IDS)}")
    plan = make_plan(recipe)
    cold = plan.bind(data, cache=cache)
    warm = plan.bind(data, cache=cache)
    assert cold.report.cache == "stored"
    assert warm.report.cache == "hit"
    assert_bit_identical(cold, warm)


class TestWarmBind:
    def test_skips_every_stage(self, disk_cache, moldyn_data):
        plan = make_plan("gpart+lg+fst")
        plan.bind(moldyn_data, cache=disk_cache)
        assert disk_cache.stats.misses == 1 and disk_cache.stats.stores == 1
        warm = plan.bind(moldyn_data, cache=disk_cache)
        stats = disk_cache.stats
        assert stats.hits == 1 and stats.memory_hits == 1
        assert stats.stages_skipped == len(plan.steps)
        for step in plan.steps:
            assert stats.stage_hits[step.name] == 1
        # The hit report proves nothing executed on this bind.
        assert warm.report.cache == "hit"
        assert all(s.elapsed_s == 0.0 for s in warm.report.stages)

    def test_disk_tier_survives_a_fresh_cache(self, tmp_path, moldyn_data):
        """Simulates a new process: fresh PlanCache, same directory."""
        plan = make_plan("cpack+lg")
        first = PlanCache(directory=tmp_path / "cache")
        cold = plan.bind(moldyn_data, cache=first)
        second = PlanCache(directory=tmp_path / "cache")
        warm = plan.bind(moldyn_data, cache=second)
        assert second.stats.disk_hits == 1 and second.stats.memory_hits == 0
        assert_bit_identical(cold, warm)

    def test_direct_inspector_run_path(self, memory_cache, moldyn_data):
        """ComposedInspector.run computes its own key when not given one."""
        inspector = ComposedInspector(STEP_RECIPES["cpack+lg"]())
        cold = inspector.run(moldyn_data, cache=memory_cache)
        warm = inspector.run(moldyn_data, cache=memory_cache)
        assert memory_cache.stats.hits == 1
        assert_bit_identical(cold, warm)

    @pytest.mark.filterwarnings("ignore::repro.errors.DegradedPlanWarning")
    def test_degraded_plan_is_cached_and_verified_once(
        self, disk_cache, moldyn_data
    ):
        # TilePackStep without a prior tiling fails preconditions; the
        # 'skip' policy degrades, which forces the numeric verifier.
        plan = CompositionPlan(
            kernel_by_name("moldyn"),
            [CPackStep(), TilePackStep()],
            on_stage_failure="skip",
        )
        cold = plan.bind(moldyn_data, cache=disk_cache)
        assert cold.report.degraded and cold.report.verified
        warm = plan.bind(moldyn_data, cache=disk_cache)
        # The hit preserves the degraded stage statuses, and the verifier
        # verdict is memoized: the two executor passes ran only once.
        assert warm.report.degraded and warm.report.verified
        assert warm.report.cache == "hit"
        assert disk_cache.stats.verify_memo_hits == 1
        assert_bit_identical(cold, warm)


class TestInvalidation:
    def test_mutated_index_array_misses(self, disk_cache, moldyn_data):
        plan = make_plan("cpack+lg")
        plan.bind(moldyn_data, cache=disk_cache)
        mutated = moldyn_data.copy()
        mutated.left[0] = (mutated.left[0] + 1) % mutated.num_nodes
        result = plan.bind(mutated, cache=disk_cache)
        assert disk_cache.stats.hits == 0 and disk_cache.stats.misses == 2
        assert result.report.cache == "stored"
        # The fresh entry reflects the mutated dataset, not the stale one.
        reference = make_plan("cpack+lg").bind(mutated.copy())
        assert_bit_identical(reference, result)

    def test_bumped_code_salt_misses(self, disk_cache, moldyn_data, monkeypatch):
        plan = make_plan("cpack")
        plan.bind(moldyn_data, cache=disk_cache)
        monkeypatch.setattr(fp, "SALT_EXTRA", "algorithm-changed")
        plan.bind(moldyn_data, cache=disk_cache)
        assert disk_cache.stats.hits == 0 and disk_cache.stats.misses == 2
        assert disk_cache.stats.stores == 2  # re-stored under the new key

    def test_corrupted_disk_artifact_is_safe_miss(self, tmp_path, moldyn_data):
        plan = make_plan("cpack+lg")
        writer = PlanCache(directory=tmp_path / "cache")
        cold = plan.bind(moldyn_data, cache=writer)
        [artifact] = (tmp_path / "cache").glob("*/*.npz")
        artifact.write_bytes(b"\x00" * 64)  # tampered in place

        reader = PlanCache(directory=tmp_path / "cache")
        result = plan.bind(moldyn_data, cache=reader)
        assert reader.stats.corrupt == 1
        assert reader.stats.hits == 0 and reader.stats.misses == 1
        # The corrupt entry was never served: the bind re-ran cold,
        # produced the right answer, and healed the slot.
        assert result.report.cache == "stored"
        assert_bit_identical(cold, result)
        third = PlanCache(directory=tmp_path / "cache")
        warm = plan.bind(moldyn_data, cache=third)
        assert third.stats.disk_hits == 1 and third.stats.corrupt == 0
        assert_bit_identical(cold, warm)

    def test_wrong_dataset_shape_never_reuses(self, memory_cache):
        """Same kernel, different extents: distinct keys, distinct entries."""
        small = tiny_data("moldyn", num_nodes=30, num_inter=80)
        large = tiny_data("moldyn", num_nodes=40, num_inter=90)
        plan = make_plan("cpack")
        plan.bind(small, cache=memory_cache)
        result = plan.bind(large, cache=memory_cache)
        assert memory_cache.stats.hits == 0
        assert memory_cache.stats.misses == 2
        assert result.transformed.num_nodes == 40
