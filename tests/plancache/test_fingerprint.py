"""Content fingerprints: stability, sensitivity, and the code salt."""

import numpy as np
import pytest

from repro.kernels.specs import kernel_by_name
from repro.plancache import fingerprint as fp
from repro.runtime import (
    CompositionPlan,
    CPackStep,
    FullSparseTilingStep,
    GPartStep,
    LexGroupStep,
)

from tests.plancache.conftest import tiny_data

pytestmark = pytest.mark.plancache


class TestDatasetFingerprint:
    def test_identical_content_identical_digest(self):
        a = tiny_data(seed=3)
        b = tiny_data(seed=3)
        assert a is not b
        assert fp.dataset_fingerprint(a) == fp.dataset_fingerprint(b)

    def test_mutated_index_array_changes_digest(self):
        a = tiny_data(seed=3)
        b = tiny_data(seed=3)
        b.left[0] = (b.left[0] + 1) % b.num_nodes
        assert fp.dataset_fingerprint(a) != fp.dataset_fingerprint(b)

    def test_dtype_matters(self):
        a = tiny_data(seed=3)
        b = tiny_data(seed=3)
        b.left = b.left.astype(np.int32)
        assert fp.dataset_fingerprint(a) != fp.dataset_fingerprint(b)

    def test_payload_values_excluded_by_default(self):
        a = tiny_data(seed=3)
        b = tiny_data(seed=3)
        next(iter(b.arrays.values()))[0] += 1.0
        assert fp.dataset_fingerprint(a) == fp.dataset_fingerprint(b)
        assert fp.dataset_fingerprint(
            a, include_payload=True
        ) != fp.dataset_fingerprint(b, include_payload=True)

    def test_kernel_name_matters(self):
        a = tiny_data("nbf", seed=3)
        b = tiny_data("irreg", seed=3)
        assert fp.dataset_fingerprint(a) != fp.dataset_fingerprint(b)


class TestStepAndPlanFingerprint:
    def test_step_parameters_matter(self):
        assert fp.step_fingerprint(GPartStep(128)) == fp.step_fingerprint(
            GPartStep(128)
        )
        assert fp.step_fingerprint(GPartStep(128)) != fp.step_fingerprint(
            GPartStep(64)
        )

    def test_step_class_matters(self):
        assert fp.step_fingerprint(CPackStep()) != fp.step_fingerprint(
            LexGroupStep()
        )

    def test_policies_matter(self):
        steps = [CPackStep(), LexGroupStep()]
        base = fp.inspector_fingerprint(steps, "once", "raise")
        assert base == fp.inspector_fingerprint(steps, "once", "raise")
        assert base != fp.inspector_fingerprint(steps, "each", "raise")
        assert base != fp.inspector_fingerprint(steps, "once", "skip")

    def test_plan_fingerprint_covers_kernel(self):
        steps = [CPackStep(), LexGroupStep(), FullSparseTilingStep(8)]
        a = CompositionPlan(kernel_by_name("moldyn"), steps)
        b = CompositionPlan(kernel_by_name("irreg"), steps)
        assert fp.plan_fingerprint(a) != fp.plan_fingerprint(b)

    def test_bind_fingerprint_combines(self):
        plan = CompositionPlan(kernel_by_name("moldyn"), [CPackStep()])
        data = tiny_data(seed=5)
        key = fp.bind_fingerprint(plan, data)
        assert key == fp.bind_fingerprint(plan, data)
        other = tiny_data(seed=6)
        assert key != fp.bind_fingerprint(plan, other)


class TestCodeSalt:
    def test_salt_is_stable_within_process(self):
        assert fp.code_version_salt() == fp.code_version_salt()

    def test_salt_extra_bumps_every_key(self, monkeypatch):
        steps = [CPackStep()]
        before = fp.inspector_fingerprint(steps, "once", "raise")
        monkeypatch.setattr(fp, "SALT_EXTRA", "simulated-code-change")
        after = fp.inspector_fingerprint(steps, "once", "raise")
        assert before != after

    def test_combine_is_order_sensitive(self):
        assert fp.combine("a", "b") != fp.combine("b", "a")
