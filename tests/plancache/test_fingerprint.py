"""Content fingerprints: stability, sensitivity, and the code salt."""

import numpy as np
import pytest

from repro.kernels.specs import kernel_by_name
from repro.plancache import fingerprint as fp
from repro.runtime import (
    CompositionPlan,
    CPackStep,
    FullSparseTilingStep,
    GPartStep,
    LexGroupStep,
)

from tests.plancache.conftest import tiny_data

pytestmark = pytest.mark.plancache


class TestDatasetFingerprint:
    def test_identical_content_identical_digest(self):
        a = tiny_data(seed=3)
        b = tiny_data(seed=3)
        assert a is not b
        assert fp.dataset_fingerprint(a) == fp.dataset_fingerprint(b)

    def test_mutated_index_array_changes_digest(self):
        a = tiny_data(seed=3)
        b = tiny_data(seed=3)
        b.left[0] = (b.left[0] + 1) % b.num_nodes
        assert fp.dataset_fingerprint(a) != fp.dataset_fingerprint(b)

    def test_dtype_matters(self):
        a = tiny_data(seed=3)
        b = tiny_data(seed=3)
        b.left = b.left.astype(np.int32)
        assert fp.dataset_fingerprint(a) != fp.dataset_fingerprint(b)

    def test_payload_values_excluded_by_default(self):
        a = tiny_data(seed=3)
        b = tiny_data(seed=3)
        next(iter(b.arrays.values()))[0] += 1.0
        assert fp.dataset_fingerprint(a) == fp.dataset_fingerprint(b)
        assert fp.dataset_fingerprint(
            a, include_payload=True
        ) != fp.dataset_fingerprint(b, include_payload=True)

    def test_kernel_name_matters(self):
        a = tiny_data("nbf", seed=3)
        b = tiny_data("irreg", seed=3)
        assert fp.dataset_fingerprint(a) != fp.dataset_fingerprint(b)


class TestStepAndPlanFingerprint:
    def test_step_parameters_matter(self):
        assert fp.step_fingerprint(GPartStep(128)) == fp.step_fingerprint(
            GPartStep(128)
        )
        assert fp.step_fingerprint(GPartStep(128)) != fp.step_fingerprint(
            GPartStep(64)
        )

    def test_step_class_matters(self):
        assert fp.step_fingerprint(CPackStep()) != fp.step_fingerprint(
            LexGroupStep()
        )

    def test_policies_matter(self):
        steps = [CPackStep(), LexGroupStep()]
        base = fp.inspector_fingerprint(steps, "once", "raise")
        assert base == fp.inspector_fingerprint(steps, "once", "raise")
        assert base != fp.inspector_fingerprint(steps, "each", "raise")
        assert base != fp.inspector_fingerprint(steps, "once", "skip")

    def test_plan_fingerprint_covers_kernel(self):
        steps = [CPackStep(), LexGroupStep(), FullSparseTilingStep(8)]
        a = CompositionPlan(kernel_by_name("moldyn"), steps)
        b = CompositionPlan(kernel_by_name("irreg"), steps)
        assert fp.plan_fingerprint(a) != fp.plan_fingerprint(b)

    def test_bind_fingerprint_combines(self):
        plan = CompositionPlan(kernel_by_name("moldyn"), [CPackStep()])
        data = tiny_data(seed=5)
        key = fp.bind_fingerprint(plan, data)
        assert key == fp.bind_fingerprint(plan, data)
        other = tiny_data(seed=6)
        assert key != fp.bind_fingerprint(plan, other)


class TestCodeSalt:
    def test_salt_is_stable_within_process(self):
        assert fp.code_version_salt() == fp.code_version_salt()

    def test_salt_extra_bumps_every_key(self, monkeypatch):
        steps = [CPackStep()]
        before = fp.inspector_fingerprint(steps, "once", "raise")
        monkeypatch.setattr(fp, "SALT_EXTRA", "simulated-code-change")
        after = fp.inspector_fingerprint(steps, "once", "raise")
        assert before != after

    def test_combine_is_order_sensitive(self):
        assert fp.combine("a", "b") != fp.combine("b", "a")


class TestExecutorBackendSalt:
    """A cached plan produced under one executor backend must never
    rehydrate into a bind running a different backend."""

    def test_salt_tracks_the_active_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
        library = fp.code_version_salt()
        monkeypatch.setenv("REPRO_EXECUTOR_BACKEND", "numpy")
        numpy_salt = fp.code_version_salt()
        monkeypatch.setenv("REPRO_EXECUTOR_BACKEND", "c")
        c_salt = fp.code_version_salt()
        assert len({library, numpy_salt, c_salt}) == 3
        monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
        assert fp.code_version_salt() == library

    def test_c_salt_includes_the_toolchain_fingerprint(self, monkeypatch):
        from repro.lowering import toolchain

        monkeypatch.setenv("REPRO_EXECUTOR_BACKEND", "c")
        with_cc = fp.code_version_salt()
        monkeypatch.setattr(
            toolchain, "toolchain_fingerprint", lambda: "other-compiler"
        )
        assert fp.code_version_salt() != with_cc

    def test_cross_backend_bind_is_a_miss_not_a_hit(
        self, monkeypatch, tmp_path, moldyn_data
    ):
        """Regression: flipping REPRO_EXECUTOR_BACKEND between binds must
        cold-miss (different key), never rehydrate the other backend's
        cached plan."""
        from repro.backends import BackendFallbackWarning
        import warnings

        from repro.plancache import PlanCache

        cache = PlanCache(directory=tmp_path / "cache")
        plan = CompositionPlan(kernel_by_name("moldyn"), [CPackStep()])
        monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
        cold = plan.bind(moldyn_data, cache=cache)
        assert cold.report.cache == "stored"
        monkeypatch.setenv("REPRO_EXECUTOR_BACKEND", "numpy")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", BackendFallbackWarning)
            other = plan.bind(moldyn_data, cache=cache)
        assert other.report.cache == "stored"  # a fresh key, not a hit
        monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
        warm = plan.bind(moldyn_data, cache=cache)
        assert warm.report.cache == "hit"


class TestSchedulerSalt:
    """The tile scheduler joins the executor-backend salt: a wave bind
    and a dynamic bind carry different artifact suffixes and run-time
    provenance, so flipping ``REPRO_EXECUTOR_SCHEDULER`` must miss."""

    def test_salt_tracks_the_active_scheduler(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR_SCHEDULER", raising=False)
        wave = fp.code_version_salt()
        monkeypatch.setenv("REPRO_EXECUTOR_SCHEDULER", "dynamic")
        dynamic = fp.code_version_salt()
        assert wave != dynamic
        monkeypatch.delenv("REPRO_EXECUTOR_SCHEDULER", raising=False)
        assert fp.code_version_salt() == wave

    def test_scheduler_and_backend_salts_compose(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR_SCHEDULER", raising=False)
        salts = set()
        for backend in ("numpy", "c"):
            monkeypatch.setenv("REPRO_EXECUTOR_BACKEND", backend)
            for scheduler in ("wave", "dynamic"):
                monkeypatch.setenv("REPRO_EXECUTOR_SCHEDULER", scheduler)
                salts.add(fp.code_version_salt())
        assert len(salts) == 4

    def test_cross_scheduler_bind_is_a_miss_not_a_hit(
        self, monkeypatch, tmp_path, moldyn_data
    ):
        """Regression: flipping REPRO_EXECUTOR_SCHEDULER between binds
        must cold-miss (different key), never rehydrate the other
        scheduler's cached plan."""
        from repro.plancache import PlanCache

        cache = PlanCache(directory=tmp_path / "cache")
        plan = CompositionPlan(kernel_by_name("moldyn"), [CPackStep()])
        monkeypatch.delenv("REPRO_EXECUTOR_SCHEDULER", raising=False)
        cold = plan.bind(moldyn_data, cache=cache)
        assert cold.report.cache == "stored"
        monkeypatch.setenv("REPRO_EXECUTOR_SCHEDULER", "dynamic")
        other = plan.bind(moldyn_data, cache=cache)
        assert other.report.cache == "stored"  # a fresh key, not a hit
        monkeypatch.delenv("REPRO_EXECUTOR_SCHEDULER", raising=False)
        warm = plan.bind(moldyn_data, cache=cache)
        assert warm.report.cache == "hit"
