"""Verification memo: repeated binds pay the two executor passes once."""

import pytest

from repro.kernels.specs import kernel_by_name
from repro.runtime import (
    CompositionPlan,
    CPackStep,
    TilePackStep,
    clear_verification_memo,
)
from repro.runtime import verify as verify_mod

from tests.plancache.conftest import tiny_data

pytestmark = [
    pytest.mark.plancache,
    # Every test here binds a deliberately degraded plan.
    pytest.mark.filterwarnings("ignore::repro.errors.DegradedPlanWarning"),
]


def degraded_plan():
    """TilePack without a tiling degrades under 'skip' — which makes
    every bind run the numeric verifier."""
    return CompositionPlan(
        kernel_by_name("moldyn"),
        [CPackStep(), TilePackStep()],
        on_stage_failure="skip",
    )


@pytest.fixture
def counted_verifier(monkeypatch):
    calls = []
    real = verify_mod.verify_numeric_equivalence

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(verify_mod, "verify_numeric_equivalence", counting)
    return calls


def test_memoized_even_without_a_plan_cache(counted_verifier):
    data = tiny_data("moldyn")
    plan = degraded_plan()
    for _ in range(3):
        result = plan.bind(data)
        assert result.report.verified
    assert len(counted_verifier) == 1


def test_distinct_payloads_are_not_conflated(counted_verifier):
    """The memo key includes payload values — same index arrays with a
    different payload must re-verify."""
    data = tiny_data("moldyn")
    plan = degraded_plan()
    plan.bind(data)
    other = data.copy()
    next(iter(other.arrays.values()))[0] += 1.0
    plan.bind(other)
    assert len(counted_verifier) == 2


def test_distinct_num_steps_are_not_conflated(counted_verifier):
    data = tiny_data("moldyn")
    plan = degraded_plan()
    plan.bind(data, num_steps=1)
    plan.bind(data, num_steps=2)
    plan.bind(data, num_steps=2)
    assert len(counted_verifier) == 2


def test_clear_resets_the_memo(counted_verifier):
    data = tiny_data("moldyn")
    plan = degraded_plan()
    plan.bind(data)
    assert clear_verification_memo() == 1
    plan.bind(data)
    assert len(counted_verifier) == 2


def test_memo_bypassed_without_key(counted_verifier):
    data = tiny_data("moldyn")
    plan = degraded_plan()
    result = plan.bind(data)
    verify_mod.verify_numeric_equivalence_memoized(data, result, memo_key=None)
    verify_mod.verify_numeric_equivalence_memoized(data, result, memo_key=None)
    assert len(counted_verifier) == 3
