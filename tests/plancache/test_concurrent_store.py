"""Concurrency contract of the shared cache directory.

Thread-level stress drives one :class:`PlanCache` facade from many
threads (the bind-service shape); process-level stress runs real child
processes against one directory with no coordination (the parallel-grid
shape).  Both must finish with zero corrupt-entry counts, a healthy
directory, and every surviving artifact readable and self-consistent.
"""

import multiprocessing
import threading

import numpy as np
import pytest

from repro.plancache import CacheEntry, DiskStore, PlanCache

pytestmark = pytest.mark.plancache


def entry_for(key, nbytes=256):
    payload = np.full(max(1, nbytes // 8), abs(hash(key)) % 997, dtype=np.int64)
    return CacheEntry(meta={"tag": key}, arrays={"a": payload})


KEYS = [f"{i:02d}deadbeef{i:04d}" for i in range(8)]


def _process_worker(directory, worker_index, rounds, max_bytes, queue):
    """One unsynchronized writer/reader/evictor; reports its observations."""
    try:
        store = DiskStore(directory, max_bytes=max_bytes)
        mismatches = 0
        for round_index in range(rounds):
            key = KEYS[(worker_index + round_index) % len(KEYS)]
            store.put(key, entry_for(key))
            got = store.get(key)
            # A racing clear/eviction makes None legitimate; a *wrong*
            # entry never is.
            if got is not None and got.meta["tag"] != key:
                mismatches += 1
            if round_index % 5 == worker_index % 5:
                store.clear()
        queue.put(("ok", mismatches, store.stats.corrupt))
    except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
        queue.put(("error", repr(exc), 0))


class TestThreadStress:
    def test_shared_facade_many_threads(self, tmp_path):
        cache = PlanCache(directory=tmp_path / "cache")
        errors = []

        def worker(index):
            try:
                for round_index in range(30):
                    key = KEYS[(index + round_index) % len(KEYS)]
                    cache.put(key, entry_for(key))
                    got = cache.get(key)
                    if got is not None and got.meta["tag"] != key:
                        errors.append(f"wrong entry for {key}")
            except BaseException as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        assert cache.stats.corrupt == 0
        health = cache.disk.health()
        assert health["unreadable"] == 0
        # Every surviving artifact is complete and self-consistent.
        for key in cache.disk.keys():
            got = cache.disk.get(key)
            assert got is None or got.meta["key"] == key

    def test_get_races_clear_is_a_plain_miss(self, tmp_path):
        cache = PlanCache(directory=tmp_path / "cache")
        for key in KEYS:
            cache.put(key, entry_for(key))
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                for key in KEYS:
                    try:
                        cache.get(key)
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(repr(exc))
                        return

        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(20):
            cache.clear()
            for key in KEYS:
                cache.put(key, entry_for(key))
        stop.set()
        thread.join()
        assert errors == []
        assert cache.stats.corrupt == 0


class TestProcessStress:
    @pytest.mark.parametrize("max_bytes", [None, 2048])
    def test_uncoordinated_processes_share_one_directory(
        self, tmp_path, max_bytes
    ):
        directory = tmp_path / "cache"
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        workers = [
            ctx.Process(
                target=_process_worker,
                args=(str(directory), index, 20, max_bytes, queue),
            )
            for index in range(4)
        ]
        for p in workers:
            p.start()
        outcomes = [queue.get(timeout=120) for _ in workers]
        for p in workers:
            p.join(timeout=120)

        failures = [o for o in outcomes if o[0] != "ok"]
        assert failures == [], failures
        # No worker ever read a wrong entry, and nothing it loaded was
        # flagged corrupt: concurrent writes stayed atomic.
        assert all(mismatches == 0 for _, mismatches, _ in outcomes)
        assert all(corrupt == 0 for _, _, corrupt in outcomes)

        survivors = DiskStore(directory)
        health = survivors.health()
        assert health["unreadable"] == 0
        for key in survivors.keys():
            got = survivors.get(key)
            assert got is None or got.meta["key"] == key

    def test_budget_eviction_under_concurrent_writers(self, tmp_path):
        directory = tmp_path / "cache"
        max_bytes = 4096
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        workers = [
            ctx.Process(
                target=_process_worker,
                args=(str(directory), index, 15, max_bytes, queue),
            )
            for index in range(3)
        ]
        for p in workers:
            p.start()
        outcomes = [queue.get(timeout=120) for _ in workers]
        for p in workers:
            p.join(timeout=120)
        assert [o[0] for o in outcomes] == ["ok"] * 3

        # Stragglers may each have protected their own just-written
        # artifact (``keep=``), so allow one entry of slack per writer.
        store = DiskStore(directory, max_bytes=max_bytes)
        entry_bytes = max(
            (entry_for(k).nbytes for k in KEYS), default=0
        )
        assert store.total_bytes() <= max_bytes + 3 * (entry_bytes + 1024)
        # A final single-writer put must restore the budget exactly.
        store.put(KEYS[0], entry_for(KEYS[0]))
        assert store.total_bytes() <= max_bytes
