"""Fixtures for the plan-cache suite: tiny instances + scratch caches."""

import numpy as np
import pytest

from repro.kernels.data import make_kernel_data
from repro.kernels.datasets import Dataset
from repro.plancache import PlanCache
from repro.runtime.verify import clear_verification_memo


def tiny_dataset(num_nodes=30, num_inter=80, seed=0, name="tiny"):
    """A tiny instance that passes strict validation: interactions are
    sampled without replacement from the unordered off-diagonal pairs
    (then randomly oriented), so there are no duplicate edges — the
    validator dedups unordered — and no self-loops."""
    rng = np.random.default_rng(seed)
    iu, ju = np.triu_indices(num_nodes, k=1)
    pick = rng.choice(len(iu), size=num_inter, replace=False)
    left = iu[pick].astype(np.int64)
    right = ju[pick].astype(np.int64)
    flip = rng.random(num_inter) < 0.5
    left[flip], right[flip] = right[flip], left[flip]
    return Dataset(name, num_nodes, left, right)


def tiny_data(kernel="moldyn", seed=0, **kwargs):
    return make_kernel_data(kernel, tiny_dataset(seed=seed, **kwargs))


@pytest.fixture
def moldyn_data():
    return tiny_data("moldyn")


@pytest.fixture
def disk_cache(tmp_path):
    return PlanCache(directory=tmp_path / "plancache")


@pytest.fixture
def memory_cache():
    return PlanCache(use_disk=False)


@pytest.fixture(autouse=True)
def _fresh_verification_memo():
    """The verification memo is process-global: isolate every test."""
    clear_verification_memo()
    yield
    clear_verification_memo()
