"""The shared backend-resolution helper: one policy for every switch."""

import warnings

import pytest

from repro import backends
from repro.backends import BackendFallbackWarning, resolve


@pytest.fixture(autouse=True)
def _fresh_announcements():
    backends.reset_fallback_announcements()
    yield
    backends.reset_fallback_announcements()


def _resolve(requested=None, env=None, monkeypatch=None, **kw):
    kw.setdefault("subsystem", "demo")
    kw.setdefault("choices", ("auto", "fast", "slow"))
    kw.setdefault("env_var", "REPRO_DEMO_BACKEND")
    kw.setdefault("default", "slow")
    kw.setdefault("ladder", ("fast", "slow"))
    if monkeypatch is not None:
        if env is None:
            monkeypatch.delenv("REPRO_DEMO_BACKEND", raising=False)
        else:
            monkeypatch.setenv("REPRO_DEMO_BACKEND", env)
    return resolve(requested, **kw)


class TestPrecedence:
    def test_argument_beats_env(self, monkeypatch):
        res = _resolve("fast", env="slow", monkeypatch=monkeypatch)
        assert res.backend == "fast" and res.source == "argument"

    def test_env_beats_default(self, monkeypatch):
        res = _resolve(None, env="fast", monkeypatch=monkeypatch)
        assert res.backend == "fast" and res.source == "env"

    def test_default_when_nothing_set(self, monkeypatch):
        res = _resolve(None, monkeypatch=monkeypatch)
        assert res.backend == "slow" and res.source == "default"

    def test_explicit_auto_defers_to_env(self, monkeypatch):
        res = _resolve("auto", env="slow", monkeypatch=monkeypatch)
        assert res.backend == "slow" and res.source == "env"

    def test_auto_resolves_to_best_available(self, monkeypatch):
        res = _resolve("auto", monkeypatch=monkeypatch, default="auto")
        assert res.backend == "fast"

    def test_unknown_name_raises(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown demo backend"):
            _resolve("warp", monkeypatch=monkeypatch)

    def test_unknown_env_value_raises(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown demo backend"):
            _resolve(None, env="warp", monkeypatch=monkeypatch)


class TestFallback:
    def _probe_down(self):
        return {"fast": lambda: (False, "no turbo fan")}

    def test_unavailable_backend_walks_the_ladder(self, monkeypatch):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = _resolve(
                "fast", monkeypatch=monkeypatch, available=self._probe_down()
            )
        assert res.backend == "slow"
        assert res.degraded
        assert res.fallbacks == (("fast", "slow", "no turbo fan"),)
        assert [w.category for w in caught] == [BackendFallbackWarning]
        assert "no turbo fan" in str(caught[0].message)

    def test_fallback_warns_exactly_once_per_process(self, monkeypatch):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                _resolve(
                    "fast",
                    monkeypatch=monkeypatch,
                    available=self._probe_down(),
                )
        assert len(caught) == 1

    def test_auto_skips_unavailable_rungs_silently(self, monkeypatch):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = _resolve(
                "auto",
                monkeypatch=monkeypatch,
                default="auto",
                available=self._probe_down(),
            )
        assert res.backend == "slow"
        assert not res.degraded and not caught

    def test_warn_false_suppresses_the_warning(self, monkeypatch):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = _resolve(
                "fast",
                monkeypatch=monkeypatch,
                available=self._probe_down(),
                warn=False,
            )
        assert res.backend == "slow" and not caught


class TestCachesimDelegation:
    def test_cachesim_resolution_still_matches_old_semantics(self, monkeypatch):
        from repro.cachesim.hierarchy import resolve_backend

        monkeypatch.delenv("REPRO_CACHESIM_BACKEND", raising=False)
        assert resolve_backend(None) == "vectorized"
        assert resolve_backend("reference") == "reference"
        monkeypatch.setenv("REPRO_CACHESIM_BACKEND", "reference")
        assert resolve_backend("auto") == "reference"
        assert resolve_backend("vectorized") == "vectorized"
        with pytest.raises(ValueError, match="unknown cachesim backend"):
            resolve_backend("gpu")
