"""The structured exception taxonomy (repro.errors)."""

import pytest

from repro.errors import (
    BindError,
    DegradedPlanWarning,
    ExecutorFault,
    InspectorFault,
    LegalityError,
    ReproError,
    ValidationError,
)


class TestTaxonomy:
    def test_every_type_is_a_repro_error(self):
        for cls in (
            ValidationError,
            BindError,
            LegalityError,
            InspectorFault,
            ExecutorFault,
            DegradedPlanWarning,
        ):
            assert issubclass(cls, ReproError)

    def test_backwards_compatible_builtin_bases(self):
        # Pre-taxonomy call sites catch these builtins; they must keep working.
        assert issubclass(ValidationError, ValueError)
        assert issubclass(BindError, KeyError)
        assert issubclass(BindError, ValueError)
        assert issubclass(InspectorFault, RuntimeError)
        assert issubclass(ExecutorFault, AssertionError)
        assert issubclass(DegradedPlanWarning, UserWarning)

    def test_legality_error_alias_from_uniform(self):
        from repro.uniform.legality import LegalityError as Alias

        assert Alias is LegalityError

    def test_top_level_reexports(self):
        import repro

        assert repro.ReproError is ReproError
        assert repro.ValidationError is ValidationError


class TestMessageFormat:
    def test_stage_and_hint_in_message(self):
        err = ValidationError("bad array", stage="2:fst", hint="fix it")
        text = str(err)
        assert "[stage 2:fst]" in text
        assert "bad array" in text
        assert "(hint: fix it)" in text

    def test_indices_capped_at_five(self):
        err = InspectorFault("oops", indices=list(range(12)))
        text = str(err)
        assert "[0, 1, 2, 3, 4, ... (+7 more)]" in text
        assert err.indices == list(range(12))

    def test_bind_error_str_is_not_reprd(self):
        # KeyError.__str__ would render repr(args[0]); BindError overrides it.
        err = BindError("unknown dataset 'x'")
        assert str(err) == "unknown dataset 'x'"

    def test_structured_context_attributes(self):
        err = ReproError("m", stage="s", indices=[3, 1], hint="h")
        assert err.stage == "s"
        assert err.indices == [3, 1]
        assert err.hint == "h"
