"""Tests for write-back modeling (dirty lines, write-back traffic)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cachesim.cache import CacheConfig, SetAssociativeCache
from repro.cachesim.hierarchy import MemoryHierarchy
from repro.cachesim.machines import PENTIUM4
from repro.cachesim.model import simulate_cost
from repro.cachesim.trace import TraceBuilder
from repro.kernels import generate_dataset, make_kernel_data
from repro.runtime.executor import emit_trace


def cache(size=128, line=64, ways=1):
    return SetAssociativeCache(CacheConfig("t", size, line, ways))


class TestDirtyTracking:
    def test_clean_eviction_no_writeback(self):
        c = cache()  # 2 sets x 1 way; lines 0 and 2 conflict
        result = c.access_lines([0, 2], [False, False])
        assert result.stats.writebacks == 0

    def test_dirty_eviction_counts(self):
        c = cache()
        result = c.access_lines([0, 2], [True, False])
        assert result.stats.writebacks == 1
        assert list(result.writeback_lines) == [0]

    def test_write_hit_marks_dirty(self):
        c = cache()
        result = c.access_lines([0, 0, 2], [False, True, False])
        assert result.stats.writebacks == 1

    def test_rewritten_line_writes_back_once(self):
        c = cache()
        result = c.access_lines([0, 0, 0, 2], [True, True, True, False])
        assert result.stats.writebacks == 1

    def test_flush_dirty(self):
        c = cache(size=256, line=64, ways=2)
        c.access_lines([0, 1], [True, True])
        assert set(c.flush_dirty()) == {0, 1}
        assert len(c.flush_dirty()) == 0

    def test_no_writes_arg_means_no_tracking(self):
        c = cache()
        result = c.access_lines([0, 2, 0])
        assert result.stats.writebacks == 0
        assert len(result.writeback_lines) == 0


class TestHierarchyWriteback:
    def test_l2_absorbs_l1_writebacks(self):
        h = MemoryHierarchy(
            [
                CacheConfig("L1", 128, 64, 1),
                CacheConfig("L2", 4096, 64, 4),
            ]
        )
        lines = np.array([0, 2, 0, 2])
        writes = np.array([True, True, True, True])
        result = h.simulate_lines(lines, writes)
        # L1 thrashes; its dirty evictions reach L2 as writes, and L2 is
        # big enough to keep everything: no memory writebacks.
        assert result.level_stats[0].writebacks >= 2
        assert result.memory_writebacks == 0

    def test_memory_writebacks_from_last_level(self):
        h = MemoryHierarchy([CacheConfig("L1", 128, 64, 1)])
        result = h.simulate_lines(
            np.array([0, 2, 0, 2]), np.array([True, True, True, True])
        )
        assert result.memory_writebacks >= 2

    def test_default_read_only_unchanged(self):
        h = MemoryHierarchy([CacheConfig("L1", 128, 64, 1)])
        a = h.simulate_lines(np.array([0, 1, 2, 3]))
        assert a.memory_writebacks == 0


class TestTraceWrites:
    def test_builder_tracks_flags(self):
        b = TraceBuilder()
        b.add_region("a", 8, 8)
        b.touch("a", np.array([0, 1]), write=True)
        b.touch("a", np.array([2]), write=False)
        trace = b.build()
        assert list(trace.writes) == [True, True, False]

    def test_no_flags_means_none(self):
        b = TraceBuilder()
        b.add_region("a", 8, 8)
        b.touch("a", np.array([0]))
        assert b.build().writes is None

    def test_line_expansion_replicates_flags(self):
        b = TraceBuilder()
        b.add_region("wide", 4, 72)  # spans two 64-byte lines
        b.touch("wide", np.array([1]), write=True)
        b.touch("wide", np.array([0]), write=False)
        trace = b.build()
        lines, writes = trace.line_sequence_with_writes(64)
        assert len(lines) == len(writes)
        assert writes[: len(writes) // 2].all()  # first record's lines

    def test_emit_trace_mark_writes(self):
        data = make_kernel_data("moldyn", generate_dataset("mol1", scale=256))
        trace = emit_trace(data, mark_writes=True)
        assert trace.writes is not None
        names = [r.name for r in trace.regions]
        inter_rid = names.index("inters")
        # interaction records are never written
        assert not trace.writes[trace.region_ids == inter_rid].any()
        # node records in this kernel are updated everywhere
        node_rid = names.index("nodes")
        assert trace.writes[trace.region_ids == node_rid].all()


class TestWritebackCostModel:
    def test_writeback_pricing_increases_cost(self):
        # auto at scale 32 overflows the Pentium4's 256 KB L2, so dirty
        # lines actually reach memory (foil at small scales fits L2 and
        # correctly produces zero memory write-backs).
        data = make_kernel_data("irreg", generate_dataset("auto", scale=32))
        trace = emit_trace(data, mark_writes=True)
        priced = replace(PENTIUM4, writeback_memory_cycles=60)
        base = simulate_cost(trace, PENTIUM4)
        with_wb = simulate_cost(trace, priced)
        assert with_wb.result.memory_writebacks > 0
        assert with_wb.cycles > base.cycles

    def test_conclusions_robust_under_writeback_pricing(self):
        """gpart still beats cpack when stores are priced."""
        from repro.eval.compositions import composition_steps
        from repro.runtime.inspector import ComposedInspector

        data = make_kernel_data("irreg", generate_dataset("foil", scale=64))
        machine = replace(PENTIUM4, writeback_memory_cycles=60)
        costs = {}
        for comp in ("baseline", "cpack", "gpart"):
            steps = composition_steps(comp, data, machine)
            if steps:
                result = ComposedInspector(steps).run(data)
                trace = emit_trace(result.transformed, result.plan, mark_writes=True)
            else:
                trace = emit_trace(data, mark_writes=True)
            costs[comp] = simulate_cost(trace, machine).cycles
        assert costs["gpart"] < costs["cpack"] < costs["baseline"]
