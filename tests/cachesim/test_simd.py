"""Bit-identity property suite: the vectorized engine vs the oracle.

The vectorized simulator (:mod:`repro.cachesim.simd`) must agree with
the per-access reference simulator *exactly* — same hits, same misses,
same miss-line streams, same write-backs — on every input.  These tests
drive both engines over Hypothesis-generated traces spanning the whole
geometry space (direct-mapped through 8-way, 1..8 sets, tiny stress
windows that force every cascade tier) and over two-level hierarchies
with and without write flags.
"""

import os
from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.cache import CacheConfig, SetAssociativeCache
from repro.cachesim.hierarchy import MemoryHierarchy, resolve_backend
from repro.cachesim.simd import classify_hits, simulate_level

pytestmark = pytest.mark.simd


def _config(num_sets: int, assoc: int, line_bytes: int = 64) -> CacheConfig:
    return CacheConfig(
        "L",
        size_bytes=num_sets * assoc * line_bytes,
        line_bytes=line_bytes,
        associativity=assoc,
    )


def _ref_hits(lines, num_sets, assoc) -> np.ndarray:
    """Straight-line LRU oracle: per-access hit mask."""
    sets = [OrderedDict() for _ in range(num_sets)]
    out = np.zeros(len(lines), dtype=bool)
    for i, ln in enumerate(lines):
        ln = int(ln)
        s = sets[ln % num_sets]
        if ln in s:
            s.move_to_end(ln)
            out[i] = True
        else:
            s[ln] = True
            if len(s) > assoc:
                s.popitem(last=False)
    return out


geometries = st.tuples(
    st.sampled_from([1, 2, 4, 8]),  # num_sets
    st.sampled_from([1, 2, 3, 4, 8]),  # associativity
)

traces = st.lists(st.integers(min_value=0, max_value=40), max_size=300).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


@settings(max_examples=80, deadline=None)
@given(lines=traces, geom=geometries, stress=st.sampled_from([0, 1, 2, 3]))
def test_classify_hits_matches_lru_oracle(lines, geom, stress):
    """Exact per-access agreement, including tiny windows that push
    accesses through the medium/stabbing/probe tiers."""
    num_sets, assoc = geom
    window = None if stress == 0 else assoc * stress + 1
    got = classify_hits(lines, num_sets, assoc, window=window)
    want = _ref_hits(lines, num_sets, assoc)
    assert np.array_equal(got, want)


@settings(max_examples=60, deadline=None)
@given(lines=traces, geom=geometries)
def test_simulate_level_matches_reference_cache(lines, geom):
    num_sets, assoc = geom
    config = _config(num_sets, assoc)
    ref = SetAssociativeCache(config).access_lines(lines)
    vec = simulate_level(config, lines)
    assert vec.stats.accesses == ref.stats.accesses
    assert vec.stats.misses == ref.stats.misses
    assert np.array_equal(vec.miss_lines, ref.miss_lines)


@settings(max_examples=60, deadline=None)
@given(
    lines=st.lists(
        st.integers(min_value=0, max_value=30), min_size=1, max_size=200
    ),
    writes_seed=st.integers(min_value=0, max_value=2**31 - 1),
    geom=geometries,
)
def test_writes_and_writebacks_bit_identical(lines, writes_seed, geom):
    """Dirty bits, write-backs, and the downstream (fills + evicted
    write-backs) stream all agree with the reference."""
    num_sets, assoc = geom
    lines = np.array(lines, dtype=np.int64)
    writes = np.random.default_rng(writes_seed).random(len(lines)) < 0.4
    config = _config(num_sets, assoc)
    ref = SetAssociativeCache(config).access_lines(lines, writes)
    vec = simulate_level(config, lines, writes)
    assert vec.stats.misses == ref.stats.misses
    assert vec.stats.writebacks == ref.stats.writebacks
    assert np.array_equal(vec.miss_lines, ref.miss_lines)
    assert np.array_equal(vec.writeback_lines, ref.writeback_lines)
    assert np.array_equal(vec.downstream_lines, ref.downstream_lines)
    assert np.array_equal(vec.downstream_writes, ref.downstream_writes)


TWO_LEVEL = (
    CacheConfig("L1", size_bytes=2048, line_bytes=64, associativity=2),
    CacheConfig("L2", size_bytes=16384, line_bytes=128, associativity=4),
)


@settings(max_examples=40, deadline=None)
@given(
    lines=st.lists(
        st.integers(min_value=0, max_value=600), min_size=1, max_size=400
    ),
    with_writes=st.booleans(),
)
def test_two_level_hierarchy_backends_identical(lines, with_writes):
    """The full hierarchy — L1 misses chained into a wider-lined L2 —
    is bit-identical across backends, with and without write flags."""
    lines = np.array(lines, dtype=np.int64)
    writes = None
    if with_writes:
        writes = np.random.default_rng(len(lines)).random(len(lines)) < 0.3
    ref = MemoryHierarchy(TWO_LEVEL, backend="reference").simulate_lines(
        lines, writes
    )
    vec = MemoryHierarchy(TWO_LEVEL, backend="vectorized").simulate_lines(
        lines, writes
    )
    for level_ref, level_vec in zip(ref.level_stats, vec.level_stats):
        assert level_ref.accesses == level_vec.accesses
        assert level_ref.misses == level_vec.misses
        assert level_ref.writebacks == level_vec.writebacks
    assert ref.memory_accesses == vec.memory_accesses
    assert ref.memory_writebacks == vec.memory_writebacks


def test_small_set_fast_path_exercised():
    """Sets holding <= associativity distinct lines take the
    first-occurrence fast path (reversed-scatter): every non-first
    access hits, mixed freely with an overflowing set."""
    # Set 0 holds lines {0, 4} (small, assoc 2); set 1 holds
    # {1, 3, 5, 7} (overflows a 2-way set).
    lines = np.array([0, 4, 0, 4, 1, 3, 5, 7, 1, 0, 4], dtype=np.int64)
    got = classify_hits(lines, 2, 2)
    want = _ref_hits(lines, 2, 2)
    assert np.array_equal(got, want)
    # The two tail accesses of the small set are re-references: hits.
    assert got[-1] and got[-2]


def test_consecutive_duplicates_collapse():
    lines = np.repeat(np.arange(5, dtype=np.int64), 7)
    got = classify_hits(lines, 2, 1)
    want = _ref_hits(lines, 2, 1)
    assert np.array_equal(got, want)
    assert got.sum() == 5 * 6  # every repeat after the first hits


def test_empty_and_singleton_traces():
    for lines in (np.empty(0, dtype=np.int64), np.array([9], dtype=np.int64)):
        got = classify_hits(lines, 4, 2)
        assert np.array_equal(got, _ref_hits(lines, 4, 2))


def test_randomized_sweep_large_windows():
    """A heavier seeded sweep over mixed geometries (beyond Hypothesis's
    size budget) including windows straddling the probe-tier boundary."""
    rng = np.random.default_rng(2024)
    for _ in range(25):
        n = int(rng.integers(1, 4000))
        spread = int(rng.integers(8, 3000))
        lines = rng.integers(0, spread, size=n)
        num_sets = int(2 ** rng.integers(0, 7))
        assoc = int(rng.integers(1, 9))
        window = [None, assoc, 2 * assoc, 4 * assoc + 1][rng.integers(0, 4)]
        got = classify_hits(lines, num_sets, assoc, window=window)
        want = _ref_hits(lines, num_sets, assoc)
        assert np.array_equal(got, want), (n, num_sets, assoc, window)


def test_resolve_backend_env_override(monkeypatch):
    assert resolve_backend(None) == "vectorized"
    assert resolve_backend("reference") == "reference"
    monkeypatch.setenv("REPRO_CACHESIM_BACKEND", "reference")
    assert resolve_backend(None) == "reference"
    assert resolve_backend("auto") == "reference"
    with pytest.raises(ValueError):
        resolve_backend("fancy")


def test_malloc_tune_gate(monkeypatch):
    """The allocator tuning is best-effort and env-gated off."""
    import repro.cachesim.simd as simd

    monkeypatch.setenv("REPRO_CACHESIM_NO_MALLOC_TUNE", "1")
    monkeypatch.setattr(simd, "_MALLOC_TUNED", False)
    simd._tune_allocator()  # gated off: must not raise, decision recorded
    assert simd._MALLOC_TUNED is True
    monkeypatch.setattr(simd, "_MALLOC_TUNED", False)
    monkeypatch.delenv("REPRO_CACHESIM_NO_MALLOC_TUNE")
    simd._tune_allocator()
    assert simd._MALLOC_TUNED is True
