"""Unit tests for traces, machines, and the cost model."""

import numpy as np
import pytest

from repro.cachesim import (
    MACHINES,
    TraceBuilder,
    machine_by_name,
    simulate_cost,
)
from repro.cachesim.trace import AccessTrace


def build_simple_trace():
    b = TraceBuilder()
    b.add_region("nodes", 100, 72)
    b.add_region("inters", 50, 8)
    b.touch("nodes", np.arange(10))
    b.touch_interleaved(
        ["inters", "nodes", "nodes"],
        [np.arange(5), np.arange(5), np.arange(5, 10)],
    )
    return b.build()


class TestTraceBuilder:
    def test_lengths(self):
        trace = build_simple_trace()
        assert len(trace) == 10 + 15

    def test_duplicate_region_rejected(self):
        b = TraceBuilder()
        b.add_region("r", 1, 8)
        with pytest.raises(ValueError):
            b.add_region("r", 1, 8)

    def test_interleaving_layout(self):
        trace = build_simple_trace()
        rids = trace.region_ids[10:]
        assert list(rids[:6]) == [1, 0, 0, 1, 0, 0]

    def test_mismatched_columns(self):
        b = TraceBuilder()
        b.add_region("a", 4, 8)
        with pytest.raises(ValueError):
            b.touch_interleaved(["a", "a"], [np.arange(2), np.arange(3)])

    def test_empty_build(self):
        b = TraceBuilder()
        b.add_region("a", 4, 8)
        trace = b.build()
        assert len(trace) == 0
        assert len(trace.line_sequence(64)) == 0

    def test_total_bytes(self):
        trace = build_simple_trace()
        assert trace.total_bytes() == 100 * 72 + 50 * 8


class TestLineExpansion:
    def test_unaligned_wide_records_span_lines(self):
        b = TraceBuilder()
        b.add_region("nodes", 10, 72)
        b.touch("nodes", np.arange(10))
        trace = b.build()
        lines = trace.line_sequence(64)
        # 72-byte records on 64-byte lines: every access spans 2 lines
        # except those that happen to align... 72 and 64 share gcd 8, so
        # only offset-0 records fit? 72 > 64 means every record spans >= 2.
        assert len(lines) == 20

    def test_narrow_records_one_line(self):
        b = TraceBuilder()
        b.add_region("inters", 16, 8)
        b.touch("inters", np.arange(16))
        trace = b.build()
        assert len(trace.line_sequence(64)) == 16

    def test_regions_do_not_overlap(self):
        trace = build_simple_trace()
        starts, rb = trace.byte_starts()
        node_starts = starts[trace.region_ids == 0]
        inter_starts = starts[trace.region_ids == 1]
        assert node_starts.max() < inter_starts.min()

    def test_consecutive_lines_for_spanning_record(self):
        b = TraceBuilder()
        b.add_region("nodes", 2, 72)
        b.touch("nodes", np.array([1]))
        lines = b.build().line_sequence(64)
        assert list(lines) == [1, 2]  # bytes 72..143 -> lines 1 and 2


class TestMachines:
    def test_registry(self):
        assert set(MACHINES) == {"power3", "pentium4"}
        assert machine_by_name("power3").l1.line_bytes == 128
        assert machine_by_name("pentium4").l1.line_bytes == 64

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            machine_by_name("cray")

    def test_paper_geometries(self):
        p3 = machine_by_name("power3")
        p4 = machine_by_name("pentium4")
        assert p3.l1.size_bytes == 64 * 1024
        assert p4.l1.size_bytes == 8 * 1024

    def test_cost_model_orders_sanely(self):
        """A thrashing trace must cost more than a resident one."""
        p4 = machine_by_name("pentium4")
        b1 = TraceBuilder()
        b1.add_region("a", 10_000, 8)
        b1.touch("a", np.arange(10_000) * 997 % 10_000)  # scattered
        scattered = simulate_cost(b1.build(), p4)

        b2 = TraceBuilder()
        b2.add_region("a", 10_000, 8)
        b2.touch("a", np.tile(np.arange(64), 157))  # resident
        resident = simulate_cost(b2.build(), p4)
        assert scattered.cycles > 3 * resident.cycles

    def test_inspector_cycles_scale_linearly(self):
        p3 = machine_by_name("power3")
        assert p3.inspector_cycles(1000) == 1000 * p3.inspector_touch_cycles

    def test_moldyn_record_penalty_on_p4(self):
        """72-byte records cost proportionally more on 64-byte lines than
        on 128-byte lines — the paper's moldyn-on-Pentium4 observation."""
        b = TraceBuilder()
        b.add_region("nodes", 1000, 72)
        b.touch("nodes", np.arange(1000))
        trace = b.build()
        spans64 = len(trace.line_sequence(64)) / len(trace)
        spans128 = len(trace.line_sequence(128)) / len(trace)
        assert spans64 == 2.0  # every record spans two 64-byte lines
        assert spans128 < 1.6
