"""Unit tests for the set-associative LRU cache and hierarchies."""

import numpy as np
import pytest

from repro.cachesim.cache import CacheConfig, CacheStats, SetAssociativeCache
from repro.cachesim.hierarchy import MemoryHierarchy


def cache(size=1024, line=64, ways=2):
    return SetAssociativeCache(CacheConfig("t", size, line, ways))


class TestCacheConfig:
    def test_geometry(self):
        c = CacheConfig("L1", 8192, 64, 4)
        assert c.num_lines == 128
        assert c.num_sets == 32
        assert c.line_shift == 6

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            CacheConfig("b", 0, 64, 1)
        with pytest.raises(ValueError):
            CacheConfig("b", 1024, 48, 1)  # not power of two
        with pytest.raises(ValueError):
            CacheConfig("b", 100, 64, 1)  # not a multiple


class TestLRUBehavior:
    def test_cold_misses(self):
        result = cache().access_lines([0, 1, 2])
        assert result.stats.misses == 3
        assert result.stats.accesses == 3

    def test_repeat_hits(self):
        result = cache().access_lines([0, 0, 0, 0])
        assert result.stats.misses == 1
        assert result.stats.hits == 3

    def test_capacity_eviction(self):
        # 1 set x 2 ways: third distinct line evicts the LRU.
        c = cache(size=128, line=64, ways=2)
        result = c.access_lines([0, 1, 2, 0])
        # 0,1 cold; 2 evicts 0; 0 misses again.
        assert result.stats.misses == 4

    def test_lru_not_fifo(self):
        c = cache(size=128, line=64, ways=2)
        # access 0,1, touch 0 again (now MRU), insert 2 -> evicts 1.
        result = c.access_lines([0, 1, 0, 2, 0])
        assert result.stats.misses == 3  # 0,1,2 cold; final 0 hits

    def test_set_mapping_no_interference(self):
        # 2 sets x 1 way; lines 0 and 1 map to different sets.
        c = cache(size=128, line=64, ways=1)
        result = c.access_lines([0, 1, 0, 1])
        assert result.stats.misses == 2

    def test_conflict_same_set(self):
        # 2 sets x 1 way: lines 0 and 2 share set 0.
        c = cache(size=128, line=64, ways=1)
        result = c.access_lines([0, 2, 0, 2])
        assert result.stats.misses == 4

    def test_miss_lines_returned_in_order(self):
        result = cache().access_lines([5, 5, 7, 5, 9])
        assert list(result.miss_lines) == [5, 7, 9]

    def test_reset_clears_state(self):
        c = cache()
        c.access_lines([0])
        c.reset()
        assert c.access_lines([0]).stats.misses == 1

    def test_stats_addition(self):
        total = CacheStats(10, 4) + CacheStats(5, 1)
        assert total.accesses == 15 and total.misses == 5
        assert total.miss_rate == pytest.approx(1 / 3)

    def test_working_set_within_capacity_all_hits_after_warmup(self):
        c = cache(size=4096, line=64, ways=4)  # 64 lines
        lines = list(range(32)) * 10
        result = c.access_lines(lines)
        assert result.stats.misses == 32


class TestHierarchy:
    def test_l2_sees_only_l1_misses(self):
        h = MemoryHierarchy(
            [
                CacheConfig("L1", 128, 64, 2),
                CacheConfig("L2", 1024, 64, 2),
            ]
        )
        result = h.simulate_lines(np.array([0, 0, 1, 1, 2, 2]))
        assert result.level_stats[0].accesses == 6
        assert result.level_stats[0].misses == 3
        assert result.level_stats[1].accesses == 3

    def test_memory_accesses_are_last_level_misses(self):
        h = MemoryHierarchy([CacheConfig("L1", 128, 64, 2)])
        result = h.simulate_lines(np.array([0, 1, 2, 3]))
        assert result.memory_accesses == 4

    def test_line_rescaling_between_levels(self):
        h = MemoryHierarchy(
            [
                CacheConfig("L1", 128, 64, 2),
                CacheConfig("L2", 2048, 128, 2),  # double line size
            ]
        )
        # L1 lines 0 and 1 are the same 128-byte L2 line.
        result = h.simulate_lines(np.array([0, 2, 4, 6, 1]))
        # all L1 cold misses; L2 sees lines 0,1,2,3,0 -> 4 misses, 1 hit
        assert result.level_stats[1].accesses == 5
        assert result.level_stats[1].misses == 4

    def test_decreasing_line_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(
                [
                    CacheConfig("L1", 128, 128, 2),
                    CacheConfig("L2", 1024, 64, 2),
                ]
            )

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([])
