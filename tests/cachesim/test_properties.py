"""Property-based tests for the cache simulator's invariants."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.cachesim.cache import CacheConfig, SetAssociativeCache
from repro.cachesim.hierarchy import MemoryHierarchy


@st.composite
def traces(draw, max_lines=64, max_len=300):
    n_lines = draw(st.integers(1, max_lines))
    length = draw(st.integers(0, max_len))
    return draw(
        st.lists(st.integers(0, n_lines - 1), min_size=length, max_size=length)
    )


@st.composite
def geometries(draw):
    line = 64
    ways = draw(st.sampled_from([1, 2, 4]))
    sets = draw(st.sampled_from([1, 2, 4, 8]))
    return CacheConfig("t", sets * ways * line, line, ways)


class TestCacheInvariants:
    @given(traces(), geometries())
    @settings(max_examples=80, deadline=None)
    def test_misses_bounded(self, lines, config):
        result = SetAssociativeCache(config).access_lines(lines)
        assert 0 <= result.stats.misses <= len(lines)
        assert result.stats.accesses == len(lines)
        # cold misses: at least one per distinct line
        assert result.stats.misses >= len(set(lines)) > 0 or not lines

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_bigger_cache_never_misses_more(self, lines):
        """LRU inclusion: doubling the way count cannot increase misses
        (same set count, so each set's LRU stack just deepens)."""
        small = SetAssociativeCache(CacheConfig("s", 4 * 2 * 64, 64, 2))
        large = SetAssociativeCache(CacheConfig("l", 4 * 4 * 64, 64, 4))
        m_small = small.access_lines(lines).stats.misses
        m_large = large.access_lines(lines).stats.misses
        assert m_large <= m_small

    @given(traces(), geometries())
    @settings(max_examples=60, deadline=None)
    def test_miss_lines_match_count(self, lines, config):
        result = SetAssociativeCache(config).access_lines(lines)
        assert len(result.miss_lines) == result.stats.misses

    @given(traces(), geometries())
    @settings(max_examples=60, deadline=None)
    def test_repeating_trace_saturates(self, lines, config):
        """The second identical pass can never miss more than the first."""
        cache = SetAssociativeCache(config)
        first = cache.access_lines(lines).stats.misses
        second = cache.access_lines(lines).stats.misses
        assert second <= first


class TestWritebackInvariants:
    @given(traces(), geometries(), st.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_writebacks_bounded_by_writes(self, lines, config, seed):
        rng = np.random.default_rng(seed)
        writes = rng.random(len(lines)) < 0.5
        cache = SetAssociativeCache(config)
        result = cache.access_lines(lines, writes.tolist())
        # each write-back needs a prior write
        assert result.stats.writebacks <= int(writes.sum())
        # and a prior eviction
        assert result.stats.writebacks <= result.stats.misses
        # downstream stream = fills + writebacks in order
        assert len(result.downstream_lines) == (
            result.stats.misses + result.stats.writebacks
        )
        assert int(result.downstream_writes.sum()) == result.stats.writebacks

    @given(traces(), geometries())
    @settings(max_examples=40, deadline=None)
    def test_write_tracking_does_not_change_miss_behavior(self, lines, config):
        plain = SetAssociativeCache(config).access_lines(lines)
        tracked = SetAssociativeCache(config).access_lines(
            lines, [True] * len(lines)
        )
        assert plain.stats.misses == tracked.stats.misses
        assert np.array_equal(plain.miss_lines, tracked.miss_lines)

    @given(traces())
    @settings(max_examples=40, deadline=None)
    def test_hierarchy_conservation(self, lines):
        """Every level's accesses equal the previous level's misses (+
        write-backs when tracked)."""
        h = MemoryHierarchy(
            [
                CacheConfig("L1", 2 * 64, 64, 1),
                CacheConfig("L2", 8 * 64, 64, 2),
            ]
        )
        arr = np.asarray(lines, dtype=np.int64)
        writes = np.ones(len(arr), dtype=bool)
        result = h.simulate_lines(arr, writes)
        l1 = result.level_stats[0]
        l2 = result.level_stats[1]
        assert l2.accesses == l1.misses + l1.writebacks
        assert result.memory_accesses == l2.misses
        assert result.memory_writebacks == l2.writebacks
