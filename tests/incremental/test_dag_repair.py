"""Incremental TileDAG repair: patched counters must equal a fresh build
bit for bit and must pass the IRV006 scheduler gate before any pool."""

import numpy as np
import pytest

from repro.errors import LegalityError
from repro.incremental import EpochAux, repair_tile_dag
from repro.kernels.specs import kernel_by_name
from repro.lowering.schedule import ensure_runnable
from repro.plancache import PlanCache
from repro.plancache.fingerprint import bind_fingerprint
from repro.runtime import CompositionPlan
from repro.runtime.inspector import (
    CPackStep,
    FullSparseTilingStep,
    LexGroupStep,
)

from tests.incremental.conftest import small_delta, tiny_data

pytestmark = pytest.mark.streaming


def _tiled_plan():
    return CompositionPlan(
        kernel_by_name("moldyn"),
        [CPackStep(), LexGroupStep(), FullSparseTilingStep(8)],
        name="cpack+lg+fst",
    )


def _bound_parent():
    plan = _tiled_plan()
    data = tiny_data()
    cache = PlanCache(use_disk=False)
    parent = plan.bind(data, cache=cache)
    return plan, data, cache, parent


def _assert_same_dag(a, b):
    assert a.num_tiles == b.num_tiles
    assert np.array_equal(a.indegree, b.indegree)
    assert np.array_equal(a.succ_indptr, b.succ_indptr)
    assert np.array_equal(a.succ_indices, b.succ_indices)


def test_fresh_build_matches_canonical_constructor():
    _, _, _, parent = _bound_parent()
    dag = repair_tile_dag(None, parent.tiling, parent.transformed)
    ensure_runnable(dag)
    again = repair_tile_dag(None, parent.tiling, parent.transformed)
    _assert_same_dag(dag, again)


def test_repaired_equals_fresh_after_delta():
    plan, data, cache, parent = _bound_parent()
    parent_key = bind_fingerprint(plan, data)
    aux = EpochAux.from_data(data)
    aux.tile_dag = repair_tile_dag(None, parent.tiling, parent.transformed)
    cache.put_aux(parent_key, aux)

    # fst's drift threshold is 0.05; keep churn at 4/80 rows.
    delta = small_delta(data, removed=2, added=2, seed=51)
    result = plan.rebind(data, delta, cache=cache)
    assert result.delta_info["mode"] == "patched", result.delta_info
    child_aux = cache.get_aux(bind_fingerprint(plan, delta.apply(data)))
    assert child_aux is not None and child_aux.tile_dag is not None
    ensure_runnable(child_aux.tile_dag)
    fresh = repair_tile_dag(None, result.tiling, result.transformed)
    _assert_same_dag(child_aux.tile_dag, fresh)


def test_parent_without_dag_skips_repair():
    plan, data, cache, _ = _bound_parent()
    delta = small_delta(data, seed=52)
    result = plan.rebind(data, delta, cache=cache)
    assert result.delta_info["mode"] == "patched", result.delta_info
    child_aux = cache.get_aux(bind_fingerprint(plan, delta.apply(data)))
    assert child_aux is not None and child_aux.tile_dag is None


def test_tile_count_change_rebuilds_fresh():
    _, _, _, parent = _bound_parent()
    real = repair_tile_dag(None, parent.tiling, parent.transformed)
    import dataclasses

    shrunk = dataclasses.replace(
        real,
        num_tiles=real.num_tiles + 1,
        indegree=np.append(real.indegree, 0),
    )
    rebuilt = repair_tile_dag(shrunk, parent.tiling, parent.transformed)
    _assert_same_dag(rebuilt, real)


def test_irv006_rejects_corrupted_counters():
    _, _, _, parent = _bound_parent()
    dag = repair_tile_dag(None, parent.tiling, parent.transformed)
    bad = np.array(dag.indegree, dtype=np.int64)
    if not bad.any():
        pytest.skip("tiny instance produced an edgeless DAG")
    bad[np.argmax(bad)] -= 1  # an under-counted release: a silent race
    object.__setattr__(dag, "indegree", bad)
    with pytest.raises(LegalityError, match="counter DAG rejected"):
        ensure_runnable(dag)
