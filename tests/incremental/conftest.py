"""Fixtures for the streaming (delta-bind) suite: tiny epochs + helpers."""

import numpy as np
import pytest

from repro.plancache import PlanCache
from repro.runtime.verify import clear_verification_memo

from tests.plancache.conftest import tiny_data

__all__ = ["tiny_data", "assert_bit_identical", "small_delta"]


def small_delta(data, *, removed=2, added=2, moved=0, seed=0):
    """A hand-rolled structural+payload delta valid against ``data``.

    Added edges are sampled from the unordered pairs *not* present in the
    parent (the validator rejects duplicate unordered endpoint pairs).
    """
    from repro.incremental import DatasetDelta

    rng = np.random.default_rng(seed)
    n = data.num_nodes
    lo = np.minimum(data.left, data.right)
    hi = np.maximum(data.left, data.right)
    existing = set((lo * n + hi).tolist())
    pairs = []
    while len(pairs) < added:
        a, b = rng.integers(0, n, size=2)
        if a == b:
            continue
        key = int(min(a, b)) * n + int(max(a, b))
        if key in existing:
            continue
        existing.add(key)
        pairs.append((int(a), int(b)))
    removed_rows = (
        rng.choice(data.num_inter, size=removed, replace=False)
        if removed
        else np.empty(0, np.int64)
    )
    moved_nodes = (
        rng.choice(n, size=moved, replace=False) if moved else np.empty(0, np.int64)
    )
    return DatasetDelta(
        added_left=np.array([p[0] for p in pairs], dtype=np.int64),
        added_right=np.array([p[1] for p in pairs], dtype=np.int64),
        removed=np.asarray(removed_rows, dtype=np.int64),
        moved_nodes=np.asarray(moved_nodes, dtype=np.int64),
        moved_arrays=(
            {name: rng.random(moved) for name in data.arrays} if moved else {}
        ),
    ).validate(data)


def assert_bit_identical(patched, cold):
    """Every realized array of two binds compares equal via ``tobytes``."""
    assert patched.transformed.left.tobytes() == cold.transformed.left.tobytes()
    assert (
        patched.transformed.right.tobytes() == cold.transformed.right.tobytes()
    )
    assert patched.sigma_nodes.array.tobytes() == cold.sigma_nodes.array.tobytes()
    for name in cold.transformed.arrays:
        assert (
            patched.transformed.arrays[name].tobytes()
            == cold.transformed.arrays[name].tobytes()
        ), name
    assert (patched.tiling is None) == (cold.tiling is None)
    if cold.tiling is not None:
        assert patched.tiling.num_tiles == cold.tiling.num_tiles
        for mine, theirs in zip(patched.tiling.tiles, cold.tiling.tiles):
            assert mine.tobytes() == theirs.tobytes()
    assert sorted(patched.delta_loops) == sorted(cold.delta_loops)
    for loop, reordering in cold.delta_loops.items():
        assert (
            patched.delta_loops[loop].array.tobytes()
            == reordering.array.tobytes()
        )


@pytest.fixture
def memory_cache():
    return PlanCache(use_disk=False)


@pytest.fixture(autouse=True)
def _fresh_verification_memo():
    """The verification memo is process-global: isolate every test."""
    clear_verification_memo()
    yield
    clear_verification_memo()
