"""Epoch chains on the disk tier: grouping, orphan detection, health
counters, and whole-chain garbage collection."""

import pytest

from repro.kernels.specs import kernel_by_name
from repro.plancache import PlanCache
from repro.plancache.fingerprint import bind_fingerprint
from repro.runtime import CompositionPlan
from repro.runtime.inspector import CPackStep, LexGroupStep

from tests.incremental.conftest import small_delta, tiny_data

pytestmark = pytest.mark.streaming


def _plan():
    return CompositionPlan(
        kernel_by_name("moldyn"), [CPackStep(), LexGroupStep()], name="cpack+lg"
    )


def _chain(cache, epochs=3, seed0=61):
    """Bind a cold root then delta-bind ``epochs`` children; returns keys
    root-first."""
    plan = _plan()
    data = tiny_data()
    keys = [bind_fingerprint(plan, data)]
    plan.bind(data, cache=cache)
    for i in range(epochs):
        delta = small_delta(data, seed=seed0 + i)
        result = plan.rebind(data, delta, cache=cache)
        assert result.delta_info["mode"] == "patched", result.delta_info
        data = delta.apply(data)
        keys.append(bind_fingerprint(plan, data))
    return keys


def test_chain_groups_root_first(tmp_path):
    cache = PlanCache(directory=tmp_path / "pc")
    keys = _chain(cache)
    # An unrelated solo bind forms its own singleton group.
    solo = _plan()
    solo_data = tiny_data(seed=9)
    solo.bind(solo_data, cache=cache)
    solo_key = bind_fingerprint(solo, solo_data)

    chains = cache.disk.chain_groups()
    assert chains["orphans"] == []
    by_root = {g["root"]: g for g in chains["groups"]}
    assert by_root[keys[0]]["keys"] == keys
    assert by_root[solo_key]["keys"] == [solo_key]
    assert by_root[keys[0]]["bytes"] > 0


def test_health_counts_chains_and_orphans(tmp_path):
    cache = PlanCache(directory=tmp_path / "pc")
    keys = _chain(cache)
    health = cache.disk.health()
    assert health["epoch_chains"] == 1
    assert health["epoch_children"] == len(keys) - 1
    assert health["epoch_orphans"] == 0

    # Deleting the cold root severs every descendant's path back.
    cache.disk._path(keys[0]).unlink()
    health = cache.disk.health()
    assert health["epoch_orphans"] == len(keys) - 1
    chains = cache.disk.chain_groups()
    assert sorted(chains["orphans"]) == sorted(keys[1:])
    # The broken tail still groups under its highest surviving ancestor.
    by_root = {g["root"]: g for g in chains["groups"]}
    assert by_root[keys[1]]["keys"] == keys[1:]


def test_gc_evicts_whole_chains(tmp_path):
    cache = PlanCache(directory=tmp_path / "pc")
    keys = _chain(cache)
    report = cache.disk.gc(max_bytes=0)
    assert report["removed_chains"] == 1
    assert report["removed_files"] == len(keys)
    assert report["remaining_entries"] == 0
    # Nothing left behind: no orphans, empty groups.
    chains = cache.disk.chain_groups()
    assert chains["groups"] == [] and chains["orphans"] == []


def test_gc_keeps_chains_within_budget(tmp_path):
    cache = PlanCache(directory=tmp_path / "pc")
    keys = _chain(cache)
    total = cache.disk.total_bytes()
    report = cache.disk.gc(max_bytes=total)
    assert report["removed_chains"] == 0
    assert report["removed_files"] == 0
    assert set(cache.disk.keys()) >= set(keys)
