"""DatasetDelta semantics: validation, canonical application, drift,
fingerprints, and the epoch aux invariants the patch rules lean on."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.incremental import DatasetDelta, EpochAux
from repro.incremental.delta import UNTOUCHED_KEY

from tests.incremental.conftest import small_delta, tiny_data

pytestmark = pytest.mark.streaming


class TestValidation:
    def test_misaligned_added_endpoints(self):
        data = tiny_data()
        delta = DatasetDelta(added_left=[1, 2], added_right=[3])
        with pytest.raises(ValidationError, match="align"):
            delta.validate(data)

    def test_added_endpoint_out_of_range(self):
        data = tiny_data()
        delta = DatasetDelta(
            added_left=[data.num_nodes], added_right=[0]
        )
        with pytest.raises(ValidationError, match="outside"):
            delta.validate(data)

    def test_removed_row_out_of_range(self):
        data = tiny_data()
        with pytest.raises(ValidationError, match="removes rows outside"):
            DatasetDelta(removed=[data.num_inter]).validate(data)

    def test_duplicate_removed_rows_rejected(self):
        with pytest.raises(ValidationError, match="duplicates"):
            DatasetDelta(removed=[3, 3])

    def test_moved_nodes_need_payload(self):
        data = tiny_data()
        with pytest.raises(ValidationError, match="payload"):
            DatasetDelta(moved_nodes=[1]).validate(data)

    def test_moved_unknown_array(self):
        data = tiny_data()
        delta = DatasetDelta(
            moved_nodes=[1], moved_arrays={"nope": np.array([0.5])}
        )
        with pytest.raises(ValidationError, match="unknown payload"):
            delta.validate(data)

    def test_moved_values_misaligned(self):
        data = tiny_data()
        name = sorted(data.arrays)[0]
        delta = DatasetDelta(
            moved_nodes=[1, 2], moved_arrays={name: np.array([0.5])}
        )
        with pytest.raises(ValidationError, match="values for"):
            delta.validate(data)


class TestCanonicalApply:
    def test_survivors_keep_relative_order(self):
        data = tiny_data()
        delta = small_delta(data, removed=5, added=3, seed=1)
        child = delta.apply(data)
        keep = delta.keep_mask(data.num_inter)
        survivors = np.flatnonzero(keep)
        assert np.array_equal(child.left[: len(survivors)], data.left[keep])
        assert np.array_equal(child.right[: len(survivors)], data.right[keep])
        assert np.array_equal(
            child.left[len(survivors):], delta.added_left
        )
        assert child.num_inter == len(survivors) + delta.num_added

    def test_payload_moves_applied(self):
        data = tiny_data()
        delta = small_delta(data, removed=0, added=0, moved=4, seed=2)
        child = delta.apply(data)
        for name, values in delta.moved_arrays.items():
            assert np.array_equal(child.arrays[name][delta.moved_nodes], values)
            untouched = np.setdiff1d(
                np.arange(data.num_nodes), delta.moved_nodes
            )
            assert np.array_equal(
                child.arrays[name][untouched], data.arrays[name][untouched]
            )

    def test_compaction_map_roundtrip(self):
        data = tiny_data()
        delta = small_delta(data, removed=7, added=0, seed=3)
        keep_rows, old_to_new = delta.compaction_map(data.num_inter)
        assert np.array_equal(old_to_new[keep_rows], np.arange(len(keep_rows)))
        assert np.all(old_to_new[delta.removed] == -1)


class TestDriftAndFingerprint:
    def test_drift_is_worst_of_edge_and_node(self):
        data = tiny_data()
        delta = small_delta(data, removed=4, added=4, moved=3, seed=4)
        assert delta.edge_drift(data) == pytest.approx(8 / data.num_inter)
        assert delta.node_drift(data) == pytest.approx(3 / data.num_nodes)
        assert delta.drift(data) == pytest.approx(
            max(delta.edge_drift(data), delta.node_drift(data))
        )

    def test_fingerprint_stable_and_content_sensitive(self):
        data = tiny_data()
        a = small_delta(data, seed=5)
        b = small_delta(data, seed=5)
        c = small_delta(data, seed=6)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_empty_delta(self):
        data = tiny_data()
        delta = DatasetDelta().validate(data)
        assert delta.is_empty
        assert delta.drift(data) == 0.0
        child = delta.apply(data)
        assert child.left.tobytes() == data.left.tobytes()


class TestEpochAux:
    def test_from_data_matches_first_touch_semantics(self):
        data = tiny_data()
        aux = EpochAux.from_data(data)
        # Reference: walk the interleaved stream.
        expected = np.full(data.num_nodes, UNTOUCHED_KEY, dtype=np.int64)
        for j in range(data.num_inter):
            for offset, node in ((0, data.left[j]), (1, data.right[j])):
                expected[node] = min(expected[node], 2 * j + offset)
        assert np.array_equal(aux.first_key, expected)

    def test_advanced_equals_fresh_child_aux_order(self):
        """Key *order* (what cpack consumes) matches a fresh child aux."""
        data = tiny_data()
        delta = small_delta(data, removed=6, added=4, seed=7)
        child = delta.apply(data)
        advanced, changed = EpochAux.from_data(data).advanced(
            delta, data, child
        )
        fresh = EpochAux.from_data(child)
        assert np.array_equal(
            np.argsort(advanced.first_key, kind="stable"),
            np.argsort(fresh.first_key, kind="stable"),
        )
        # Changed nodes are exactly those whose stable rank ordering the
        # parent keys can no longer reproduce.
        assert len(changed) <= 2 * (delta.num_removed + delta.num_added)

    def test_advanced_empty_delta_changes_nothing(self):
        data = tiny_data()
        delta = DatasetDelta().validate(data)
        parent = EpochAux.from_data(data)
        advanced, changed = parent.advanced(delta, data, delta.apply(data))
        assert len(changed) == 0
        assert np.array_equal(advanced.first_key, parent.first_key)
        assert np.array_equal(advanced.row_key, parent.row_key)
