"""Delta-bind engine behavior: counted fallbacks, epoch-chain links, the
hit path, mandatory re-verification, and mid-delta failure recovery."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.incremental import DatasetDelta
from repro.incremental.rules import DELTA_RULES, DeltaRule, UnsupportedDelta
from repro.kernels.specs import kernel_by_name
from repro.plancache import PlanCache
from repro.plancache.fingerprint import bind_fingerprint
from repro.runtime import CompositionPlan
from repro.runtime.inspector import (
    CPackStep,
    GPartStep,
    LexGroupStep,
)

from tests.incremental.conftest import (
    assert_bit_identical,
    small_delta,
    tiny_data,
)

pytestmark = pytest.mark.streaming


def _plan(steps=None, name="cpack+lg", **kwargs):
    steps = steps if steps is not None else [CPackStep(), LexGroupStep()]
    return CompositionPlan(kernel_by_name("moldyn"), steps, name=name, **kwargs)


def _cache():
    return PlanCache(use_disk=False)


class TestFallbacks:
    def test_requires_cache(self):
        data = tiny_data()
        with pytest.raises(ValidationError, match="requires a plan cache"):
            _plan().rebind(data, small_delta(data), cache=None)

    def test_unpatchable_stage_falls_back_counted(self):
        data = tiny_data()
        plan = _plan([GPartStep(4), LexGroupStep()], name="gpart+lg")
        cache = _cache()
        plan.bind(data, cache=cache)
        delta = small_delta(data, seed=21)
        result = plan.rebind(data, delta, cache=cache)
        assert result.delta_info["mode"] == "fallback"
        assert "gpart" in result.delta_info["reason"]
        assert cache.stats.delta_fallbacks == 1
        assert cache.stats.delta_patched == 0
        cold = _plan(
            [GPartStep(4), LexGroupStep()], name="gpart+lg"
        ).bind(delta.apply(data), cache=_cache())
        assert_bit_identical(result, cold)

    def test_over_threshold_drift_falls_back(self):
        data = tiny_data()
        plan = _plan()
        cache = _cache()
        plan.bind(data, cache=cache)
        # > 10% of the 80 interactions churned: past every threshold.
        delta = small_delta(data, removed=10, added=10, seed=22)
        result = plan.rebind(data, delta, cache=cache)
        assert result.delta_info["mode"] == "fallback"
        assert "exceeds threshold" in result.delta_info["reason"]
        assert cache.stats.delta_fallbacks == 1

    def test_missing_parent_falls_back(self):
        data = tiny_data()
        plan = _plan()
        cache = _cache()
        result = plan.rebind(data, small_delta(data, seed=23), cache=cache)
        assert result.delta_info["mode"] == "fallback"
        assert "parent bind is not cached" in result.delta_info["reason"]

    def test_permissive_policy_falls_back(self):
        data = tiny_data()
        plan = _plan(on_stage_failure="identity")
        cache = _cache()
        plan.bind(data, cache=cache)
        result = plan.rebind(data, small_delta(data, seed=24), cache=cache)
        assert result.delta_info["mode"] == "fallback"
        assert "permissive" in result.delta_info["reason"]

    def test_verify_failure_degrades_counted(self, monkeypatch):
        import repro.runtime.verify as verify_mod

        def always_fails(*args, **kwargs):
            raise AssertionError("injected verification mismatch")

        monkeypatch.setattr(
            verify_mod, "verify_numeric_equivalence_memoized", always_fails
        )
        data = tiny_data()
        plan = _plan()
        cache = _cache()
        plan.bind(data, cache=cache)
        delta = small_delta(data, seed=25)
        result = plan.rebind(data, delta, cache=cache)
        assert result.delta_info["mode"] == "fallback"
        assert "failed verification" in result.delta_info["reason"]
        assert cache.stats.delta_verify_failures == 1
        assert cache.stats.delta_fallbacks == 1
        cold = _plan().bind(delta.apply(data), cache=_cache())
        assert_bit_identical(result, cold)

    def test_child_data_shape_mismatch_rejected(self):
        data = tiny_data()
        plan = _plan()
        cache = _cache()
        plan.bind(data, cache=cache)
        # Asymmetric churn so the child's row count provably differs.
        delta = small_delta(data, removed=3, added=1, seed=26)
        with pytest.raises(ValidationError, match="does not match"):
            plan.rebind(data, delta, cache=cache, child_data=data)


class TestEpochChain:
    def test_links_walk_back_to_cold_root(self):
        plan = _plan()
        cache = _cache()
        data = tiny_data()
        keys = [bind_fingerprint(plan, data)]
        plan.bind(data, cache=cache)
        for seed in (31, 32, 33):
            delta = small_delta(data, seed=seed)
            result = plan.rebind(data, delta, cache=cache)
            assert result.delta_info["mode"] == "patched", result.delta_info
            data = delta.apply(data)
            keys.append(bind_fingerprint(plan, data))
            assert result.delta_info["epoch"] == len(keys) - 1
        # Walk the chain backwards through stored metadata.
        for epoch in range(len(keys) - 1, 0, -1):
            entry = cache.get(keys[epoch])
            assert entry is not None
            assert entry.meta["epoch"] == epoch
            assert entry.meta["parent_key"] == keys[epoch - 1]
            assert entry.meta["delta_mode"] == "patched"
        root = cache.get(keys[0])
        assert root is not None and "parent_key" not in root.meta
        assert cache.stats.delta_patched == 3

    def test_fallback_epoch_joins_chain(self):
        plan = _plan([GPartStep(4), LexGroupStep()], name="gpart+lg")
        cache = _cache()
        data = tiny_data()
        parent_key = bind_fingerprint(plan, data)
        plan.bind(data, cache=cache)
        delta = small_delta(data, seed=34)
        result = plan.rebind(data, delta, cache=cache)
        assert result.delta_info["mode"] == "fallback"
        entry = cache.get(bind_fingerprint(plan, delta.apply(data)))
        assert entry is not None
        assert entry.meta["parent_key"] == parent_key
        assert entry.meta["epoch"] == 1
        assert entry.meta["delta_mode"] == "fallback"

    def test_repeated_delta_is_a_hit(self):
        plan = _plan()
        cache = _cache()
        data = tiny_data()
        plan.bind(data, cache=cache)
        delta = small_delta(data, seed=35)
        first = plan.rebind(data, delta, cache=cache)
        assert first.delta_info["mode"] == "patched"
        second = plan.rebind(data, delta, cache=cache)
        assert second.delta_info["mode"] == "hit"
        assert second.delta_info["epoch"] == 1
        assert_bit_identical(second, first)

    def test_payload_only_delta_hits_parent_entry(self):
        """Payload motion does not change the structural fingerprint, so
        the parent's cached sigma re-applies to the live payload."""
        plan = _plan()
        cache = _cache()
        data = tiny_data()
        plan.bind(data, cache=cache)
        delta = small_delta(data, removed=0, added=0, moved=5, seed=36)
        result = plan.rebind(data, delta, cache=cache)
        assert result.delta_info["mode"] == "hit"
        assert result.delta_info["epoch"] == 0
        cold = _plan().bind(delta.apply(data), cache=_cache())
        assert_bit_identical(result, cold)

    def test_patched_bind_is_verified_and_cold_identical(self):
        plan = _plan()
        cache = _cache()
        data = tiny_data()
        plan.bind(data, cache=cache)
        delta = small_delta(data, seed=37)
        result = plan.rebind(data, delta, cache=cache)
        assert result.delta_info["mode"] == "patched"
        assert result.report.verified is True
        assert result.total_touches > 0  # touch accounting rode along


class TestMidDeltaFailure:
    def test_snapshot_restore_roundtrip_mid_delta(self, monkeypatch):
        """A stage patch that fails mid-flight can roll the inspector
        state back to its snapshot; the engine then falls back to a full
        re-bind whose output is still bit-identical to cold."""
        observed = {}

        def flaky_patch(ctx, state, step, index):
            snap = state.snapshot()
            before = {
                "left": state.data.left.tobytes(),
                "right": state.data.right.tobytes(),
                "sigma": state.sigma_total.array.tobytes(),
                "overhead": dict(state.overhead),
                "stage_functions": set(state.stage_functions),
            }
            # Partial progress: a real reordering lands, then the patch
            # discovers it cannot finish.
            DELTA_RULES["cpack"].patch(ctx, state, step_cpack, 0)
            assert state.data.left.tobytes() != before["left"] or (
                state.sigma_total.array.tobytes() != before["sigma"]
            )
            state.restore(snap)
            after = {
                "left": state.data.left.tobytes(),
                "right": state.data.right.tobytes(),
                "sigma": state.sigma_total.array.tobytes(),
                "overhead": dict(state.overhead),
                "stage_functions": set(state.stage_functions),
            }
            observed["roundtrip"] = before == after
            raise UnsupportedDelta("injected mid-delta failure", stage="lg")

        step_cpack = CPackStep()
        monkeypatch.setitem(
            DELTA_RULES,
            "lg",
            DeltaRule(
                "lg",
                0.10,
                frozenset({"index_values", "iteration_order"}),
                flaky_patch,
            ),
        )
        plan = _plan()
        cache = _cache()
        data = tiny_data()
        plan.bind(data, cache=cache)
        delta = small_delta(data, seed=41)
        result = plan.rebind(data, delta, cache=cache)
        assert observed["roundtrip"] is True
        assert result.delta_info["mode"] == "fallback"
        assert "injected mid-delta failure" in result.delta_info["reason"]
        assert cache.stats.delta_fallbacks == 1
        cold = _plan().bind(delta.apply(data), cache=_cache())
        assert_bit_identical(result, cold)

    def test_snapshot_restore_preserves_tiling(self):
        """Direct InspectorState round-trip including the tiling slot."""
        from repro.runtime.inspector import InspectorState
        from repro.transforms.base import identity_reordering
        from repro.transforms.fst import TilingFunction

        data = tiny_data()
        state = InspectorState(
            data=data.copy(),
            remap="once",
            sigma_total=identity_reordering(data.num_nodes, "sigma"),
            sigma_pending=identity_reordering(data.num_nodes, "pending"),
            delta_total={
                pos: identity_reordering(size, f"delta{pos}")
                for pos, size in enumerate(data.loop_sizes())
            },
        )
        state.tiling = TilingFunction(
            [np.zeros(size, dtype=np.int64) for size in data.loop_sizes()],
            1,
        )
        snap = state.snapshot()
        rng = np.random.default_rng(0)
        perm = rng.permutation(data.num_nodes).astype(np.int64)
        from repro.transforms.base import ReorderingFunction

        state.apply_data_reordering(
            ReorderingFunction("test", perm), "test-stage"
        )
        state.tiling.tiles[0][:] = 7
        state.restore(snap)
        assert state.data.left.tobytes() == data.left.tobytes()
        assert state.data.right.tobytes() == data.right.tobytes()
        assert np.array_equal(
            state.sigma_total.array, np.arange(data.num_nodes)
        )
        assert int(state.tiling.tiles[0].max()) == 0
        assert state.overhead == {}
