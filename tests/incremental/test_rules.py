"""Bit-identity of patched stages: a delta-bind must equal a cold bind
of the canonical mutated dataset on every realized array, across
compositions, drift shapes, and kernels (property-tested)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.incremental.rules import DELTA_RULES, plan_delta_eligibility
from repro.kernels.specs import kernel_by_name
from repro.plancache import PlanCache
from repro.runtime import CompositionPlan
from repro.runtime.inspector import (
    BucketTilingStep,
    CPackStep,
    FullSparseTilingStep,
    GPartStep,
    LexGroupStep,
    LexSortStep,
)

from tests.incremental.conftest import (
    assert_bit_identical,
    small_delta,
    tiny_data,
)

pytestmark = pytest.mark.streaming

RECIPES = {
    "cpack": lambda: [CPackStep()],
    "cpack+lg": lambda: [CPackStep(), LexGroupStep()],
    "cpack+ls": lambda: [CPackStep(), LexSortStep()],
    # Bucket wide enough that rank compaction cannot cross a boundary;
    # narrow buckets exercise the monotonicity backstop instead (below).
    "cpack+bt": lambda: [CPackStep(), BucketTilingStep(64)],
    "cpack+lg+fst": lambda: [
        CPackStep(), LexGroupStep(), FullSparseTilingStep(8),
    ],
}


def _rebind_vs_cold(kernel, steps, delta_kwargs, name):
    data = tiny_data(kernel)
    delta = small_delta(data, **delta_kwargs)
    plan = CompositionPlan(kernel_by_name(kernel), steps, name=name)
    cache = PlanCache(use_disk=False)
    plan.bind(data, cache=cache)
    patched = plan.rebind(data, delta, cache=cache)
    cold = plan.bind(delta.apply(data), cache=PlanCache(use_disk=False))
    return patched, cold


@pytest.mark.parametrize("name", sorted(RECIPES))
def test_patched_equals_cold(name):
    # 4/80 rows churned: within every recipe's threshold (fst caps at 0.05).
    patched, cold = _rebind_vs_cold(
        "moldyn", RECIPES[name](), dict(removed=2, added=2, seed=11), name
    )
    assert patched.delta_info["mode"] == "patched", patched.delta_info
    assert patched.report.verified is True
    assert_bit_identical(patched, cold)


@pytest.mark.parametrize(
    "delta_kwargs",
    [
        dict(removed=5, added=0),   # pure excision
        dict(removed=0, added=5),   # pure growth
        dict(removed=3, added=3, moved=3),  # churn + payload motion
    ],
    ids=["remove-only", "add-only", "mixed+moved"],
)
def test_drift_shapes(delta_kwargs):
    patched, cold = _rebind_vs_cold(
        "moldyn",
        [CPackStep(), LexGroupStep()],
        dict(seed=13, **delta_kwargs),
        "cpack+lg",
    )
    assert patched.delta_info["mode"] == "patched", patched.delta_info
    assert_bit_identical(patched, cold)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    kernel=st.sampled_from(["moldyn", "nbf", "irreg"]),
    removed=st.integers(min_value=0, max_value=6),
    added=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_patched_equals_cold_property(kernel, removed, added, seed):
    patched, cold = _rebind_vs_cold(
        kernel,
        [CPackStep(), LexGroupStep()],
        dict(removed=removed, added=added, seed=seed),
        "cpack+lg",
    )
    # Over-threshold samples legitimately fall back; whatever the path,
    # the realized bind must equal cold bit for bit.
    assert patched.delta_info["mode"] in ("patched", "hit", "fallback")
    assert_bit_identical(patched, cold)


def test_bucket_boundary_shift_caught_by_backstop():
    """Narrow buckets re-key rows whose first-touch key did not change
    (every later rank shifts under an excision), which the strict
    monotonicity check catches — the engine falls back rather than emit
    a wrong order, and the result is still bit-identical to cold."""
    patched, cold = _rebind_vs_cold(
        "moldyn",
        [CPackStep(), BucketTilingStep(4)],
        dict(removed=3, added=3, seed=11),
        "cpack+bt4",
    )
    assert patched.delta_info["mode"] in ("patched", "fallback")
    assert_bit_identical(patched, cold)


class TestEligibility:
    def test_registry_covers_every_threshold_claim(self):
        assert DELTA_RULES["cpack"].max_drift == pytest.approx(0.10)
        assert DELTA_RULES["fst"].max_drift == pytest.approx(0.05)
        for name in ("gpart", "rcm", "sfc", "cb"):
            assert DELTA_RULES[name].max_drift == 0.0
            assert DELTA_RULES[name].patch is None

    def test_drift_over_threshold_refused(self):
        ok, reason = plan_delta_eligibility([CPackStep()], drift=0.2)
        assert not ok and "exceeds threshold" in reason

    def test_global_traversal_refused_at_any_drift(self):
        ok, reason = plan_delta_eligibility(
            [GPartStep(4), LexGroupStep()], drift=0.01
        )
        assert not ok and "gpart" in reason

    def test_cpack_must_lead(self):
        ok, reason = plan_delta_eligibility(
            [LexGroupStep(), CPackStep()], drift=0.01
        )
        assert not ok and "stage 0 only" in reason

    def test_merge_needs_canonical_row_order(self):
        ok, reason = plan_delta_eligibility(
            [CPackStep(), LexGroupStep(), LexSortStep()], drift=0.01
        )
        assert not ok and "canonical row order" in reason

    def test_zero_drift_skips_supports_gate(self):
        ok, reason = plan_delta_eligibility(
            [CPackStep(), LexGroupStep()], drift=0.0
        )
        assert ok, reason
