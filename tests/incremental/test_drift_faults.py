"""Deterministic drift corruptors (runtime.faults): reproducible epoch
mutation generators the streaming benchmark and chaos harness share."""

import numpy as np
import pytest

from repro.runtime.faults import (
    drift_edge_churn,
    drift_node_motion,
    make_drift_delta,
)

from tests.incremental.conftest import tiny_data

pytestmark = pytest.mark.streaming


def _unordered_keys(left, right, n):
    lo = np.minimum(left, right)
    hi = np.maximum(left, right)
    return lo * n + hi


class TestEdgeChurn:
    def test_deterministic_per_seed(self):
        data = tiny_data()
        a = drift_edge_churn(data, 0.1, seed=3)
        b = drift_edge_churn(data, 0.1, seed=3)
        assert a.fingerprint() == b.fingerprint()
        c = drift_edge_churn(data, 0.1, seed=4)
        assert a.fingerprint() != c.fingerprint()

    def test_balanced_and_within_rate(self):
        data = tiny_data()
        delta = drift_edge_churn(data, 0.1, seed=5)
        half = int(data.num_inter * 0.1 / 2)
        assert delta.num_removed == half
        assert delta.num_added <= half
        assert delta.edge_drift(data) <= 0.1 + 1e-9

    def test_added_edges_are_fresh_unordered_pairs(self):
        data = tiny_data()
        delta = drift_edge_churn(data, 0.2, seed=6)
        n = data.num_nodes
        assert not np.any(delta.added_left == delta.added_right)
        added = _unordered_keys(delta.added_left, delta.added_right, n)
        assert len(np.unique(added)) == len(added)
        existing = _unordered_keys(data.left, data.right, n)
        assert not np.isin(added, existing).any()

    def test_child_passes_strict_validation(self):
        from repro.runtime.validate import validate_kernel_data

        data = tiny_data()
        delta = drift_edge_churn(data, 0.2, seed=7)
        validate_kernel_data(delta.apply(data))


class TestNodeMotion:
    def test_moves_only_selected_nodes(self):
        data = tiny_data()
        delta = drift_node_motion(data, 0.2, seed=8)
        child = delta.apply(data)
        untouched = np.setdiff1d(np.arange(data.num_nodes), delta.moved_nodes)
        for name in data.arrays:
            assert np.array_equal(
                child.arrays[name][untouched], data.arrays[name][untouched]
            )
            assert not np.array_equal(
                child.arrays[name][delta.moved_nodes],
                data.arrays[name][delta.moved_nodes],
            )

    def test_no_structural_churn(self):
        data = tiny_data()
        delta = drift_node_motion(data, 0.2, seed=9)
        assert not delta.mutates_edges
        assert delta.edge_drift(data) == 0.0

    def test_deterministic_per_seed(self):
        data = tiny_data()
        assert (
            drift_node_motion(data, 0.2, seed=10).fingerprint()
            == drift_node_motion(data, 0.2, seed=10).fingerprint()
        )


class TestCombined:
    def test_combined_validates_and_bounds_drift(self):
        data = tiny_data()
        delta = make_drift_delta(data, edge_rate=0.1, move_rate=0.1, seed=11)
        assert delta.mutates_edges and delta.num_moved > 0
        assert delta.drift(data) <= 0.1 + 1e-9

    def test_sub_seeds_decorrelate(self):
        data = tiny_data()
        combined = make_drift_delta(data, edge_rate=0.1, move_rate=0.1, seed=0)
        edge_only = drift_edge_churn(data, 0.1, seed=0)
        assert combined.fingerprint() != edge_only.fingerprint()
